//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block cipher used
//! in counter mode as a PRNG.
//!
//! The implementation follows RFC 8439's state layout (constants, 256-bit
//! key, 64-bit block counter, 64-bit stream id in the nonce words) with 8
//! rounds. Output word order within a block is the standard little-endian
//! state serialization, so the generator has the statistical quality of the
//! real thing. It is **not** guaranteed bit-compatible with crates.io
//! `rand_chacha` (which this workspace never relies on): the contract is
//! "same seed + same stream ⇒ same output", and the independent-streams
//! property of the (key, stream) pairing.

#![warn(clippy::all)]

pub use rand as rand_core;
use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, 64-bit counter, 64-bit stream id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    stream: u64,
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means "refill needed".
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects an independent output stream, restarting it from the top.
    ///
    /// Streams with distinct ids are independent ChaCha nonces, so deriving
    /// "one stream per worker/realization" from a shared base seed is sound.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.idx = 16;
    }

    /// The current stream id.
    #[must_use]
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // One double round: column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(&input) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32();
        let hi = self.next_u32();
        u64::from(lo) | (u64::from(hi) << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            stream: 0,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::Rng;

    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.set_stream(1);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);

        // Re-selecting a stream restarts it deterministically.
        a.set_stream(2);
        let va2: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        assert_eq!(va2, vb);
    }

    #[test]
    fn uniformity_smoke() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn chacha_block_changes_every_refill() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }
}
