//! Offline stand-in for `serde`.
//!
//! This workspace only ever serializes (experiment results to JSON files);
//! it never deserializes. So [`Serialize`] is a direct-to-JSON trait with
//! impls for the primitives and containers the workspace uses, and
//! `#[derive(Serialize)]` (from the sibling `serde_derive` shim) generates
//! externally-tagged JSON exactly like real serde's defaults.
//! `#[derive(Deserialize)]` is accepted and expands to nothing.

#![warn(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as JSON.
pub trait Serialize {
    /// Appends the JSON encoding of `self` to `out`.
    fn serialize_json_into(&self, out: &mut String);

    /// The JSON encoding of `self` as an owned string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.serialize_json_into(&mut out);
        out
    }
}

/// Escapes and appends a string literal (with quotes).
pub fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_display_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json_into(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_display_serialize!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize_json_into(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_float_serialize {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_json_into(&self, out: &mut String) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/inf; mirror serde_json's `null`.
                    out.push_str("null");
                }
            }
        }
    )*};
}

impl_float_serialize!(f32, f64);

impl Serialize for str {
    fn serialize_json_into(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl Serialize for String {
    fn serialize_json_into(&self, out: &mut String) {
        write_json_string(self, out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_json_into(&self, out: &mut String) {
        (**self).serialize_json_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_json_into(&self, out: &mut String) {
        match self {
            Some(v) => v.serialize_json_into(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_json_into(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.serialize_json_into(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_json_into(&self, out: &mut String) {
        self.as_slice().serialize_json_into(out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_json_into(&self, out: &mut String) {
        self.as_slice().serialize_json_into(out);
    }
}

impl<K: std::fmt::Display, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_json_into(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(&k.to_string(), out);
            out.push(':');
            v.serialize_json_into(out);
        }
        out.push('}');
    }
}

macro_rules! impl_tuple_serialize {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_json_into(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.serialize_json_into(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}

impl_tuple_serialize!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(3u32.to_json(), "3");
        assert_eq!((-4i64).to_json(), "-4");
        assert_eq!(true.to_json(), "true");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!("a\"b\n".to_json(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u32, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Some(7u64).to_json(), "7");
        assert_eq!(None::<u64>.to_json(), "null");
        assert_eq!((1u32, "x".to_string()).to_json(), "[1,\"x\"]");
        assert_eq!(vec![vec![1.0f64], vec![]].to_json(), "[[1],[]]");
    }
}
