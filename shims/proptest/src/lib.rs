//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_shuffle`, range and tuple strategies, [`Just`],
//! [`collection::vec`], [`any`], the [`proptest!`] macro and the
//! `prop_assert!` family.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test ChaCha8 stream (derived from the test's module
//! path), and there is **no shrinking** — a failure reports its case index
//! so it can be replayed exactly, which is enough for CI triage here.

#![warn(clippy::all)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SampleRange, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// RNG for case `case` of the test identified by `base` (a hash of its
    /// path): one independent ChaCha stream per case.
    #[must_use]
    pub fn for_case(base: u64, case: u32) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(base);
        rng.set_stream(u64::from(case).wrapping_add(1));
        Self(rng)
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
}

/// FNV-1a hash used to derive a per-test seed from its path.
#[must_use]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        i += 1;
    }
    hash
}

/// A generator of random values of one type.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` (dependent
    /// generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Uniformly permutes generated vectors.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S>(S);

impl<T, S: Strategy<Value = Vec<T>>> Strategy for Shuffle<S> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.0.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// Constant strategy: always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.clone().sample_from(rng)
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Strategy for "any value of `T`" (supported: `bool`, `u8`, `u32`,
/// `u64`).
pub struct AnyStrategy<T>(PhantomData<T>);

/// `proptest::arbitrary::any` equivalent.
#[must_use]
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl Strategy for AnyStrategy<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for AnyStrategy<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for AnyStrategy<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.next_u32()
    }
}

impl Strategy for AnyStrategy<u8> {
    type Value = u8;

    fn generate(&self, rng: &mut TestRng) -> u8 {
        (rng.next_u32() & 0xff) as u8
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Rng, Strategy, TestRng};

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max_excl: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                min: range.start,
                max_excl: range.end,
            }
        }
    }

    /// Strategy for vectors of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.min + 1 == self.size.max_excl {
                self.size.min
            } else {
                rng.gen_range(self.size.min..self.size.max_excl)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __base = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::TestRng::for_case(__base, __case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ),
                );
                match __outcome {
                    Ok(::std::result::Result::Ok(())) => {}
                    Ok(::std::result::Result::Err(msg)) => {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __cfg.cases, msg
                        );
                    }
                    Err(err) => {
                        eprintln!(
                            "proptest `{}` failed at case {}/{} (replay: same case index)",
                            stringify!($name), __case + 1, __cfg.cases
                        );
                        ::std::panic::resume_unwind(err);
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Strategy;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = super::TestRng::for_case(1, 0);
        for _ in 0..100 {
            let (a, b) = (3usize..10, 0.5f64..=1.0).generate(&mut rng);
            assert!((3..10).contains(&a));
            assert!((0.5..=1.0).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = super::TestRng::for_case(2, 0);
        let exact = super::collection::vec(0u32..5, 7usize).generate(&mut rng);
        assert_eq!(exact.len(), 7);
        for _ in 0..50 {
            let ranged = super::collection::vec(0u32..5, 2usize..6).generate(&mut rng);
            assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = super::TestRng::for_case(3, 0);
        let v = Just((0..20).collect::<Vec<u32>>())
            .prop_shuffle()
            .generate(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: bindings, flat-map, early return.
        #[test]
        fn macro_smoke(n in 1usize..10, v in super::collection::vec(0u64..100, 0usize..8)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(n >= 1);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn flat_map_dependent((n, xs) in (2usize..12).prop_flat_map(|n| {
            (Just(n), super::collection::vec(0usize..n, 1usize..5))
        })) {
            prop_assert!(xs.iter().all(|&x| x < n));
        }
    }
}
