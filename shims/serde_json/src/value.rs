//! Dynamic JSON tree plus a recursive-descent parser.
//!
//! Numbers are held as `f64` (like real `serde_json`'s arbitrary-precision
//! feature *disabled*); every integer the workspace round-trips (`u64`
//! seeds included) is encoded in decimal by the serde shim, so parsing
//! keeps `u64::MAX`-scale seeds intact via a dedicated integer fast path.

use std::collections::BTreeMap;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number that is not an unsigned decimal integer.
    Float(f64),
    /// Unsigned decimal integers (preserves full `u64` precision).
    UInt(u64),
    /// String literal.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; key order is irrelevant to consumers, `BTreeMap` keeps
    /// iteration deterministic.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (floats only when they are exact non-negative
    /// integers).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Float(x) if x >= 0.0 && x <= u64::MAX as f64 && x.fract() == 0.0 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|u| usize::try_from(u).ok())
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object map.
    #[must_use]
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Error raised by [`from_str_value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn from_str_value(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    let end = start + width;
                    if width == 0 || end > self.bytes.len() {
                        return Err(self.error("invalid UTF-8 in string"));
                    }
                    self.pos = end;
                    match core::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.error("invalid UTF-8 in string")),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = core::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("bad hex in \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            core::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_integer && !text.starts_with('-') {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Width of the UTF-8 sequence starting with `first`, 0 when invalid.
fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(from_str_value("null").unwrap(), Value::Null);
        assert_eq!(from_str_value("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str_value("42").unwrap(), Value::UInt(42));
        assert_eq!(
            from_str_value("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str_value("-3").unwrap(), Value::Float(-3.0));
        assert_eq!(from_str_value("2.5e-1").unwrap(), Value::Float(0.25));
        assert_eq!(
            from_str_value("\"a\\n\\\"b\\u00e9\"").unwrap(),
            Value::String("a\n\"bé".into())
        );
    }

    #[test]
    fn containers_and_access() {
        let v = from_str_value(" { \"xs\" : [1, 2.5, null], \"ok\": false } ").unwrap();
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert!(xs[2].is_null());
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn surrogate_pairs() {
        assert_eq!(
            from_str_value("\"\\ud83d\\ude00\"").unwrap(),
            Value::String("😀".into())
        );
        assert!(from_str_value("\"\\ud83d\"").is_err());
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(
            from_str_value("\"héllo → world\"").unwrap(),
            Value::String("héllo → world".into())
        );
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str_value("[1, ]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(from_str_value("{\"a\":1,}").is_err());
        assert!(from_str_value("1 2").is_err());
        assert!(from_str_value("").is_err());
    }

    #[test]
    fn round_trips_serde_shim_output() {
        // What our own encoder emits must parse back.
        let json = serde_json_self_check();
        let v = from_str_value(&json).unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(0.125));
    }

    fn serde_json_self_check() -> String {
        format!("{{\"seed\":{},\"rate\":{}}}", u64::MAX, 0.125f64)
    }

    #[test]
    fn float_exact_round_trip() {
        // Shortest-repr f64 formatting parses back to the identical bits.
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            1e-300,
            123_456_789.123_456_79,
            f64::MIN_POSITIVE,
        ] {
            let v = from_str_value(&x.to_string()).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
    }
}
