//! Offline stand-in for `serde_json`.
//!
//! Output side: [`to_string`] / [`to_string_pretty`] / [`to_writer`] over
//! the serde shim's direct-to-JSON [`Serialize`]. Input side: a full JSON
//! parser into the dynamic [`Value`] tree ([`from_str_value`]); typed
//! deserialization is hand-written by consumers walking the tree (the
//! scenario layer in `strat-scenario` is the main client).

#![warn(clippy::all)]

mod value;

use std::io::Write;

use serde::Serialize;

pub use value::{from_str_value, ParseError, Value};

/// Compact JSON encoding of `value`.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, std::io::Error> {
    Ok(value.to_json())
}

/// Pretty (2-space indented) JSON encoding of `value`.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, std::io::Error> {
    Ok(prettify(&value.to_json()))
}

/// Writes compact JSON to `writer`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), std::io::Error> {
    writer.write_all(value.to_json().as_bytes())
}

/// Writes pretty JSON to `writer`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), std::io::Error> {
    writer.write_all(prettify(&value.to_json()).as_bytes())
}

/// Re-indents a compact JSON document produced by the serde shim.
///
/// The input is trusted (it comes from our own encoder), so this is a
/// simple structural walk: newline + indent after `{`/`[`/`,`, newline
/// before `}`/`]`, with string literals passed through verbatim.
fn prettify(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut indent = 0usize;
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                out.push('"');
                let mut escaped = false;
                for s in chars.by_ref() {
                    out.push(s);
                    if escaped {
                        escaped = false;
                    } else if s == '\\' {
                        escaped = true;
                    } else if s == '"' {
                        break;
                    }
                }
            }
            '{' | '[' => {
                out.push(c);
                // Keep empty containers on one line.
                let close = if c == '{' { '}' } else { ']' };
                if chars.peek() == Some(&close) {
                    out.push(close);
                    chars.next();
                } else {
                    indent += 1;
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent));
                }
            }
            '}' | ']' => {
                indent = indent.saturating_sub(1);
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(c);
            }
            ',' => {
                out.push(',');
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            ':' => {
                out.push_str(": ");
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_round_trip_shape() {
        let pretty = prettify("{\"a\":[1,2],\"b\":{},\"c\":\"x,y:{}\"}");
        assert!(pretty.contains("\"a\": [\n"));
        assert!(pretty.contains("\"b\": {}"));
        // String contents must be untouched.
        assert!(pretty.contains("\"x,y:{}\""));
    }

    #[test]
    fn to_string_works() {
        assert_eq!(to_string(&vec![1u32, 2]).unwrap(), "[1,2]");
    }
}
