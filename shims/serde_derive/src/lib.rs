//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim.
//!
//! No `syn`/`quote` are available offline, so this parses the derive input
//! token stream directly. It supports exactly the shapes this workspace
//! derives on: non-generic structs (named, tuple, unit) and non-generic
//! enums (unit, tuple and struct variants). One-field tuple structs
//! serialize transparently (matching the workspace's only uses of
//! `#[serde(transparent)]`), other serde attributes are accepted and
//! ignored. `Deserialize` expands to nothing — the workspace never
//! deserializes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON, externally tagged enums).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => named_struct_body(fields),
        Shape::TupleStruct(arity) => tuple_struct_body(*arity),
        Shape::UnitStruct => "out.push_str(\"null\");".to_string(),
        Shape::Enum(variants) => enum_body(&item.name, variants),
    };
    let impl_code = format!(
        "impl ::serde::Serialize for {} {{\n\
         fn serialize_json_into(&self, out: &mut String) {{\n{body}\n}}\n}}",
        item.name
    );
    impl_code.parse().expect("generated impl parses")
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic types (on `{name}`)");
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_top_level_items(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive target must be a struct or enum, found `{other}`"),
    };
    Item { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists, tracking `<...>` nesting so types
/// like `HashMap<K, V>` do not split fields at inner commas.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts comma-separated items at angle-depth zero (tuple fields).
fn count_top_level_items(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut pending = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if pending {
                        count += 1;
                    }
                    pending = false;
                    continue;
                }
                _ => {}
            }
        }
        pending = true;
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_items(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the next variant separator.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn push_literal(code: &mut String, text: &str) {
    code.push_str(&format!("out.push_str({text:?});\n"));
}

fn named_struct_body(fields: &[String]) -> String {
    let mut code = String::new();
    push_literal(&mut code, "{");
    for (k, field) in fields.iter().enumerate() {
        let sep = if k > 0 { "," } else { "" };
        push_literal(&mut code, &format!("{sep}\"{field}\":"));
        code.push_str(&format!(
            "::serde::Serialize::serialize_json_into(&self.{field}, out);\n"
        ));
    }
    push_literal(&mut code, "}");
    code
}

fn tuple_struct_body(arity: usize) -> String {
    let mut code = String::new();
    if arity == 1 {
        // Transparent newtype (covers the workspace's `#[serde(transparent)]`).
        code.push_str("::serde::Serialize::serialize_json_into(&self.0, out);\n");
        return code;
    }
    push_literal(&mut code, "[");
    for k in 0..arity {
        if k > 0 {
            push_literal(&mut code, ",");
        }
        code.push_str(&format!(
            "::serde::Serialize::serialize_json_into(&self.{k}, out);\n"
        ));
    }
    push_literal(&mut code, "]");
    code
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    let mut code = String::from("match self {\n");
    for variant in variants {
        let vname = &variant.name;
        match &variant.kind {
            VariantKind::Unit => {
                code.push_str(&format!(
                    "{name}::{vname} => out.push_str(\"\\\"{vname}\\\"\"),\n"
                ));
            }
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                code.push_str(&format!("{name}::{vname}({}) => {{\n", binders.join(", ")));
                push_literal(&mut code, &format!("{{\"{vname}\":"));
                if *arity == 1 {
                    code.push_str("::serde::Serialize::serialize_json_into(__f0, out);\n");
                } else {
                    push_literal(&mut code, "[");
                    for (k, b) in binders.iter().enumerate() {
                        if k > 0 {
                            push_literal(&mut code, ",");
                        }
                        code.push_str(&format!(
                            "::serde::Serialize::serialize_json_into({b}, out);\n"
                        ));
                    }
                    push_literal(&mut code, "]");
                }
                push_literal(&mut code, "}");
                code.push_str("}\n");
            }
            VariantKind::Struct(fields) => {
                code.push_str(&format!(
                    "{name}::{vname} {{ {} }} => {{\n",
                    fields.join(", ")
                ));
                push_literal(&mut code, &format!("{{\"{vname}\":{{"));
                for (k, field) in fields.iter().enumerate() {
                    let sep = if k > 0 { "," } else { "" };
                    push_literal(&mut code, &format!("{sep}\"{field}\":"));
                    code.push_str(&format!(
                        "::serde::Serialize::serialize_json_into({field}, out);\n"
                    ));
                }
                push_literal(&mut code, "}}");
                code.push_str("}\n");
            }
        }
    }
    code.push_str("}\n");
    code
}
