//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal, deterministic implementation of the exact `rand` API
//! surface it uses: [`RngCore`], [`Rng`] (`gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`), [`seq::SliceRandom`]
//! (`shuffle`) and [`rngs::StdRng`].
//!
//! Semantics are NOT bit-compatible with crates.io `rand`; they are,
//! however, fully deterministic, and every consumer in this workspace
//! treats the RNG stream as an opaque reproducibility token, so the only
//! contract that matters is "same seed ⇒ same stream", which holds.

#![warn(clippy::all)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// float).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of [0, 1]: {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 top bits over 2^53: the standard open-right unit-interval mapping.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a uniform `u64` onto `0..len` by 128-bit widening multiply.
///
/// Bias is at most `len / 2^64`, far below anything observable here, and
/// the draw always consumes exactly one `u64`, which keeps streams aligned
/// across call sites.
#[inline]
fn mul_shift(bits: u64, len: u64) -> u64 {
    ((u128::from(bits) * u128::from(len)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let len = (self.end - self.start) as u64;
                self.start + mul_shift(rng.next_u64(), len) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let len = (end - start) as u64;
                if len == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + mul_shift(rng.next_u64(), len + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let x = self.start + (self.end - self.start) * unit_f64(rng.next_u64());
        // Floating rounding can land exactly on `end`; stay half-open.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * unit_f64(rng.next_u64())
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed material (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 exactly
    /// like crates.io `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and the engine behind [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(state: u64) -> Self {
        Self { state }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Provided generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Not the crates.io `StdRng` algorithm, but this workspace only relies
    /// on determinism, not on cross-crate bit compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which is a fixed point of xoshiro.
            if s == [0; 4] {
                let mut sm = SplitMix64::new(0);
                for slot in &mut s {
                    *slot = sm.next_u64();
                }
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place, uniformly over permutations.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z = rng.gen_range(0u32..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
