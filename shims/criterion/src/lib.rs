//! Offline stand-in for `criterion`.
//!
//! Provides the API subset the workspace's benches use (`benchmark_group`,
//! `bench_function`, `bench_with_input`, `bench_pair`, `Bencher::iter`,
//! `black_box`, the `criterion_group!`/`criterion_main!` macros) on top of
//! a simple but honest measurement core: warm-up, then `sample_size`
//! samples of
//! auto-calibrated iteration batches, reporting the **median**
//! per-iteration time after Tukey IQR outlier rejection (samples outside
//! `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` — warm-up spikes, scheduler
//! preemptions — are discarded before the median is taken, so exported
//! ratios stop absorbing them).
//!
//! Environment knobs:
//!
//! * `CRITERION_JSON=path` — append one JSON line per benchmark
//!   (`{"group":…,"bench":…,"median_ns":…}`), consumed by
//!   `crates/bench/src/bin/export.rs`;
//! * `BENCH_TIME_SCALE=x` — multiply warm-up and measurement budgets
//!   (e.g. `0.2` for quick smoke runs).

#![warn(clippy::all)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    time_scale: f64,
}

impl Default for Criterion {
    fn default() -> Self {
        let time_scale = std::env::var("BENCH_TIME_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| s.is_finite() && *s > 0.0)
            .unwrap_or(1.0);
        Self { time_scale }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            warm_up: Duration::from_millis(400),
            measurement: Duration::from_secs(2),
            sample_size: 15,
        }
    }
}

/// Identifier of a parameterized benchmark (`name/parameter`).
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = self.make_bencher();
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = self.make_bencher();
        f(&mut bencher, input);
        self.report(&id.full, &bencher);
        self
    }

    /// Measures two bodies with **interleaved** sample blocks, reporting
    /// one row each. Back-to-back `bench_function` runs of near-identical
    /// kernels absorb slow machine drift (frequency scaling, thermal
    /// state) into their ratio; alternating A/B blocks within every
    /// sample keeps that drift common to both sides, so the ratio of the
    /// two medians is meaningful at the percent level. Both sides run
    /// the same calibrated iteration count per block.
    pub fn bench_pair<OA, OB>(
        &mut self,
        id_a: impl Into<String>,
        mut a: impl FnMut() -> OA,
        id_b: impl Into<String>,
        mut b: impl FnMut() -> OB,
    ) -> &mut Self {
        let scale = self.criterion.time_scale;
        let warm_up = self.warm_up.mul_f64(scale);
        let measurement = self.measurement.mul_f64(scale);

        // Warm up both sides alternately while estimating iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < warm_up || warm_iters == 0 {
            black_box(a());
            black_box(b());
            warm_iters += 1;
        }
        let per_pair = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Calibrate so the A+B blocks of one sample fill the per-sample
        // slice of the measurement budget.
        let budget = measurement.as_secs_f64().max(1e-3);
        let per_sample = budget / self.sample_size as f64;
        let iters = ((per_sample / per_pair.max(1e-9)).floor() as u64).max(1);

        let mut samples_a = Vec::with_capacity(self.sample_size);
        let mut samples_b = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(a());
            }
            samples_a.push(start.elapsed().as_nanos() as f64 / iters as f64);
            let start = Instant::now();
            for _ in 0..iters {
                black_box(b());
            }
            samples_b.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        samples_a.sort_by(f64::total_cmp);
        samples_b.sort_by(f64::total_cmp);
        self.emit(
            &id_a.into(),
            robust_median(&samples_a),
            self.sample_size,
            iters,
        );
        self.emit(
            &id_b.into(),
            robust_median(&samples_b),
            self.sample_size,
            iters,
        );
        self
    }

    /// Ends the group (cosmetic; reports are emitted eagerly).
    pub fn finish(&mut self) {}

    fn make_bencher(&self) -> Bencher {
        let scale = self.criterion.time_scale;
        Bencher {
            warm_up: self.warm_up.mul_f64(scale),
            measurement: self.measurement.mul_f64(scale),
            sample_size: self.sample_size,
            median_ns: None,
            samples: 0,
            iters_per_sample: 0,
        }
    }

    fn report(&self, id: &str, bencher: &Bencher) {
        let Some(median_ns) = bencher.median_ns else {
            eprintln!(
                "warning: benchmark {}/{id} never called Bencher::iter",
                self.name
            );
            return;
        };
        self.emit(id, median_ns, bencher.samples, bencher.iters_per_sample);
    }

    fn emit(&self, id: &str, median_ns: f64, samples: usize, iters_per_sample: u64) {
        println!(
            "{:<52} median {:>12.1} ns  ({samples} samples x {iters_per_sample} iters)",
            format!("{}/{}", self.name, id),
            median_ns,
        );
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1}}}",
                    self.name, id, median_ns
                );
            }
        }
    }
}

/// Runs and times one benchmark body.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    median_ns: Option<f64>,
    samples: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, storing the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up while estimating the cost of one iteration.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Calibrate iterations per sample to fill the measurement budget.
        let budget = self.measurement.as_secs_f64().max(1e-3);
        let per_sample = budget / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)).floor() as u64).max(1);

        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            samples_ns.push(elapsed / iters as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        self.median_ns = Some(robust_median(&samples_ns));
        self.samples = self.sample_size;
        self.iters_per_sample = iters;
    }
}

/// Linearly interpolated quantile of a sorted, non-empty slice.
fn quantile(sorted: &[f64], p: f64) -> f64 {
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    sorted[lo] + (sorted[hi] - sorted[lo]) * (idx - lo as f64)
}

/// Median of a sorted, non-empty sample after Tukey IQR outlier rejection:
/// values outside `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]` are dropped first. The
/// median itself always lies inside the fences, so the kept set is never
/// empty.
fn robust_median(sorted: &[f64]) -> f64 {
    let q1 = quantile(sorted, 0.25);
    let q3 = quantile(sorted, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    let start = sorted.partition_point(|&x| x < lo);
    let end = sorted.partition_point(|&x| x <= hi);
    let kept = &sorted[start..end];
    let mid = kept.len() / 2;
    if kept.len().is_multiple_of(2) {
        (kept[mid - 1] + kept[mid]) / 2.0
    } else {
        kept[mid]
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_sane() {
        std::env::remove_var("CRITERION_JSON");
        let mut c = Criterion { time_scale: 0.02 };
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            });
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("stable", 1000);
        assert_eq!(id.full, "stable/1000");
    }

    #[test]
    fn iqr_rejection_discards_warmup_spikes() {
        // A single 100 ns spike among 1–5 ns samples: the plain median
        // would be 3.5 (it straddles the spike's pull on the midpoint);
        // the fences reject the spike and the median of the rest is 3.
        let samples = [1.0, 2.0, 3.0, 4.0, 5.0, 100.0];
        assert_eq!(robust_median(&samples), 3.0);
        // Spike-free samples are untouched.
        assert_eq!(robust_median(&[1.0, 2.0, 3.0, 4.0, 5.0]), 3.0);
        assert_eq!(robust_median(&[2.0, 4.0]), 3.0);
        assert_eq!(robust_median(&[7.5]), 7.5);
        // Outliers on both sides.
        let two_sided = [0.001, 10.0, 10.5, 11.0, 11.5, 12.0, 500.0];
        assert_eq!(robust_median(&two_sided), 11.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let sorted = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(quantile(&sorted, 0.0), 0.0);
        assert_eq!(quantile(&sorted, 1.0), 3.0);
        assert_eq!(quantile(&sorted, 0.5), 1.5);
    }
}
