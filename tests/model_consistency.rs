//! Cross-crate integration: the dynamics engine, Algorithm 1, and the
//! analytic solvers must all tell the same story.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stratification::analytic::{b_matching, monte_carlo, one_matching};
use stratification::core::{
    blocking, cluster, stable_configuration, Capacities, Dynamics, GlobalRanking,
    InitiativeStrategy, RankedAcceptance,
};
use stratification::graph::{generators, NodeId};

/// All three initiative strategies converge to Algorithm 1's fixpoint on
/// the same instance (Theorem 1 uniqueness, cross-strategy).
#[test]
fn all_strategies_share_the_fixpoint() {
    let n = 120;
    let mut graph_rng = ChaCha8Rng::seed_from_u64(77);
    let graph = generators::erdos_renyi_mean_degree(n, 12.0, &mut graph_rng);
    let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n)).unwrap();
    let caps = Capacities::constant(n, 2);
    let reference = stable_configuration(&acc, &caps).unwrap();

    for strategy in [
        InitiativeStrategy::BestMate,
        InitiativeStrategy::Decremental,
        InitiativeStrategy::Random,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(88);
        let mut dynamics = Dynamics::new(acc.clone(), caps.clone(), strategy).unwrap();
        for _ in 0..4000 {
            dynamics.run_base_unit(&mut rng);
            if dynamics.is_stable() {
                break;
            }
        }
        assert!(dynamics.is_stable(), "{strategy:?} did not converge");
        assert_eq!(
            dynamics.matching(),
            &reference,
            "{strategy:?} found another fixpoint"
        );
    }
}

/// The empirical mate-rank distribution produced by the *dynamics engine*
/// (not Algorithm 1) across graph realizations matches Algorithm 2 — the
/// analytic model describes what the protocol dynamics actually do.
#[test]
fn dynamics_ensemble_matches_algorithm2() {
    let n = 150;
    let p = 0.08;
    let peer = 75usize;
    let realizations = 1500;
    let mut counts = vec![0u64; n];
    let mut unmatched = 0u64;
    let mut rng = ChaCha8Rng::seed_from_u64(5150);
    for _ in 0..realizations {
        let graph = generators::erdos_renyi(n, p, &mut rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n)).unwrap();
        let caps = Capacities::constant(n, 1);
        let mut dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate).unwrap();
        // Run dynamics rather than calling Algorithm 1.
        for _ in 0..200 {
            dynamics.run_base_unit(&mut rng);
            if dynamics.is_stable() {
                break;
            }
        }
        assert!(dynamics.is_stable());
        match dynamics.matching().mate_of(NodeId::new(peer)) {
            Some(mate) => counts[mate.index()] += 1,
            None => unmatched += 1,
        }
    }
    let empirical: Vec<f64> = counts
        .iter()
        .map(|&c| c as f64 / realizations as f64)
        .collect();
    let analytic = one_matching::solve(n, p, &[peer]);
    let l1 = monte_carlo::l1_distance(&empirical, analytic.row(peer).unwrap());
    assert!(l1 < 0.35, "dynamics-ensemble vs Algorithm 2: L1 = {l1}");
    let unmatched_rate = unmatched as f64 / realizations as f64;
    let predicted = analytic.unmatched_probability(peer);
    assert!(
        (unmatched_rate - predicted).abs() < 0.05,
        "unmatched rate {unmatched_rate} vs predicted {predicted}"
    );
}

/// Monte Carlo over Algorithm 1 agrees with Algorithm 3 per choice —
/// the Figure 9 validation as an integration test.
#[test]
fn monte_carlo_validates_algorithm3() {
    let cfg = monte_carlo::MonteCarloConfig {
        n: 200,
        p: 0.06,
        b0: 2,
        realizations: 3000,
        seed: 99,
        threads: 8,
    };
    let peer = 120;
    let hist = monte_carlo::estimate_choice_distribution(&cfg, peer);
    let analytic = b_matching::solve(cfg.n, cfg.p, cfg.b0, &[peer]);
    for c in 1..=2u32 {
        let l1 = monte_carlo::l1_distance(&hist.row(c), analytic.choice_row(peer, c).unwrap());
        assert!(l1 < 0.3, "choice {c}: L1 = {l1}");
        assert!(
            (hist.choice_mass(c) - analytic.choice_mass(peer, c)).abs() < 0.05,
            "choice {c} mass"
        );
    }
}

/// Stratification end-to-end: the stable configuration of a large random
/// instance has small MMO relative to n, with the n/d scaling of §5.
#[test]
fn stratification_offsets_scale_with_n_over_d() {
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let mut mmo_for = |n: usize, d: f64| {
        let graph = generators::erdos_renyi_mean_degree(n, d, &mut rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n)).unwrap();
        let caps = Capacities::constant(n, 1);
        let m = stable_configuration(&acc, &caps).unwrap();
        assert!(blocking::is_stable(&acc, &caps, &m));
        cluster::mean_max_offset(acc.ranking(), &m)
    };
    // Offsets are ~ n/d: doubling n doubles MMO; doubling d halves it.
    let base = mmo_for(1000, 10.0);
    let double_n = mmo_for(2000, 10.0);
    let double_d = mmo_for(1000, 20.0);
    assert!(
        (double_n / base - 2.0).abs() < 0.7,
        "n-scaling: {base} -> {double_n}"
    );
    assert!(
        (double_d / base - 0.5).abs() < 0.3,
        "d-scaling: {base} -> {double_d}"
    );
    // And stratification itself: MMO is a tiny fraction of n.
    assert!(base < 1000.0 / 10.0 * 3.0, "MMO {base} not ~ n/d");
}

/// Churn robustness at integration scale: disorder bounded, and removing
/// churn lets the system land exactly on the stable configuration.
#[test]
fn churned_system_recovers_once_churn_stops() {
    use stratification::core::ChurnProcess;
    let n = 400;
    let mut rng = ChaCha8Rng::seed_from_u64(404);
    let graph = generators::erdos_renyi_mean_degree(n, 10.0, &mut rng);
    let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n)).unwrap();
    let caps = Capacities::constant(n, 1);
    let dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate).unwrap();
    let mut churn = ChurnProcess::new(dynamics, 0.02);
    for _ in 0..15 {
        churn.run_base_unit(&mut rng);
    }
    let during = churn.dynamics().disorder();
    assert!(during < 0.6, "disorder under churn: {during}");
    // Stop churning; reconverge.
    let mut dynamics = churn.dynamics().clone();
    for _ in 0..100 {
        dynamics.run_base_unit(&mut rng);
        if dynamics.is_stable() {
            break;
        }
    }
    assert!(dynamics.is_stable());
    assert_eq!(dynamics.matching(), &dynamics.instant_stable());
}
