//! Guard against documentation rot: the command snippets in the README
//! and `docs/` must keep referencing real packages, binaries and preset
//! files — and must keep *running*.
//!
//! Two layers:
//!
//! * the always-on tests statically validate every fenced `sh` block
//!   (packages exist, binaries exist, referenced preset files exist) and
//!   parse every complete scenario JSON snippet through
//!   [`Scenario::from_json`];
//! * [`documented_commands_execute`] (`#[ignore]`, run by the CI docs
//!   job) executes the snippets for real, with bounded-time adaptations:
//!   `--quick` profiles, temp output directories, and a scaled-down
//!   benchmark export. Build/test invocations are skipped — CI runs those
//!   directly.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use strat_scenario::Scenario;

/// Every document whose command snippets are under guard.
const DOC_FILES: &[&str] = &[
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/SCENARIO_SCHEMA.md",
    "results/scenarios/README.md",
];

/// Fenced code blocks of the given language in `text`.
fn fenced_blocks(text: &str, lang: &str) -> Vec<String> {
    let mut blocks = Vec::new();
    let mut current: Option<String> = None;
    for line in text.lines() {
        let trimmed = line.trim();
        match &mut current {
            None if trimmed == format!("```{lang}") => current = Some(String::new()),
            Some(block) if trimmed == "```" => {
                blocks.push(std::mem::take(block));
                current = None;
            }
            Some(block) => {
                block.push_str(line);
                block.push('\n');
            }
            None => {}
        }
    }
    blocks
}

/// All `(doc file, command line)` pairs from the fenced `sh` blocks.
fn documented_commands() -> Vec<(String, String)> {
    let mut commands = Vec::new();
    for file in DOC_FILES {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {file}: {e}"));
        for block in fenced_blocks(&text, "sh") {
            for line in block.lines() {
                let line = line.trim();
                if !line.is_empty() && !line.starts_with('#') {
                    commands.push((file.to_string(), line.to_string()));
                }
            }
        }
    }
    assert!(
        !commands.is_empty(),
        "no documented commands found — extraction broke?"
    );
    commands
}

/// Workspace package names, read from every member manifest.
fn workspace_packages() -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut manifests: Vec<PathBuf> = vec![PathBuf::from("Cargo.toml")];
    for dir in ["crates", "shims"] {
        for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("read {dir}: {e}")) {
            let path = entry.expect("dir entry").path().join("Cargo.toml");
            if path.is_file() {
                manifests.push(path);
            }
        }
    }
    for manifest in manifests {
        let text = std::fs::read_to_string(&manifest).expect("readable manifest");
        if let Some(name) = text.lines().find_map(|l| {
            l.strip_prefix("name = \"")
                .and_then(|rest| rest.strip_suffix('"'))
        }) {
            names.insert(name.to_string());
        }
    }
    names
}

/// Directory of a workspace package (for `--bin` existence checks).
fn package_dir(package: &str) -> Option<PathBuf> {
    if package == "stratification" {
        return Some(PathBuf::from("."));
    }
    let dir = package.strip_prefix("strat-")?;
    let path = PathBuf::from("crates").join(dir);
    path.is_dir().then_some(path)
}

fn tokens(cmd: &str) -> Vec<String> {
    cmd.split_whitespace().map(str::to_string).collect()
}

fn value_after(tokens: &[String], flag: &str) -> Option<String> {
    tokens
        .iter()
        .position(|t| t == flag)
        .and_then(|i| tokens.get(i + 1).cloned())
}

#[test]
fn documented_commands_reference_real_artifacts() {
    let packages = workspace_packages();
    for (file, cmd) in documented_commands() {
        let toks = tokens(&cmd);
        assert_eq!(toks[0], "cargo", "{file}: non-cargo snippet `{cmd}`");
        if let Some(package) = value_after(&toks, "-p") {
            assert!(
                packages.contains(&package),
                "{file}: `{cmd}` references unknown package {package}"
            );
            if let Some(bin) = value_after(&toks, "--bin") {
                let dir = package_dir(&package)
                    .unwrap_or_else(|| panic!("{file}: no directory for package {package}"));
                let bin_path = dir.join("src/bin").join(format!("{bin}.rs"));
                assert!(
                    bin_path.is_file(),
                    "{file}: `{cmd}` references missing binary {}",
                    bin_path.display()
                );
            }
        }
        for tok in &toks {
            if tok.starts_with("results/scenarios/") && tok.ends_with(".json") {
                assert!(
                    Path::new(tok).is_file(),
                    "{file}: `{cmd}` references missing preset {tok}"
                );
            }
        }
    }
}

#[test]
fn documented_scenario_json_parses() {
    // Every complete scenario snippet (it has an `experiment` binding)
    // must parse through the real parser; fragments are exempt.
    let mut checked = 0;
    for file in DOC_FILES {
        let text = std::fs::read_to_string(file).unwrap_or_else(|e| panic!("read {file}: {e}"));
        for block in fenced_blocks(&text, "json") {
            if !block.contains("\"experiment\"") {
                continue;
            }
            let scenario = Scenario::from_json(&block)
                .unwrap_or_else(|e| panic!("{file}: scenario snippet does not parse: {e}"));
            assert!(scenario.peers > 0, "{file}: degenerate snippet");
            checked += 1;
        }
    }
    assert!(checked >= 2, "expected the schema doc's full examples");
}

/// Executes the documented commands (CI docs job; see module docs for the
/// bounded-time adaptations). Run with `cargo test --release --test
/// docs_commands -- --ignored`.
#[test]
#[ignore = "executes real cargo commands; run by the CI docs job"]
fn documented_commands_execute() {
    let scratch = std::env::temp_dir().join(format!("docs-commands-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    // The schema doc's worked example references `my-sweep.json`;
    // materialize it from the doc's own JSON block.
    let schema = std::fs::read_to_string("docs/SCENARIO_SCHEMA.md").expect("schema doc");
    let sweep = fenced_blocks(&schema, "json")
        .into_iter()
        .find(|b| b.contains("my-sweep"))
        .expect("worked example present");
    let sweep_path = scratch.join("my-sweep.json");
    std::fs::write(&sweep_path, sweep).expect("write worked example");

    for (idx, (file, cmd)) in documented_commands().into_iter().enumerate() {
        let mut toks = tokens(&cmd);
        // CI runs the build/test commands directly.
        if toks[1] == "build" || toks[1] == "test" {
            continue;
        }
        // Rewrite the documented tokens first (before any adaptation
        // appends paths of its own): the schema doc's example file
        // materializes in the scratch dir, and documented output paths
        // redirect there too.
        for tok in &mut toks {
            if tok == "my-sweep.json" {
                *tok = sweep_path.display().to_string();
            } else if tok.starts_with("/tmp/") {
                *tok = scratch
                    .join(format!("redirect-{idx}.json"))
                    .display()
                    .to_string();
            }
        }
        let out_dir = scratch.join(format!("out-{idx}"));
        let is_experiments = value_after(&toks, "--bin").as_deref() == Some("experiments");
        let is_export = value_after(&toks, "--bin").as_deref() == Some("export");
        // Appended flags must land on the binary, not on cargo.
        if (is_experiments || is_export) && !toks.iter().any(|t| t == "--") {
            toks.push("--".into());
        }
        if is_experiments {
            // Bound runtime and keep the checkout clean.
            if !toks.iter().any(|t| t == "--quick") {
                toks.push("--quick".into());
            }
            if let Some(i) = toks.iter().position(|t| t == "--out") {
                toks[i + 1] = out_dir.display().to_string();
            } else {
                toks.push("--out".into());
                toks.push(out_dir.display().to_string());
            }
        }
        if is_export && !toks.last().is_some_and(|t| t.ends_with(".json")) {
            toks.push(
                scratch
                    .join(format!("bench-{idx}.json"))
                    .display()
                    .to_string(),
            );
        }
        let status = Command::new("cargo")
            .args(&toks[1..])
            .env("BENCH_TIME_SCALE", "0.02")
            .status()
            .unwrap_or_else(|e| panic!("{file}: `{cmd}` failed to spawn: {e}"));
        assert!(status.success(), "{file}: `{cmd}` exited with {status}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
