//! Integration: the BitTorrent protocol simulator exhibits the behaviour
//! the abstract matching model predicts (the paper's §6 correspondence).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stratification::analytic::fluid::BtFluidParams;
use stratification::bandwidth::{efficiency_curve, BandwidthCdf, EfficiencyModel};
use stratification::bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use stratification::bittorrent::{metrics, Swarm, SwarmConfig, TraceLog, TraceObserver};

fn saroiu_swarm(leechers: usize, rounds: u64, seed: u64) -> Swarm {
    let seeds = 2;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .mean_neighbors(20.0)
        .tft_slots(3)
        .optimistic_slots(1)
        .fluid_content(true)
        .seed(seed)
        .build();
    let cdf = BandwidthCdf::saroiu_gnutella_upstream();
    let mut uploads = cdf.assign_by_rank(leechers);
    uploads.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0xf00d));
    uploads.extend(std::iter::repeat_n(1000.0, seeds));
    let mut swarm = Swarm::new(config, &uploads);
    swarm.run_rounds(rounds);
    swarm
}

/// TFT reciprocation stratifies: the mean rank offset of reciprocated
/// pairs ends far below the random-pairing baseline (~n/3).
#[test]
fn swarm_stratifies_far_below_random_baseline() {
    let n = 200;
    let swarm = saroiu_swarm(n, 120, 1);
    let snap = metrics::stratification_snapshot(&swarm);
    let offset = snap.mean_rank_offset.expect("pairs exist");
    let random_baseline = n as f64 / 3.0;
    assert!(
        offset < 0.5 * random_baseline,
        "offset {offset:.1} not well below random {random_baseline:.1}"
    );
    assert!(snap.reciprocal_pairs as f64 > n as f64 / 4.0);
}

/// The swarm's TFT-economy share ratios have the Figure 11 direction: the
/// fastest class pays (aggregate D/U < 1) and the slowest class rides
/// (aggregate D/U > 1). Aggregate (traffic-weighted) ratios are the robust
/// class-level measure: per-peer means are dominated by the coarse
/// discretization of the heavy Saroiu top tail at swarm sizes.
#[test]
fn swarm_share_ratios_follow_figure11_direction() {
    let n = 240;
    let swarm = saroiu_swarm(n, 160, 2);
    let mut uploads: Vec<f64> = metrics::leecher_performance(&swarm)
        .iter()
        .map(|p| p.upload_kbps)
        .collect();
    uploads.sort_by(f64::total_cmp);
    let q1 = uploads[n / 4];
    let q3 = uploads[3 * n / 4];
    let slow = metrics::aggregate_tft_ratio_in_band(&swarm, 0.0, q1)
        .expect("slow class carries TFT traffic");
    let fast = metrics::aggregate_tft_ratio_in_band(&swarm, q3, 1e12)
        .expect("fast class carries TFT traffic");
    assert!(
        slow > fast,
        "slow-class aggregate D/U {slow:.2} must exceed fast-class {fast:.2}"
    );
    assert!(fast < 1.0, "fastest class not subsidizing: {fast:.2}");
    assert!(slow > 1.0, "slowest class not subsidized: {slow:.2}");
}

/// The analytic efficiency model (Algorithm 3 + bandwidth CDF) and the
/// protocol simulator agree on who wins and who pays: correlation between
/// per-class D/U ratios is positive and strong in direction.
#[test]
fn analytic_and_simulated_efficiency_agree_by_class() {
    let n = 240;
    let swarm = saroiu_swarm(n, 160, 3);
    let curve = efficiency_curve(
        &EfficiencyModel {
            b0: 3,
            d: 20.0,
            n: 1000,
        },
        &BandwidthCdf::saroiu_gnutella_upstream(),
    );
    // Classes by upload bandwidth (kbps).
    let classes = [(10.0, 64.0), (64.0, 300.0), (300.0, 1500.0), (1500.0, 1e7)];
    let mut agree = 0usize;
    let mut total = 0usize;
    for (lo, hi) in classes {
        let sim = metrics::mean_share_ratio_in_band(&swarm, lo, hi);
        let ana: Vec<f64> = curve
            .iter()
            .filter(|p| p.upload >= lo && p.upload < hi)
            .map(|p| p.ratio)
            .collect();
        if let (Some(sim), false) = (sim, ana.is_empty()) {
            let ana = ana.iter().sum::<f64>() / ana.len() as f64;
            total += 1;
            // Same side of 1.0 = same winner/payer verdict.
            if (sim > 1.0) == (ana > 1.0) {
                agree += 1;
            }
        }
    }
    assert!(total >= 3, "too few comparable classes");
    assert!(
        agree >= total - 1,
        "model and simulator disagree on {}/{total} classes",
        total - agree
    );
}

/// Piece-level swarm sanity at integration scale: a heterogeneous swarm
/// with real piece dynamics completes, respecting rarest-first coupon
/// collection.
#[test]
fn heterogeneous_swarm_completes_with_piece_dynamics() {
    let leechers = 60;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(2)
        .piece_count(64)
        .piece_size_kbit(200.0)
        .initial_completion(0.2)
        .mean_neighbors(16.0)
        .seed(9)
        .build();
    let mut uploads: Vec<f64> = (0..leechers)
        .map(|i| 200.0 * 1.03f64.powi(i as i32))
        .collect();
    uploads.extend([2000.0, 2000.0]);
    let mut swarm = Swarm::new(config, &uploads);
    for _ in 0..3000 {
        swarm.round();
        if swarm.completed_count() == leechers {
            break;
        }
    }
    assert_eq!(
        swarm.completed_count(),
        leechers,
        "swarm failed to complete"
    );
    // Conservation at the end of the run.
    let up: f64 = (0..swarm.peer_count())
        .map(|p| swarm.peer(p).total_uploaded())
        .sum();
    let down: f64 = (0..swarm.peer_count())
        .map(|p| swarm.peer(p).total_downloaded())
        .sum();
    assert!((up - down).abs() < 1e-6);
}

// ---------------------------------------------------------------------
// Fluid-transient validation: the session engine, observed through the
// RunObserver trace layer, against the RK4 fluid oracle
// (`BtFluidParams::trajectory`). Arrivals come from a deterministic
// `ArrivalProcess::Trace` so the deterministic ODE is the right oracle
// for the *transient* (no Poisson noise), and the per-round population
// trajectory is reconstructed from the observer's arrival / completion /
// departure event streams — reconstruction and polled populations must
// agree exactly before either is compared to the fluid band.
// ---------------------------------------------------------------------

/// Constant 400 kbps peers over a 512 × 250 kbit file at 10 s rounds:
/// service rate μ = 400·10/128000 = 1/32 files per round.
const CHURN_UPLOAD_KBPS: f64 = 400.0;
const CHURN_MU: f64 = 1.0 / 32.0;

fn churn_swarm(leechers: usize, seeds: usize, completion: f64, seed: u64) -> Swarm {
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(512)
        .piece_size_kbit(250.0)
        .initial_completion(completion)
        .mean_neighbors(20.0)
        .seed_after_completion(true)
        .seed(seed)
        .build();
    let uploads = vec![CHURN_UPLOAD_KBPS; leechers + seeds];
    Swarm::new(config, &uploads)
}

/// A deterministic λ-per-round arrival trace with optional extra bursts.
fn arrival_trace(rate: u32, horizon: u64, bursts: &[(u64, u32)]) -> ArrivalProcess {
    let mut arrivals: Vec<(u64, u32)> = (0..horizon).map(|r| (r, rate)).collect();
    arrivals.extend_from_slice(bursts);
    ArrivalProcess::Trace { arrivals }
}

/// Runs `rounds` observed rounds, polling `(downloading, seeding)` after
/// each; returns the polled trajectory, the trace log, and the session.
fn run_observed(mut session: Session, rounds: u64) -> (Vec<(usize, usize)>, TraceLog, Session) {
    let obs = TraceObserver::new();
    let mut polled = Vec::with_capacity(rounds as usize);
    for _ in 0..rounds {
        session.run_rounds_with(1, &obs);
        let pop = session.population();
        polled.push((pop.downloading, pop.seeding));
    }
    (polled, obs.into_log(), session)
}

/// Leecher count after `k` steps, reconstructed from the trace streams:
/// `x0 + arrivals(stamp ≤ k−1) − completions(stamp ≤ k) − aborts`.
/// With `abort_prob = 0` every leecher exit is a completion.
fn reconstruct_leechers(log: &TraceLog, x0: usize, steps: u64) -> i64 {
    let arr = log
        .arrivals
        .iter()
        .filter(|&&(t, _)| t <= (steps - 1) as f64)
        .count() as i64;
    let comp = log
        .completions
        .iter()
        .filter(|&&(t, _)| t <= steps as f64)
        .count() as i64;
    x0 as i64 + arr - comp
}

/// Mean and max relative error of the simulated leecher trajectory
/// against the fluid curve, starting `skip_t` fluid steps in. The skip
/// documents the packet-level lag the memoryless ODE cannot resolve: a
/// fresh arrival needs at least 1/μ = 32 rounds to download the file, so
/// the first ~40 rounds after a perturbation relax later than the fluid.
fn leecher_band(
    polled: &[(usize, usize)],
    fluid: &[(f64, f64, f64)],
    from_round: usize,
    offset: usize,
    skip_t: usize,
) -> (f64, f64) {
    let mut sum = 0.0f64;
    let mut worst = 0.0f64;
    let mut count = 0usize;
    for (i, &(_, fx, _)) in fluid.iter().enumerate().skip(skip_t.max(1)) {
        let r = from_round + i - offset;
        let Some(&(x, _)) = polled.get(r) else { break };
        let rel = (x as f64 - fx).abs() / fx.max(1.0);
        sum += rel;
        worst = worst.max(rel);
        count += 1;
    }
    (sum / count as f64, worst)
}

/// A burst arrival transient relaxes back along the fluid ODE: steady
/// deterministic arrivals (λ = 4/round, γ = 1/4, x̄ = 110), a 60-peer
/// flash at round 140, and the decay back to x̄ tracked within a
/// documented band of the RK4 oracle. The observer's event streams must
/// reproduce the polled leecher population exactly at every round.
#[test]
fn burst_arrival_transient_follows_fluid_oracle() {
    let (lambda, gamma, s0) = (4.0, 0.25, 2usize);
    let x_bar = (lambda / CHURN_MU - lambda / gamma - s0 as f64).round() as usize; // 110
    let (burst_round, horizon) = (140u64, 260u64);
    let config = SessionConfig {
        arrival: arrival_trace(lambda as u32, horizon, &[(burst_round, 60)]),
        departure: DepartureRules {
            leave_on_completion: 0.0,
            seed_leave_prob: gamma,
            seed_exodus_round: None,
            abort_prob: 0.0,
        },
        arrival_upload_kbps: CHURN_UPLOAD_KBPS,
        arrival_completion: 0.0,
        target_degree: 20,
        session_seed: 0xb1257,
        batched_wiring: false,
        peer_list_cap: None,
        compact_threshold: None,
    };
    let session = Session::new(churn_swarm(x_bar, s0, 0.5, 11), config);
    let (polled, log, session) = run_observed(session, horizon);

    // Observer identity: event-stream reconstruction == polled count.
    for k in 1..=horizon {
        assert_eq!(
            reconstruct_leechers(&log, x_bar, k),
            polled[(k - 1) as usize].0 as i64,
            "trace reconstruction diverged after round {k}"
        );
    }
    assert_eq!(log.arrivals.len() as u64, session.stats().arrivals);

    // Fluid oracle: relaxation from the measured pre-burst state plus
    // the flash, piecewise from the burst round.
    let params = BtFluidParams {
        lambda,
        mu: CHURN_MU,
        gamma,
        theta: 0.0,
        eta: 1.0,
        s0: s0 as f64,
    };
    let pre = polled[(burst_round - 1) as usize];
    let x0 = pre.0 as f64 + 60.0;
    let y0 = (pre.1 - s0) as f64;
    let fluid = params.trajectory(x0, y0, (horizon - burst_round) as f64, 1.0);

    // The burst itself is visible at packet level: the pool spikes well
    // above the steady state while the flash cohort downloads.
    let peak = polled[burst_round as usize..(burst_round + 32) as usize]
        .iter()
        .map(|&(x, _)| x)
        .max()
        .unwrap();
    assert!(
        peak >= x_bar + 40,
        "burst of 60 arrivals barely moved the pool: peak {peak} vs steady {x_bar}"
    );

    // Past the ~1/μ download-time lag the decay hugs the RK4 curve.
    let (mean_err, max_err) = leecher_band(&polled, &fluid, burst_round as usize, 1, 40);
    println!("burst transient: mean rel err {mean_err:.4}, max {max_err:.4}");
    assert!(
        mean_err <= 0.06,
        "burst transient drifts from the fluid oracle: mean rel err {mean_err:.4}"
    );
    assert!(
        max_err <= 0.15,
        "burst transient breaks the fluid band: max rel err {max_err:.4}"
    );
}

/// A seed exodus (the 20-publisher squad withdrawing at once) pushes the
/// leecher pool up to the reduced-capacity steady state along the fluid
/// ODE with `s0 = 0`.
#[test]
fn seed_exodus_transient_follows_fluid_oracle() {
    let (lambda, gamma, s0) = (4.0, 0.25, 20usize);
    let x_bar = (lambda / CHURN_MU - lambda / gamma - s0 as f64).round() as usize; // 92
    let (exodus_round, horizon) = (140u64, 280u64);
    let config = SessionConfig {
        arrival: arrival_trace(lambda as u32, horizon, &[]),
        departure: DepartureRules {
            leave_on_completion: 0.0,
            seed_leave_prob: gamma,
            seed_exodus_round: Some(exodus_round),
            abort_prob: 0.0,
        },
        arrival_upload_kbps: CHURN_UPLOAD_KBPS,
        arrival_completion: 0.0,
        target_degree: 20,
        session_seed: 0xe50d,
        batched_wiring: false,
        peer_list_cap: None,
        compact_threshold: None,
    };
    let session = Session::new(churn_swarm(x_bar, s0, 0.5, 12), config);
    let (polled, log, session) = run_observed(session, horizon);

    assert_eq!(session.stats().seed_exodus, s0 as u64);
    // The departure stream carries the exodus: exactly s0 departures
    // stamped with the exodus round.
    let exodus_departures = log
        .departures
        .iter()
        .filter(|&&(t, _)| t == exodus_round as f64)
        .count();
    assert!(exodus_departures >= s0, "exodus not visible in the trace");
    for k in 1..=horizon {
        assert_eq!(
            reconstruct_leechers(&log, x_bar, k),
            polled[(k - 1) as usize].0 as i64,
            "trace reconstruction diverged after round {k}"
        );
    }

    // Piecewise oracle: from the measured pre-exodus state with the
    // publisher capacity removed.
    let params = BtFluidParams {
        lambda,
        mu: CHURN_MU,
        gamma,
        theta: 0.0,
        eta: 1.0,
        s0: 0.0,
    };
    let pre = polled[(exodus_round - 1) as usize];
    let x0 = pre.0 as f64;
    let y0 = (pre.1 - s0) as f64;
    let fluid = params.trajectory(x0, y0, (horizon - exodus_round) as f64, 1.0);

    // The pool actually grows towards the reduced-capacity steady state.
    let pre_mean = polled[(exodus_round as usize - 40)..exodus_round as usize]
        .iter()
        .map(|&(x, _)| x as f64)
        .sum::<f64>()
        / 40.0;
    let tail_mean = polled[(horizon as usize - 20)..]
        .iter()
        .map(|&(x, _)| x as f64)
        .sum::<f64>()
        / 20.0;
    assert!(
        tail_mean > pre_mean + 10.0,
        "losing the publishers did not grow the pool: {pre_mean:.1} -> {tail_mean:.1}"
    );

    // The packet swarm runs a few percent above the fluid curve after the
    // exodus (effective sharing efficiency dips below η = 1 with fewer
    // seeds), so the band is looser than the burst test's.
    let (mean_err, max_err) = leecher_band(&polled, &fluid, exodus_round as usize, 1, 1);
    println!("exodus transient: mean rel err {mean_err:.4}, max {max_err:.4}");
    assert!(
        mean_err <= 0.10,
        "exodus transient drifts from the fluid oracle: mean rel err {mean_err:.4}"
    );
    assert!(
        max_err <= 0.25,
        "exodus transient breaks the fluid band: max rel err {max_err:.4}"
    );
}

/// With mid-download aborts (θ > 0) the ramp from an undersized swarm
/// climbs to the θ-corrected steady state along the fluid ODE. The band
/// here is the loosest of the three transients, for a structural reason
/// worth keeping on record: the fluid completion flux min(μ(ηx+y+s0), x)
/// spends ALL upload capacity on completions, but in the packet swarm
/// the capacity invested in peers who later abort is wasted — a bias of
/// order θ/μ · (mean progress at abort) that inflates the simulated pool
/// above the ODE. θ = 0.05 leaves the sim ~25% high; θ = 0.005 keeps the
/// residual under the documented band. γ also must leave a healthy seed
/// pool (γ = 0.5 starves the swarm to ~8 seeds and η ≈ 0.8).
#[test]
fn abort_ramp_transient_follows_fluid_oracle() {
    let (lambda, gamma, theta, s0) = (4.0, 0.25, 0.005, 2usize);
    let (horizon, settle) = (200u64, 60usize);
    let x_start = 20usize;
    let config = SessionConfig {
        arrival: arrival_trace(lambda as u32, horizon, &[]),
        departure: DepartureRules {
            leave_on_completion: 0.0,
            seed_leave_prob: gamma,
            seed_exodus_round: None,
            abort_prob: theta,
        },
        arrival_upload_kbps: CHURN_UPLOAD_KBPS,
        arrival_completion: 0.0,
        target_degree: 20,
        session_seed: 0xab07,
        batched_wiring: false,
        peer_list_cap: None,
        compact_threshold: None,
    };
    let session = Session::new(churn_swarm(x_start, s0, 0.5, 13), config);
    let (polled, log, session) = run_observed(session, horizon);

    // Aborts do fire, and the observed net population change matches.
    assert!(session.stats().aborted > 0, "no aborts in a theta > 0 run");
    assert_eq!(
        log.net_population_delta(),
        session.population().total() as i64 - (x_start + s0) as i64
    );

    let params = BtFluidParams {
        lambda,
        mu: CHURN_MU,
        gamma,
        theta,
        eta: 1.0,
        s0: s0 as f64,
    };
    let fluid = params.trajectory(x_start as f64, 0.0, horizon as f64, 1.0);
    // Skip the settle window: the initial cohort completes in a coupon-
    // collection wave the smooth ODE cannot resolve.
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (i, &(_, fx, _)) in fluid.iter().enumerate().skip(settle + 1) {
        let Some(&(x, _)) = polled.get(i - 1) else {
            break;
        };
        sum += (x as f64 - fx).abs() / fx.max(1.0);
        count += 1;
    }
    let mean_err = sum / count as f64;
    println!("abort ramp: mean rel err {mean_err:.4} over {count} rounds");
    assert!(
        mean_err <= 0.15,
        "abort ramp drifts from the fluid oracle: mean rel err {mean_err:.4}"
    );
    // The ramp actually climbed towards the theta-corrected steady state.
    let steady = params.steady_state().leechers;
    let tail = polled[(horizon as usize - 40)..]
        .iter()
        .map(|&(x, _)| x as f64)
        .sum::<f64>()
        / 40.0;
    assert!(
        (tail - steady).abs() / steady <= 0.18,
        "tail population {tail:.1} far from steady {steady:.1}"
    );
}
