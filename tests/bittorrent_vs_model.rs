//! Integration: the BitTorrent protocol simulator exhibits the behaviour
//! the abstract matching model predicts (the paper's §6 correspondence).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use stratification::bandwidth::{efficiency_curve, BandwidthCdf, EfficiencyModel};
use stratification::bittorrent::{metrics, Swarm, SwarmConfig};

fn saroiu_swarm(leechers: usize, rounds: u64, seed: u64) -> Swarm {
    let seeds = 2;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .mean_neighbors(20.0)
        .tft_slots(3)
        .optimistic_slots(1)
        .fluid_content(true)
        .seed(seed)
        .build();
    let cdf = BandwidthCdf::saroiu_gnutella_upstream();
    let mut uploads = cdf.assign_by_rank(leechers);
    uploads.shuffle(&mut ChaCha8Rng::seed_from_u64(seed ^ 0xf00d));
    uploads.extend(std::iter::repeat_n(1000.0, seeds));
    let mut swarm = Swarm::new(config, &uploads);
    swarm.run_rounds(rounds);
    swarm
}

/// TFT reciprocation stratifies: the mean rank offset of reciprocated
/// pairs ends far below the random-pairing baseline (~n/3).
#[test]
fn swarm_stratifies_far_below_random_baseline() {
    let n = 200;
    let swarm = saroiu_swarm(n, 120, 1);
    let snap = metrics::stratification_snapshot(&swarm);
    let offset = snap.mean_rank_offset.expect("pairs exist");
    let random_baseline = n as f64 / 3.0;
    assert!(
        offset < 0.5 * random_baseline,
        "offset {offset:.1} not well below random {random_baseline:.1}"
    );
    assert!(snap.reciprocal_pairs as f64 > n as f64 / 4.0);
}

/// The swarm's TFT-economy share ratios have the Figure 11 direction: the
/// fastest class pays (aggregate D/U < 1) and the slowest class rides
/// (aggregate D/U > 1). Aggregate (traffic-weighted) ratios are the robust
/// class-level measure: per-peer means are dominated by the coarse
/// discretization of the heavy Saroiu top tail at swarm sizes.
#[test]
fn swarm_share_ratios_follow_figure11_direction() {
    let n = 240;
    let swarm = saroiu_swarm(n, 160, 2);
    let mut uploads: Vec<f64> = metrics::leecher_performance(&swarm)
        .iter()
        .map(|p| p.upload_kbps)
        .collect();
    uploads.sort_by(f64::total_cmp);
    let q1 = uploads[n / 4];
    let q3 = uploads[3 * n / 4];
    let slow = metrics::aggregate_tft_ratio_in_band(&swarm, 0.0, q1)
        .expect("slow class carries TFT traffic");
    let fast = metrics::aggregate_tft_ratio_in_band(&swarm, q3, 1e12)
        .expect("fast class carries TFT traffic");
    assert!(
        slow > fast,
        "slow-class aggregate D/U {slow:.2} must exceed fast-class {fast:.2}"
    );
    assert!(fast < 1.0, "fastest class not subsidizing: {fast:.2}");
    assert!(slow > 1.0, "slowest class not subsidized: {slow:.2}");
}

/// The analytic efficiency model (Algorithm 3 + bandwidth CDF) and the
/// protocol simulator agree on who wins and who pays: correlation between
/// per-class D/U ratios is positive and strong in direction.
#[test]
fn analytic_and_simulated_efficiency_agree_by_class() {
    let n = 240;
    let swarm = saroiu_swarm(n, 160, 3);
    let curve = efficiency_curve(
        &EfficiencyModel {
            b0: 3,
            d: 20.0,
            n: 1000,
        },
        &BandwidthCdf::saroiu_gnutella_upstream(),
    );
    // Classes by upload bandwidth (kbps).
    let classes = [(10.0, 64.0), (64.0, 300.0), (300.0, 1500.0), (1500.0, 1e7)];
    let mut agree = 0usize;
    let mut total = 0usize;
    for (lo, hi) in classes {
        let sim = metrics::mean_share_ratio_in_band(&swarm, lo, hi);
        let ana: Vec<f64> = curve
            .iter()
            .filter(|p| p.upload >= lo && p.upload < hi)
            .map(|p| p.ratio)
            .collect();
        if let (Some(sim), false) = (sim, ana.is_empty()) {
            let ana = ana.iter().sum::<f64>() / ana.len() as f64;
            total += 1;
            // Same side of 1.0 = same winner/payer verdict.
            if (sim > 1.0) == (ana > 1.0) {
                agree += 1;
            }
        }
    }
    assert!(total >= 3, "too few comparable classes");
    assert!(
        agree >= total - 1,
        "model and simulator disagree on {}/{total} classes",
        total - agree
    );
}

/// Piece-level swarm sanity at integration scale: a heterogeneous swarm
/// with real piece dynamics completes, respecting rarest-first coupon
/// collection.
#[test]
fn heterogeneous_swarm_completes_with_piece_dynamics() {
    let leechers = 60;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(2)
        .piece_count(64)
        .piece_size_kbit(200.0)
        .initial_completion(0.2)
        .mean_neighbors(16.0)
        .seed(9)
        .build();
    let mut uploads: Vec<f64> = (0..leechers)
        .map(|i| 200.0 * 1.03f64.powi(i as i32))
        .collect();
    uploads.extend([2000.0, 2000.0]);
    let mut swarm = Swarm::new(config, &uploads);
    for _ in 0..3000 {
        swarm.round();
        if swarm.completed_count() == leechers {
            break;
        }
    }
    assert_eq!(
        swarm.completed_count(),
        leechers,
        "swarm failed to complete"
    );
    // Conservation at the end of the run.
    let up: f64 = (0..swarm.peer_count())
        .map(|p| swarm.peer(p).total_uploaded())
        .sum();
    let down: f64 = (0..swarm.peer_count())
        .map(|p| swarm.peer(p).total_downloaded())
        .sum();
    assert!((up - down).abs() < 1e-6);
}
