//! Quickstart: build a network, compute the unique stable configuration,
//! and look at its stratification.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rand::SeedableRng;
use stratification::core::{
    blocking, cluster, stable_configuration, Capacities, GlobalRanking, RankedAcceptance,
};
use stratification::graph::{generators, NodeId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 300-peer network where each peer accepts ~20 random others
    // (the tracker's random peer set in BitTorrent terms), peers are ranked
    // by an intrinsic mark (upload bandwidth, say), and everyone has 3
    // collaboration slots.
    let n = 300;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2007);
    let graph = generators::erdos_renyi_mean_degree(n, 20.0, &mut rng);
    let ranking = GlobalRanking::identity(n); // peer 0 is best
    let acc = RankedAcceptance::new(graph, ranking)?;
    let caps = Capacities::constant(n, 3);

    // Algorithm 1: the unique stable configuration.
    let stable = stable_configuration(&acc, &caps)?;
    assert!(blocking::is_stable(&acc, &caps, &stable));
    println!(
        "stable configuration: {} collaborations",
        stable.edge_count()
    );

    // Who does a peer end up with? Its mates sit close to its own rank.
    for peer in [0usize, 150, 299] {
        let v = NodeId::new(peer);
        let mates: Vec<String> = stable
            .mates(v)
            .iter()
            .map(|m| format!("{}", m.index()))
            .collect();
        println!("peer {peer:>3} collaborates with: [{}]", mates.join(", "));
    }

    // Stratification in numbers.
    let stats = cluster::cluster_stats(acc.ranking(), &stable);
    println!(
        "\nclusters: {} components, giant = {} peers, mean size = {:.1}",
        stats.component_count, stats.giant_size, stats.mean_cluster_size
    );
    println!(
        "mean max rank offset (MMO) = {:.1} — peers trade within ~{:.0}% of the ranking",
        stats.mmo,
        100.0 * stats.mmo / n as f64
    );
    Ok(())
}
