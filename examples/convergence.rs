//! Watch the initiative dynamics converge to the stable configuration
//! (the paper's Figure 1), then survive a perturbation (Figure 2) and
//! churn (Figure 3).
//!
//! ```text
//! cargo run --example convergence
//! ```

use rand::SeedableRng;
use stratification::core::{
    Capacities, ChurnProcess, Dynamics, GlobalRanking, InitiativeStrategy, RankedAcceptance,
};
use stratification::graph::{generators, NodeId};

fn bar(disorder: f64) -> String {
    let filled = (disorder * 50.0).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled.min(50)),
        ".".repeat(50usize.saturating_sub(filled))
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 1000;
    let d = 10.0;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let graph = generators::erdos_renyi_mean_degree(n, d, &mut rng);
    let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n))?;
    let caps = Capacities::constant(n, 1);
    let mut dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate)?;

    println!("phase 1 — convergence from the empty configuration (n={n}, d={d}):");
    println!(
        "t= 0  {}  disorder={:.4}",
        bar(dynamics.disorder()),
        dynamics.disorder()
    );
    for t in 1..=12 {
        dynamics.run_base_unit(&mut rng);
        let dis = dynamics.disorder();
        println!("t={t:>2}  {}  disorder={dis:.4}", bar(dis));
        if dynamics.is_stable() {
            println!("stable configuration reached after {t} base units");
            break;
        }
    }

    println!("\nphase 2 — removing the best peer (domino effect):");
    dynamics.remove_peer(NodeId::new(0));
    for t in 0..6 {
        let dis = dynamics.disorder();
        println!("t={t:>2}  {}  disorder={dis:.4}", bar(dis * 20.0));
        if dis == 0.0 {
            break;
        }
        dynamics.run_base_unit(&mut rng);
    }

    println!("\nphase 3 — continuous churn (10 events per 1000 initiatives):");
    let mut churn = ChurnProcess::new(dynamics, 0.01);
    for t in 0..10 {
        churn.run_base_unit(&mut rng);
        let dis = churn.dynamics().disorder();
        println!("t={t:>2}  {}  disorder={dis:.4}", bar(dis * 20.0));
    }
    println!(
        "churned {} peers; disorder stays bounded — the stable configuration is a strong attractor",
        churn.event_count()
    );
    Ok(())
}
