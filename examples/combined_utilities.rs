//! The paper's §7 proposal, runnable: combine a bandwidth ranking with a
//! symmetric latency utility and watch the stratification/locality
//! trade-off move — plus gossip-estimated ranks instead of oracle ones.
//!
//! ```text
//! cargo run --release --example combined_utilities
//! ```

use rand::Rng;
use rand::SeedableRng;
use stratification::core::prefs::{
    best_mate_dynamics, BandedRankPrefs, GlobalPrefs, LatencyPrefs, LexicographicPrefs,
    PrefDynamicsOutcome, PrefMatching, PreferenceSystem,
};
use stratification::core::{gossip, Capacities, GlobalRanking};
use stratification::graph::{generators, NodeId};

fn report(label: &str, matching: &PrefMatching, ranking: &GlobalRanking, latency: &LatencyPrefs) {
    let (mut offset, mut dist, mut count) = (0.0, 0.0, 0.0f64);
    for v in 0..matching.node_count() {
        let v_id = NodeId::new(v);
        for &w in matching.mates(v_id) {
            offset += ranking.offset(v_id, w) as f64;
            dist += latency.distance(v_id, w);
            count += 1.0;
        }
    }
    println!(
        "{label:<34} mean rank offset {:>6.1}   mean latency {:>6.1}",
        offset / count.max(1.0),
        dist / count.max(1.0)
    );
}

fn settle<P: PreferenceSystem>(
    graph: &stratification::graph::Graph,
    prefs: &P,
    caps: &Capacities,
) -> PrefMatching {
    match best_mate_dynamics(graph, prefs, caps) {
        PrefDynamicsOutcome::Stable(m) => m,
        PrefDynamicsOutcome::Oscillating { .. } => unreachable!("cycle-free utilities"),
    }
}

fn main() {
    let n = 400;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    let graph = generators::erdos_renyi_mean_degree(n, 24.0, &mut rng);
    let ranking = GlobalRanking::identity(n);
    let latency = LatencyPrefs::new((0..n).map(|_| rng.gen_range(0.0..1000.0)).collect());
    let caps = Capacities::constant(n, 3);

    println!("== trading stratification for locality (n={n}, b0=3, d=24) ==");
    report(
        "pure bandwidth ranking",
        &settle(&graph, &GlobalPrefs::new(ranking.clone()), &caps),
        &ranking,
        &latency,
    );
    for width in [10usize, 40, 100] {
        let prefs = LexicographicPrefs::new(
            BandedRankPrefs::new(ranking.clone(), width),
            latency.clone(),
        );
        report(
            &format!("rank classes of {width} + latency"),
            &settle(&graph, &prefs, &caps),
            &ranking,
            &latency,
        );
    }
    report(
        "pure latency",
        &settle(&graph, &latency, &caps),
        &ranking,
        &latency,
    );

    println!("\n== gossip-estimated ranks instead of an oracle ==");
    for k in [5usize, 25, 100] {
        let estimated = gossip::estimate_ranking(&ranking, k, &mut rng);
        let distortion = gossip::ranking_distortion(&ranking, &estimated);
        let matching = settle(&graph, &GlobalPrefs::new(estimated), &caps);
        print!("sample size {k:>3} (rank distortion {distortion:>5.1}):  ");
        report("", &matching, &ranking, &latency);
    }
    println!(
        "\ncoarser rank classes buy locality at a small stratification cost; and even \
         crude gossip estimates keep collaborations local in true rank."
    );
}
