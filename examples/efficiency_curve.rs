//! Compute the expected download/upload efficiency curve (the paper's
//! Figure 11) for the built-in bandwidth distribution — and for a custom
//! one, showing how the curve's peaks track the distribution's density
//! peaks.
//!
//! ```text
//! cargo run --release --example efficiency_curve
//! ```

use stratification::bandwidth::{efficiency_curve, BandwidthCdf, EfficiencyModel};

fn render(curve: &[stratification::bandwidth::EfficiencyPoint]) {
    // Log-spaced bands over slot bandwidth.
    let (lo, hi) = (
        curve
            .iter()
            .map(|p| p.slot_bandwidth)
            .fold(f64::INFINITY, f64::min),
        curve
            .iter()
            .map(|p| p.slot_bandwidth)
            .fold(0.0f64, f64::max),
    );
    let bands = 24;
    println!("slot kbps | D/U  (x = 0.1)");
    for b in 0..bands {
        let from = lo * (hi / lo).powf(b as f64 / bands as f64);
        let to = lo * (hi / lo).powf((b + 1) as f64 / bands as f64);
        let in_band: Vec<f64> = curve
            .iter()
            .filter(|p| p.slot_bandwidth >= from && p.slot_bandwidth < to)
            .map(|p| p.ratio)
            .collect();
        if in_band.is_empty() {
            continue;
        }
        let mean = in_band.iter().sum::<f64>() / in_band.len() as f64;
        println!(
            "{from:>9.1} | {}{}",
            "x".repeat((mean * 10.0).round() as usize),
            { format!(" {mean:.2}") }
        );
    }
}

fn main() {
    let model = EfficiencyModel {
        b0: 3,
        d: 20.0,
        n: 2000,
    };

    println!("=== Figure 11: Saroiu-style bandwidth distribution ===");
    let curve = efficiency_curve(&model, &BandwidthCdf::saroiu_gnutella_upstream());
    render(&curve);

    // A custom two-class world: one slow DSL peak, one fast fibre peak.
    println!("\n=== custom distribution: 60% at ~128 kbps, 40% at ~10 Mbps ===");
    let custom = BandwidthCdf::from_points(&[
        (100.0, 0.0),
        (128.0, 0.58),
        (200.0, 0.60),
        (8_000.0, 0.62),
        (10_000.0, 0.98),
        (12_000.0, 1.0),
    ])
    .expect("valid control points");
    let curve = efficiency_curve(&model, &custom);
    render(&curve);
    println!(
        "\nnote how D/U pins to ~1 inside each density peak and spikes just above it — \
         stratification keys the efficiency structure to the bandwidth distribution."
    );
}
