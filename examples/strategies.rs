//! Compare the paper's three initiative strategies (§3): best mate,
//! decremental, and random — how fast does each reach the stable
//! configuration, and at what information cost?
//!
//! ```text
//! cargo run --example strategies
//! ```

use rand::SeedableRng;
use stratification::core::{
    Capacities, Dynamics, GlobalRanking, InitiativeStrategy, RankedAcceptance,
};
use stratification::graph::generators;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 500;
    let d = 15.0;
    let b0 = 2;
    let strategies = [
        (InitiativeStrategy::BestMate, "best mate  (full knowledge)"),
        (InitiativeStrategy::Decremental, "decremental (knows ranks)"),
        (InitiativeStrategy::Random, "random      (no information)"),
    ];

    println!("convergence to the stable configuration, n={n}, d={d}, b0={b0}:");
    println!(
        "{:<30} {:>12} {:>12} {:>14}",
        "strategy", "base units", "initiatives", "active ratio"
    );
    for (strategy, label) in strategies {
        // Same graph for every strategy: seed the generator identically.
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        let graph = generators::erdos_renyi_mean_degree(n, d, &mut rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n))?;
        let caps = Capacities::constant(n, b0);
        let mut dynamics = Dynamics::new(acc, caps, strategy)?;

        let mut units = 0u32;
        while !dynamics.is_stable() && units < 10_000 {
            dynamics.run_base_unit(&mut rng);
            units += 1;
        }
        let total = dynamics.initiative_count();
        let active = dynamics.active_initiative_count();
        println!(
            "{label:<30} {units:>12} {total:>12} {:>13.1}%",
            100.0 * active as f64 / total as f64
        );
    }
    println!(
        "\nall three reach the same unique stable configuration (Theorem 1); \
         they differ only in how many probes they burn to find blocking mates. \
         BitTorrent's optimistic unchoke is the random strategy."
    );
    Ok(())
}
