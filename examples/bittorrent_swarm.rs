//! Run a BitTorrent swarm under Tit-for-Tat and watch stratification
//! emerge in the protocol itself (the paper's Section 6, in vivo).
//!
//! ```text
//! cargo run --example bittorrent_swarm
//! ```

use rand::seq::SliceRandom;
use rand::SeedableRng;
use stratification::bandwidth::BandwidthCdf;
use stratification::bittorrent::{metrics, Swarm, SwarmConfig};

fn main() {
    let leechers = 300;
    let seeds = 2;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .mean_neighbors(20.0)
        .tft_slots(3) // the paper's b0 = 3 ...
        .optimistic_slots(1) // ... plus the generous slot = 4 default slots
        .fluid_content(true) // post-flash-crowd: content is never the bottleneck
        .seed(2007)
        .build();

    // Upload capacities drawn from the measured-style bandwidth CDF
    // (Figure 10), shuffled so peer index carries no information.
    let cdf = BandwidthCdf::saroiu_gnutella_upstream();
    let mut uploads = cdf.assign_by_rank(leechers);
    uploads.shuffle(&mut rand_chacha::ChaCha8Rng::seed_from_u64(99));
    uploads.extend(std::iter::repeat_n(1000.0, seeds));

    let mut swarm = Swarm::new(config, &uploads);
    println!("round | reciprocated TFT pairs | mean rank offset (n={leechers})");
    for r in 0..120u64 {
        swarm.round();
        if r % 10 == 1 {
            let snap = metrics::stratification_snapshot(&swarm);
            println!(
                "{:>5} | {:>22} | {}",
                snap.round,
                snap.reciprocal_pairs,
                snap.mean_rank_offset
                    .map_or("-".to_string(), |o| format!("{o:.1}")),
            );
        }
    }

    // Share ratios across bandwidth classes — the Figure 11 structure.
    // The TFT economy (reciprocated slots) is what the paper's matching
    // model describes; the optimistic slot is a pure subsidy on top.
    println!("\naggregate share ratios by upload class (kbps):");
    println!("{:>16}  {:>8}  {:>10}", "class", "TFT D/U", "total D/U");
    for (lo, hi, label) in [
        (0.0, 64.0, "<= 56k modem"),
        (64.0, 300.0, "ISDN / DSL-256"),
        (300.0, 1500.0, "DSL-512 / cable"),
        (1500.0, 1e9, "LAN and above"),
    ] {
        let tft = metrics::aggregate_tft_ratio_in_band(&swarm, lo, hi);
        let total = metrics::mean_share_ratio_in_band(&swarm, lo, hi);
        if let (Some(tft), Some(total)) = (tft, total) {
            println!("{label:>16}  {tft:>8.2}  {total:>10.2}");
        }
    }
    println!(
        "\nIn the TFT economy fast peers subsidize the swarm (D/U < 1) while slow \
         peers ride the surplus (D/U > 1) — the paper's Figure 11. Total ratios \
         additionally include the optimistic-slot windfalls that fast uploaders \
         spray across the swarm."
    );
}
