//! Benchmark-only crate: see `benches/` for the Criterion targets.
//!
//! * `core_algorithms` — Algorithm 1 scaling, dynamics throughput, the
//!   analytic solvers, graph generation, swarm rounds;
//! * `experiments` — one benchmark per paper table/figure (quick profile),
//!   asserting the shape checks still pass;
//! * `ablations` — the DESIGN.md design-decision comparisons (streaming vs
//!   dense Algorithm 2, complete-graph specialization, mate-set structure,
//!   rank-sorted best-mate search).
