//! Shared benchmark suite for the stratification workspace.
//!
//! The hot-path groups live here (not in `benches/`) so that both the
//! `cargo bench` harness (`benches/core_algorithms.rs`) and the
//! `BENCH_core.json` exporter (`src/bin/export.rs`) measure **exactly the
//! same kernels**. Each optimized group has a `*_ref` twin running the
//! seed-faithful implementations from `strat_core::reference`, which keeps
//! the speedup a measured number rather than a claim.
//!
//! Criterion targets under `benches/`:
//!
//! * `core_algorithms` — the groups below plus the analytic solvers, graph
//!   generation and swarm rounds;
//! * `experiments` — one benchmark per paper table/figure (quick profile),
//!   asserting the shape checks still pass;
//! * `ablations` — the DESIGN.md design-decision comparisons (streaming vs
//!   dense Algorithm 2, complete-graph specialization, mate-set structure,
//!   rank-sorted best-mate search).

#![warn(clippy::all)]

use std::time::Duration;

use criterion::{black_box, BenchmarkId, Criterion};
use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use strat_bittorrent::{
    overlay, reference::RefSwarm, CapacitySplit, EventEngine, EventTiming, FaultPlan,
    MembershipModel, NullObserver, PeerBehavior, PieceSet, Swarm, SwarmConfig, Universe,
    UniverseConfig,
};
use strat_core::prefs::{best_mate_dynamics, LatencyPrefs, PrefDynamicsOutcome};
use strat_core::GeneralDynamics;
use strat_core::{
    reference, stable_configuration, stable_configuration_complete, Capacities, GlobalRanking,
    InitiativeStrategy, RankedAcceptance,
};
use strat_graph::{generators, Graph};
use strat_scenario::{Scenario, TopologyModel};

/// Standard declarative instance: `G(n, d)` acceptance graph, identity
/// ranking, constant 1-matching (the scenario layer is the only builder
/// the bench harness uses).
#[must_use]
pub fn er_scenario(n: usize, d: f64, seed: u64) -> Scenario {
    Scenario::new("bench", n)
        .with_seed(seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d })
}

/// Standard instance: `G(n, d)` acceptance graph, identity ranking.
#[must_use]
pub fn er_acceptance(n: usize, d: f64, seed: u64) -> RankedAcceptance {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    er_scenario(n, d, seed)
        .build_acceptance(&mut rng)
        .expect("valid scenario")
}

/// `stable_configuration` on `G(n, 20)` with `b = 3` at n ∈ {1k, 10k, 100k},
/// plus the complete-graph specialization at {10k, 100k}.
pub fn bench_stable_configuration(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_configuration");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[1000usize, 10_000, 100_000] {
        let acc = er_acceptance(n, 20.0, 1);
        let caps = Capacities::constant(n, 3);
        group.bench_with_input(BenchmarkId::new("erdos_renyi_d20_b3", n), &n, |b, _| {
            b.iter(|| stable_configuration(black_box(&acc), black_box(&caps)).unwrap());
        });
    }
    for &n in &[10_000usize, 100_000] {
        let ranking = GlobalRanking::identity(n);
        let caps = Capacities::constant(n, 4);
        group.bench_with_input(BenchmarkId::new("complete_b4", n), &n, |b, _| {
            b.iter(|| {
                stable_configuration_complete(black_box(&ranking), black_box(&caps)).unwrap()
            });
        });
    }
    group.finish();
}

/// Seed-faithful Algorithm 1 (`strat_core::reference`) on the same
/// instances as [`bench_stable_configuration`]'s Erdős–Rényi rows.
pub fn bench_stable_configuration_ref(c: &mut Criterion) {
    let mut group = c.benchmark_group("stable_configuration_ref");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[1000usize, 10_000, 100_000] {
        let acc = reference::RefAcceptance::from_optimized(&er_acceptance(n, 20.0, 1));
        let caps = Capacities::constant(n, 3);
        group.bench_with_input(BenchmarkId::new("erdos_renyi_d20_b3", n), &n, |b, _| {
            b.iter(|| reference::stable_configuration(black_box(&acc), black_box(&caps)));
        });
    }
    group.finish();
}

/// Steady-state initiative cost per base unit, n = 1000, d = 10, b = 1:
/// the three scan strategies plus the disorder metric.
pub fn bench_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for strategy in [
        InitiativeStrategy::BestMate,
        InitiativeStrategy::Decremental,
        InitiativeStrategy::Random,
    ] {
        group.bench_function(format!("{strategy:?}_base_unit_n1000_d10"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let mut dynamics = er_scenario(1000, 10.0, 2)
                .with_strategy(strategy)
                .build_dynamics(&mut rng)
                .expect("valid scenario");
            b.iter(|| black_box(dynamics.run_base_unit(&mut rng)));
        });
    }
    group.bench_function("disorder_n1000_d10", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut dynamics = er_scenario(1000, 10.0, 3)
            .build_dynamics(&mut rng)
            .expect("valid scenario");
        for _ in 0..5 {
            dynamics.run_base_unit(&mut rng);
        }
        b.iter(|| black_box(dynamics.disorder()));
    });
    group.finish();
}

/// Seed-faithful initiative driver on the same instances as
/// [`bench_dynamics`].
pub fn bench_dynamics_ref(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamics_ref");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for strategy in [
        InitiativeStrategy::BestMate,
        InitiativeStrategy::Decremental,
        InitiativeStrategy::Random,
    ] {
        group.bench_function(format!("{strategy:?}_base_unit_n1000_d10"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let acc = reference::RefAcceptance::from_optimized(&er_acceptance(1000, 10.0, 2));
            let caps = Capacities::constant(1000, 1);
            let mut dynamics = reference::RefDynamics::new(acc, caps, strategy);
            b.iter(|| black_box(dynamics.run_base_unit(&mut rng)));
        });
    }
    group.finish();
}

/// The shared generalized-preference instance: `G(n, 20)` acceptance
/// graph, uniform latency embedding in `[0, 1000)`, `b = 3`.
fn latency_instance(n: usize, seed: u64) -> (Graph, LatencyPrefs, Capacities) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = generators::erdos_renyi_mean_degree(n, 20.0, &mut rng);
    let positions: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1000.0)).collect();
    (
        graph,
        LatencyPrefs::new(positions),
        Capacities::constant(n, 3),
    )
}

/// Generalized-preference dynamics on the dirty-set engine, latency
/// instances:
///
/// * `converge_*` — full `best_mate_dynamics` from `C∅` to stability
///   (includes key-table construction — now seeded by cached scalar sort
///   keys instead of indirect preference comparisons; early sweeps are
///   all-dirty, so the memo only trims the tail);
/// * `settled_sweep_*` — one round-robin sweep of a **converged** system
///   (the steady-state regime continuing dynamics live in): every peer is
///   provably clean and the sweep degenerates to n flag reads.
pub fn bench_prefs(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefs");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[500usize, 2000] {
        let (graph, prefs, caps) = latency_instance(n, 0x9e1);
        group.bench_with_input(
            BenchmarkId::new("converge_latency_d20_b3", n),
            &n,
            |b, _| {
                b.iter(|| black_box(best_mate_dynamics(&graph, &prefs, &caps)));
            },
        );
    }
    let n = 2000usize;
    let (graph, prefs, caps) = latency_instance(n, 0x9e1);
    let mut dynamics =
        GeneralDynamics::new(&graph, &prefs, caps, InitiativeStrategy::BestMate).expect("sizes");
    dynamics.settle().expect("latency systems are cycle-free");
    group.bench_with_input(
        BenchmarkId::new("settled_sweep_latency_d20_b3", n),
        &n,
        |b, _| {
            b.iter(|| {
                let mut active = 0u64;
                for p in 0..n {
                    active += u64::from(
                        dynamics
                            .best_mate_initiative(strat_graph::NodeId::new(p))
                            .is_active(),
                    );
                }
                active
            });
        },
    );
    group.finish();
}

/// The retained full-scan reference (`strat_core::reference`) on the same
/// instances as [`bench_prefs`]: every sweep re-scans every neighborhood
/// with live preference comparisons, converged or not.
pub fn bench_prefs_ref(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefs_ref");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for &n in &[500usize, 2000] {
        let (graph, prefs, caps) = latency_instance(n, 0x9e1);
        group.bench_with_input(
            BenchmarkId::new("converge_latency_d20_b3", n),
            &n,
            |b, _| {
                b.iter(|| black_box(reference::best_mate_dynamics(&graph, &prefs, &caps)));
            },
        );
    }
    let n = 2000usize;
    let (graph, prefs, caps) = latency_instance(n, 0x9e1);
    let PrefDynamicsOutcome::Stable(mut matching) =
        reference::best_mate_dynamics(&graph, &prefs, &caps)
    else {
        panic!("latency systems are cycle-free")
    };
    group.bench_with_input(
        BenchmarkId::new("settled_sweep_latency_d20_b3", n),
        &n,
        |b, _| {
            b.iter(|| reference::best_mate_sweep(&graph, &prefs, &caps, &mut matching));
        },
    );
    group.finish();
}

/// The shared swarm-round instance: `n` leechers + 2 seeds on a `d = 20`
/// overlay with a bandwidth ramp, in fluid or piece mode.
fn swarm_inputs(leechers: usize, fluid: bool, seed: u64) -> (SwarmConfig, Vec<f64>) {
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(2)
        .piece_count(256)
        .piece_size_kbit(1200.0)
        .initial_completion(0.35)
        .mean_neighbors(20.0)
        .fluid_content(fluid)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..leechers + 2).map(|i| 100.0 + i as f64).collect();
    (config, uploads)
}

/// Rounds measured per iteration of the piece-mode benches: each
/// iteration clones the pristine swarm and runs this fixed pre-completion
/// window, so the measured regime is the active transfer path (candidate
/// filtering, rarest-first conversion) rather than the degenerate
/// post-completion rounds an ever-advancing swarm decays into.
const PIECE_WINDOW: u64 = 8;

/// The serial swarm round at n = 500 leechers: the fluid steady state
/// (rechoke + rate transfer, the bt1 regime), a fixed pre-completion
/// window in piece mode, one indexed-semantics round at n = 2000 run
/// through [`Swarm::run_rounds_parallel`] on all available cores, and
/// one indexed round of the n = 10⁵ flash crowd (cold piece-mode swarm,
/// btflash geometry) pinning the scaling trajectory toward the
/// million-peer target.
pub fn bench_swarm_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let (config, uploads) = swarm_inputs(500, true, 0xb17);
    let mut swarm = Swarm::new(config, &uploads);
    group.bench_function("round_n500_fluid", |b| b.iter(|| swarm.round()));
    let (config, uploads) = swarm_inputs(500, false, 0xb17);
    let pristine = Swarm::new(config, &uploads);
    group.bench_function("rounds8_n500_pieces", |b| {
        b.iter(|| {
            let mut swarm = pristine.clone();
            swarm.run_rounds(PIECE_WINDOW);
            swarm
        });
    });
    let threads = strat_par::default_threads();
    let (config, uploads) = swarm_inputs(2000, true, 0xb18);
    let mut swarm = Swarm::new(config, &uploads);
    group.bench_function("rounds_indexed_n2000_fluid", |b| {
        b.iter(|| swarm.run_rounds_parallel(1, threads));
    });
    // Flash crowd at n = 10⁵ (btflash geometry, scaled 10x): an
    // ever-advancing swarm, so the measured regime is the hot early
    // wave — the cold swarm stays far from completion across the
    // sampling window.
    let config = SwarmConfig::builder()
        .leechers(100_000)
        .seeds(20)
        .piece_count(128)
        .piece_size_kbit(1024.0)
        .initial_completion(0.02)
        .mean_neighbors(20.0)
        .seed(0xf1a5)
        .build();
    let uploads: Vec<f64> = (0..100_020)
        .map(|i| 150.0 + (i % 97) as f64 * 10.0)
        .collect();
    let mut swarm = Swarm::new(config, &uploads);
    group.bench_function("flash_round_indexed_n100000_pieces", |b| {
        b.iter(|| swarm.run_rounds_parallel(1, threads));
    });
    // The million-peer target row: the same flash geometry at n = 10⁶.
    // Each iteration is whole seconds, so the sample count drops to keep
    // the export run bounded; the word-parallel kernels, sharded
    // availability merge and O(live) sweeps are what keep this row from
    // scaling worse than linearly in the n = 10⁵ row.
    group.sample_size(5);
    let config = SwarmConfig::builder()
        .leechers(1_000_000)
        .seeds(200)
        .piece_count(128)
        .piece_size_kbit(1024.0)
        .initial_completion(0.02)
        .mean_neighbors(20.0)
        .seed(0xf1a6)
        .build();
    let uploads: Vec<f64> = (0..1_000_200)
        .map(|i| 150.0 + (i % 97) as f64 * 10.0)
        .collect();
    let mut swarm = Swarm::new(config, &uploads);
    group.bench_function("flash_round_indexed_n1000000_pieces", |b| {
        b.iter(|| swarm.run_rounds_parallel(1, threads));
    });
    group.finish();
}

/// The retained reference engine ([`RefSwarm`]) on the same instances as
/// [`bench_swarm_rounds`]: serial rounds (same clone-per-iteration piece
/// window), and the serial indexed-round oracle as the baseline of the
/// parallel row.
pub fn bench_swarm_rounds_ref(c: &mut Criterion) {
    let mut group = c.benchmark_group("swarm_ref");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let (config, uploads) = swarm_inputs(500, true, 0xb17);
    let mut swarm = RefSwarm::new(config, &uploads);
    group.bench_function("round_n500_fluid", |b| b.iter(|| swarm.round()));
    let (config, uploads) = swarm_inputs(500, false, 0xb17);
    let pristine = RefSwarm::new(config, &uploads);
    group.bench_function("rounds8_n500_pieces", |b| {
        b.iter(|| {
            let mut swarm = pristine.clone();
            swarm.run_rounds(PIECE_WINDOW);
            swarm
        });
    });
    let (config, uploads) = swarm_inputs(2000, true, 0xb18);
    let mut swarm = RefSwarm::new(config, &uploads);
    group.bench_function("rounds_indexed_n2000_fluid", |b| {
        b.iter(|| swarm.round_indexed());
    });
    group.finish();
}

/// The open-membership session layer:
///
/// * `round_churn_n1000` — one full session round of a ~10³-peer swarm in
///   stationary churn (Poisson arrivals, lingering-seed departures,
///   tracker rewiring, then the piece-mode round itself);
/// * `join_wire_leave_d20` — the pure membership cycle on a static
///   swarm: admit a peer, splice 20 tracker edges, depart it again
///   (arena reuse + incremental overlay/availability patching, no round);
/// * `round_closed_n500` — a zero-churn session round next to the plain
///   engine's `swarm/rounds8_n500_pieces` baseline: the wrapper's
///   overhead on closed swarms is observational bookkeeping only.
pub fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    // Stationary churn at ~1000 peers: lambda/mu = 60 * 16 downloads in
    // flight plus a lingering-seed pool.
    let churn_swarm = |n0: usize| {
        let config = SwarmConfig::builder()
            .leechers(n0)
            .seeds(2)
            .piece_count(256)
            .piece_size_kbit(250.0)
            .initial_completion(0.5)
            .mean_neighbors(20.0)
            .seed(0x5e55)
            .build();
        Swarm::new(config, &vec![400.0; n0 + 2])
    };
    let mut session = Session::new(
        churn_swarm(700),
        SessionConfig {
            arrival: ArrivalProcess::Poisson { rate: 60.0 },
            departure: DepartureRules {
                seed_leave_prob: 0.25,
                ..DepartureRules::none()
            },
            arrival_upload_kbps: 400.0,
            target_degree: 20,
            session_seed: 0x5e55,
            ..SessionConfig::default()
        },
    );
    session.run_rounds(40); // reach stationary turnover
    group.bench_function("round_churn_n1000", |b| b.iter(|| session.run_rounds(1)));

    let mut arena = churn_swarm(1000);
    arena.reserve_overlay_slack(24);
    group.bench_function("join_wire_leave_d20", |b| {
        b.iter(|| {
            let slot = arena.arrive(400.0, PeerBehavior::Compliant, PieceSet::new(256));
            for q in 0..20 {
                arena.connect_peers(slot, q * 37 % 1000);
            }
            arena.depart(slot);
            black_box(slot)
        });
    });

    let (config, uploads) = swarm_inputs(500, false, 0xb17);
    let pristine = Session::new(Swarm::new(config, &uploads), SessionConfig::default());
    group.bench_function("round_closed_n500", |b| {
        b.iter(|| {
            let mut session = pristine.clone();
            session.run_rounds(PIECE_WINDOW);
            session
        });
    });

    // The million-peer churn row: one full session round (departure,
    // arrival, wiring and record passes plus the indexed swarm round) at
    // n = 10⁶ in a stationary regime — 600 Poisson arrivals per round
    // balanced by a matching abort rate, slow downloads so the
    // population holds, and arena compaction armed. The O(live) pass
    // sweeps and slot-reusing arena are what keep the session overhead a
    // small fraction of the round itself at this scale.
    group.sample_size(5);
    let threads = strat_par::default_threads();
    let big_config = SwarmConfig::builder()
        .leechers(1_000_000)
        .seeds(2)
        .piece_count(256)
        .piece_size_kbit(2500.0)
        .initial_completion(0.5)
        .mean_neighbors(20.0)
        .seed(0x5e56)
        .build();
    let mut big = Session::new(
        Swarm::new(big_config, &vec![400.0; 1_000_002]),
        SessionConfig {
            arrival: ArrivalProcess::Poisson { rate: 600.0 },
            departure: DepartureRules {
                seed_leave_prob: 0.25,
                abort_prob: 0.0006,
                ..DepartureRules::none()
            },
            arrival_upload_kbps: 400.0,
            target_degree: 20,
            session_seed: 0x5e56,
            compact_threshold: Some(0.25),
            ..SessionConfig::default()
        },
    );
    big.run_rounds_parallel(2, threads); // settle the arrival/abort turnover
    group.bench_function("round_churn_indexed_n1000000", |b| {
        b.iter(|| big.run_rounds_parallel(1, threads));
    });
    group.finish();
}

/// The fault plane on the session layer:
///
/// * `round_faulted_n1000` — the `round_churn_n1000` regime with every
///   fault class live (crashes, transfer loss, repair); the delta to the
///   fault-free twin is the plane's per-round overhead;
/// * `overlay_snapshot_n1000` — the full degradation measurement
///   (components, diameter of the largest component, seed reachability,
///   stall scan) on a ~10³-peer stationary swarm.
pub fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("faults");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    let churn_swarm = |n0: usize| {
        let config = SwarmConfig::builder()
            .leechers(n0)
            .seeds(2)
            .piece_count(256)
            .piece_size_kbit(250.0)
            .initial_completion(0.5)
            .mean_neighbors(20.0)
            .seed(0x5e55)
            .build();
        Swarm::new(config, &vec![400.0; n0 + 2])
    };
    let churn_config = SessionConfig {
        arrival: ArrivalProcess::Poisson { rate: 60.0 },
        departure: DepartureRules {
            seed_leave_prob: 0.25,
            ..DepartureRules::none()
        },
        arrival_upload_kbps: 400.0,
        target_degree: 20,
        session_seed: 0x5e55,
        ..SessionConfig::default()
    };
    let mut session = Session::with_faults(
        churn_swarm(700),
        churn_config,
        FaultPlan {
            crash_prob: 0.002,
            loss_prob: 0.05,
            outages: vec![],
            partitions: vec![],
            fault_seed: 0xfa17,
        },
    );
    session.run_rounds(40); // stationary turnover with repair active
    group.bench_function("round_faulted_n1000", |b| b.iter(|| session.run_rounds(1)));

    let mut snapshot_target = Session::new(churn_swarm(1000), SessionConfig::default());
    snapshot_target.run_rounds(8);
    group.bench_function("overlay_snapshot_n1000", |b| {
        b.iter(|| overlay::snapshot(snapshot_target.swarm()));
    });
    group.finish();
}

/// The continuous-time event core:
///
/// * `sync_rounds8_n500_pieces` — the event engine driven in its
///   synchronous limit over the same pre-completion window as
///   `swarm/rounds8_n500_pieces`; the `events_ref` twin replays the
///   bit-identical trajectory on the indexed round engine, so the
///   speedup row is the queue's measured overhead for event-sequencing
///   a round;
/// * `run_for_60s_churn_hetero_n500` — one minute of simulated time in
///   the fully continuous regime: three speed classes, a 5 s transfer
///   quantum, announce-driven rewiring, stationary Poisson churn.
pub fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("events");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    let (config, uploads) = swarm_inputs(500, false, 0xb17);
    let round_seconds = config.round_seconds;
    let pristine = EventEngine::new(
        Swarm::new(config, &uploads),
        EventTiming::synchronous_limit(round_seconds),
        None,
    );
    group.bench_function("sync_rounds8_n500_pieces", |b| {
        b.iter(|| {
            let mut engine = pristine.clone();
            engine.run_sync_rounds(PIECE_WINDOW);
            engine
        });
    });

    let (config, uploads) = swarm_inputs(500, false, 0xe7e);
    let mut swarm = Swarm::new(config, &uploads);
    swarm.reserve_overlay_slack(24);
    let mut engine = EventEngine::new(
        swarm,
        EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: Some(5.0),
            announce_interval: Some(30.0),
            speed_multipliers: vec![0.5, 1.0, 2.0],
        },
        Some(SessionConfig {
            arrival: ArrivalProcess::Poisson { rate: 3.0 },
            departure: DepartureRules {
                leave_on_completion: 0.6,
                seed_leave_prob: 0.2,
                ..DepartureRules::none()
            },
            arrival_upload_kbps: 400.0,
            target_degree: 20,
            session_seed: 0xe7e,
            ..SessionConfig::default()
        }),
    );
    engine.run_for(600.0); // reach stationary turnover
    group.bench_function("run_for_60s_churn_hetero_n500", |b| {
        b.iter(|| engine.run_for(60.0));
    });
    group.finish();
}

/// The indexed round engine on the synchronous-limit instance of
/// [`bench_events`]: same trajectory, no event queue.
pub fn bench_events_ref(c: &mut Criterion) {
    let mut group = c.benchmark_group("events_ref");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let (config, uploads) = swarm_inputs(500, false, 0xb17);
    let pristine = Swarm::new(config, &uploads);
    group.bench_function("sync_rounds8_n500_pieces", |b| {
        b.iter(|| {
            let mut swarm = pristine.clone();
            swarm.run_rounds_parallel(PIECE_WINDOW, 1);
            swarm
        });
    });
    group.finish();
}

///// The `RunObserver` layer's zero-cost claim as a measured number: the
/// n = 2000 fluid round through the plain `round()` against the same
/// round driven through `round_with(&NullObserver)`, on identically
/// seeded twin swarms. The two rows come from one `bench_pair` —
/// interleaved A/B sample blocks, so slow machine drift cancels out of
/// the ratio — and the `BENCH_core.json` exporter asserts the observed
/// median stays within 1% of the plain one at full time scale (the two
/// paths monomorphize to the same code; the gate guards the seam).
pub fn bench_observer(c: &mut Criterion) {
    let mut group = c.benchmark_group("observer");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    let (config, uploads) = swarm_inputs(2000, true, 0xb18);
    let mut plain = Swarm::new(config.clone(), &uploads);
    let mut observed = Swarm::new(config, &uploads);
    group.bench_pair(
        "round_n2000_fluid_plain",
        || plain.round(),
        "round_n2000_fluid_null_observer",
        || observed.round_with(&NullObserver),
    );
    group.finish();
}

/// The multi-swarm universe subsystem:
///
/// * `round_shared_n1000_t8` — one universe step over 8 torrents sharing
///   a ~1000-member population under stationary Poisson churn: all eight
///   membership passes, the cross-swarm claim pass, replica sync,
///   demand-weighted capacity rebalance and all eight swarm rounds;
/// * `membership_join_leave_d20` — the membership primitives the claim
///   and sync passes are built from: one `join_with` (arena slot claim +
///   degree-20 wiring) immediately undone by `leave`, on a stationary
///   ~1000-peer session with join slack reserved.
pub fn bench_universe(c: &mut Criterion) {
    let mut group = c.benchmark_group("universe");
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    let universe_session = |t: u64| {
        let config = SwarmConfig::builder()
            .leechers(125)
            .seeds(2)
            .piece_count(256)
            .piece_size_kbit(250.0)
            .initial_completion(0.5)
            .mean_neighbors(20.0)
            .seed(0x7e11 ^ t)
            .build();
        Session::new(
            Swarm::new(config, &vec![400.0; 127]),
            SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: 7.5 },
                departure: DepartureRules {
                    seed_leave_prob: 0.25,
                    ..DepartureRules::none()
                },
                arrival_upload_kbps: 400.0,
                target_degree: 20,
                session_seed: 0x7e11 ^ t,
                ..SessionConfig::default()
            },
        )
    };
    let mut universe = Universe::new(
        (0..8).map(universe_session).collect(),
        UniverseConfig {
            membership: MembershipModel::Fixed { extra: 1 },
            split: CapacitySplit::DemandWeighted,
            ..UniverseConfig::default()
        },
    );
    universe.run_rounds(20, None); // reach stationary cross-swarm turnover
    group.bench_function("round_shared_n1000_t8", |b| {
        b.iter(|| universe.run_rounds(1, None));
    });

    let mut session = universe_session(8);
    session.reserve_join_slack();
    session.run_rounds(20);
    let mut rng = ChaCha8Rng::seed_from_u64(0x7e11);
    group.bench_function("membership_join_leave_d20", |b| {
        b.iter(|| {
            let id = session.join_with(400.0, 0.0, &mut rng, &NullObserver);
            session.leave(id, &NullObserver);
            black_box(id)
        });
    });
    group.finish();
}

/// Registers every core group (optimized + reference) on `c`.
pub fn core_groups(c: &mut Criterion) {
    bench_stable_configuration(c);
    bench_stable_configuration_ref(c);
    bench_dynamics(c);
    bench_dynamics_ref(c);
    bench_prefs(c);
    bench_prefs_ref(c);
    bench_swarm_rounds(c);
    bench_swarm_rounds_ref(c);
    bench_session(c);
    bench_faults(c);
    bench_events(c);
    bench_events_ref(c);
    bench_observer(c);
    bench_universe(c);
}
