//! Release-mode scale smoke for CI: the n = 10⁵ flash-crowd round (the
//! `swarm/flash_round_indexed_n100000_pieces` bench instance) must finish
//! one indexed round within a wall-clock budget, so a regression on the
//! million-peer scale path fails the build instead of silently inflating
//! the next `BENCH_core.json` refresh.
//!
//! ```text
//! cargo run --release -p strat-bench --bin scale_smoke
//! ```
//!
//! The budget defaults to 900 ms — ~5x the measured median on the bench
//! box, slack for slower CI runners but far under the 253 ms-per-round
//! pre-optimization baseline times five. Override with
//! `SCALE_SMOKE_BUDGET_MS` when a runner class needs different headroom.

use std::time::Instant;

use strat_bittorrent::{Swarm, SwarmConfig};

fn main() {
    let budget_ms: f64 = std::env::var("SCALE_SMOKE_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|b: &f64| b.is_finite() && *b > 0.0)
        .unwrap_or(900.0);

    let config = SwarmConfig::builder()
        .leechers(100_000)
        .seeds(20)
        .piece_count(128)
        .piece_size_kbit(1024.0)
        .initial_completion(0.02)
        .mean_neighbors(20.0)
        .seed(0xf1a5)
        .build();
    let uploads: Vec<f64> = (0..100_020)
        .map(|i| 150.0 + (i % 97) as f64 * 10.0)
        .collect();
    let threads = strat_par::default_threads();

    let build_start = Instant::now();
    let mut swarm = Swarm::new(config, &uploads);
    println!("built n=100020 swarm in {:?}", build_start.elapsed());

    // One warm round (buffer growth, page faults), then take the best of
    // three — the budget bounds steady-state cost, not cold-start noise.
    swarm.run_rounds_parallel(1, threads);
    let mut best_ms = f64::INFINITY;
    for i in 0..3 {
        let start = Instant::now();
        swarm.run_rounds_parallel(1, threads);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        println!("round {i}: {ms:.1} ms");
        best_ms = best_ms.min(ms);
    }

    assert!(
        best_ms <= budget_ms,
        "scale smoke failed: best flash round took {best_ms:.1} ms, budget {budget_ms:.0} ms"
    );
    println!("scale smoke ok: best {best_ms:.1} ms <= budget {budget_ms:.0} ms");
}
