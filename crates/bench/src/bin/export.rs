//! Writes `BENCH_core.json`: median-ns measurements of the matching-core
//! hot paths (optimized and seed-faithful reference), seeding the perf
//! trajectory tracked across PRs.
//!
//! ```text
//! cargo run --release -p strat-bench --bin export [-- OUT_PATH]
//! ```
//!
//! Runs the shared `strat_bench::core_groups` suite (the same kernels
//! `cargo bench` measures) through the criterion shim's JSON hook, then
//! derives reference/optimized speedups for every benchmark that has a
//! `*_ref` twin.

use std::io::BufRead as _;

use criterion::Criterion;
use serde::Serialize;

#[derive(Serialize)]
struct Measurement {
    group: String,
    bench: String,
    median_ns: f64,
}

#[derive(Serialize)]
struct Speedup {
    group: String,
    bench: String,
    reference_ns: f64,
    optimized_ns: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Report {
    generated_by: String,
    command: String,
    time_scale: f64,
    groups: Vec<Measurement>,
    speedups: Vec<Speedup>,
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_core.json".to_string());
    let raw_path =
        std::env::temp_dir().join(format!("criterion-export-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&raw_path);
    std::env::set_var("CRITERION_JSON", &raw_path);
    let time_scale = std::env::var("BENCH_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1.0);

    let mut criterion = Criterion::default();
    strat_bench::core_groups(&mut criterion);

    let file = std::fs::File::open(&raw_path).expect("criterion shim wrote the JSON lines file");
    let mut groups = Vec::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line.expect("readable line");
        groups.push(parse_line(&line).unwrap_or_else(|| panic!("unparsable line: {line}")));
    }
    let _ = std::fs::remove_file(&raw_path);

    // Pair each `<name>_ref/<bench>` with `<name>/<bench>`.
    let mut speedups = Vec::new();
    for reference in groups.iter().filter(|m| m.group.ends_with("_ref")) {
        let optimized_group = reference.group.trim_end_matches("_ref");
        if let Some(optimized) = groups
            .iter()
            .find(|m| m.group == optimized_group && m.bench == reference.bench)
        {
            speedups.push(Speedup {
                group: optimized_group.to_string(),
                bench: reference.bench.clone(),
                reference_ns: reference.median_ns,
                optimized_ns: optimized.median_ns,
                speedup: reference.median_ns / optimized.median_ns,
            });
        }
    }

    // The observer seam's zero-cost gate. The two rows come from one
    // interleaved `bench_pair`, so their ratio is drift-free; pair them
    // by hand (plain round = reference, NullObserver round = optimized)
    // and, at full time scale, reject more than 1% overhead. Scaled
    // (smoke) runs measure too briefly for the bound to be meaningful.
    let observer_row = |bench: &str| {
        groups
            .iter()
            .find(|m| m.group == "observer" && m.bench == bench)
            .unwrap_or_else(|| panic!("observer/{bench} exported"))
            .median_ns
    };
    let plain_ns = observer_row("round_n2000_fluid_plain");
    let observed_ns = observer_row("round_n2000_fluid_null_observer");
    speedups.push(Speedup {
        group: "observer".to_string(),
        bench: "round_n2000_fluid".to_string(),
        reference_ns: plain_ns,
        optimized_ns: observed_ns,
        speedup: plain_ns / observed_ns,
    });
    if (time_scale - 1.0).abs() < f64::EPSILON {
        assert!(
            observed_ns <= plain_ns * 1.01,
            "NullObserver round overhead exceeds 1%: {observed_ns:.0} ns observed vs {plain_ns:.0} ns plain"
        );
    }

    let report = Report {
        generated_by: "crates/bench/src/bin/export.rs".to_string(),
        command: "cargo run --release -p strat-bench --bin export".to_string(),
        time_scale,
        groups,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_core.json");

    println!("\nwrote {out_path}");
    for s in &report.speedups {
        println!(
            "  {}/{}: {:.2}x ({:.0} ns -> {:.0} ns)",
            s.group, s.bench, s.speedup, s.reference_ns, s.optimized_ns
        );
    }
}

/// Parses one `{"group":"g","bench":"b","median_ns":123.4}` line from the
/// criterion shim (fixed field order, written by our own code).
fn parse_line(line: &str) -> Option<Measurement> {
    let group = extract_str(line, "\"group\":\"")?;
    let bench = extract_str(line, "\"bench\":\"")?;
    let median = line
        .split("\"median_ns\":")
        .nth(1)?
        .trim_end_matches(['}', '\n']);
    Some(Measurement {
        group,
        bench,
        median_ns: median.parse().ok()?,
    })
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = line.split(key).nth(1)?;
    Some(rest.split('"').next()?.to_string())
}
