//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//!
//! 1. streaming prefix-sum Algorithm 2 vs the paper's dense matrix form;
//! 2. the complete-graph specialization of Algorithm 1 vs the generic
//!    algorithm on a materialized complete graph;
//! 3. sorted-vec mate lists vs a BTree-based alternative;
//! 4. rank-sorted acceptance adjacency (early-exit best-mate search) vs
//!    unsorted scanning.

use std::collections::BTreeSet;

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use strat_analytic::one_matching;
use strat_core::{
    blocking, stable_configuration, stable_configuration_complete, Capacities, GlobalRanking,
    Matching, RankedAcceptance,
};
use strat_graph::{generators, NodeId};

/// Ablation 1: streaming vs dense Algorithm 2 (identical output, §DESIGN-2).
fn ablation_analytic_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_algorithm2");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    let n = 600;
    let p = 0.02;
    group.bench_function("streaming", |b| {
        b.iter(|| one_matching::solve(black_box(n), black_box(p), &[n / 2]));
    });
    group.bench_function("dense_paper_form", |b| {
        b.iter(|| one_matching::solve_dense(black_box(n), black_box(p)));
    });
    group.finish();
}

/// Ablation 2: complete-graph specialization vs generic Algorithm 1.
fn ablation_complete_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_complete_graph");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    let n = 3000;
    let ranking = GlobalRanking::identity(n);
    let caps = Capacities::constant(n, 4);
    group.bench_function("specialized_pointer_jumping", |b| {
        b.iter(|| stable_configuration_complete(black_box(&ranking), black_box(&caps)).unwrap());
    });
    group.bench_function("generic_on_materialized_k_n", |b| {
        let acc = RankedAcceptance::new(generators::complete(n), ranking.clone()).unwrap();
        b.iter(|| stable_configuration(black_box(&acc), black_box(&caps)).unwrap());
    });
    group.finish();
}

/// Ablation 3: sorted-vec mate lists (what `Matching` uses) vs BTreeSet.
fn ablation_mate_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mate_set");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let b0 = 8usize; // larger than typical to stress the structure
    let ops: Vec<u32> = {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..10_000).collect();
        v.shuffle(&mut rng);
        v
    };
    group.bench_function("sorted_vec", |b| {
        b.iter(|| {
            let mut mates: Vec<u32> = Vec::with_capacity(b0 + 1);
            for &rank in &ops {
                let pos = mates.partition_point(|&m| m < rank);
                mates.insert(pos, rank);
                if mates.len() > b0 {
                    mates.pop(); // evict the worst
                }
            }
            black_box(mates)
        });
    });
    group.bench_function("btree_set", |b| {
        b.iter(|| {
            let mut mates: BTreeSet<u32> = BTreeSet::new();
            for &rank in &ops {
                mates.insert(rank);
                if mates.len() > b0 {
                    let worst = *mates.iter().next_back().expect("nonempty");
                    mates.remove(&worst);
                }
            }
            black_box(mates)
        });
    });
    group.finish();
}

/// Ablation 4: best-blocking-mate search with the rank-sorted adjacency
/// (early exit) vs a naive scan over unsorted neighbours.
fn ablation_best_mate_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_best_mate_search");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    let n = 2000;
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let graph = generators::erdos_renyi_mean_degree(n, 30.0, &mut rng);
    let ranking = GlobalRanking::identity(n);
    let acc = RankedAcceptance::new(graph.clone(), ranking.clone()).unwrap();
    let caps = Capacities::constant(n, 2);
    // Near-stable configuration: the early-exit case that matters.
    let matching = stable_configuration(&acc, &caps).unwrap();

    group.bench_function("rank_sorted_early_exit", |b| {
        b.iter(|| {
            for v in 0..n {
                black_box(blocking::best_blocking_mate(
                    &acc,
                    &caps,
                    &matching,
                    NodeId::new(v),
                    |_| true,
                ));
            }
        });
    });
    group.bench_function("naive_unsorted_scan", |b| {
        b.iter(|| {
            for v in 0..n {
                let v = NodeId::new(v);
                // Scan all neighbours in graph order, track the best blocker.
                let mut best: Option<NodeId> = None;
                for &q in graph.neighbors(v) {
                    if matching.would_accept(&ranking, &caps, v, q)
                        && matching.would_accept(&ranking, &caps, q, v)
                        && best.is_none_or(|b| ranking.prefers(q, b))
                    {
                        best = Some(q);
                    }
                }
                black_box(best);
            }
        });
    });
    group.finish();
}

/// Sanity: the ablated variants agree (run once under the bench harness).
fn ablation_correctness(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_correctness_probe");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(10);
    group.bench_function("complete_vs_generic_equal", |b| {
        let n = 500;
        let ranking = GlobalRanking::identity(n);
        let caps = Capacities::constant(n, 3);
        let acc = RankedAcceptance::new(generators::complete(n), ranking.clone()).unwrap();
        b.iter(|| {
            let fast = stable_configuration_complete(&ranking, &caps).unwrap();
            let slow = stable_configuration(&acc, &caps).unwrap();
            assert_eq!(fast, slow);
            black_box::<Matching>(fast)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    ablation_analytic_memory,
    ablation_complete_graph,
    ablation_mate_set,
    ablation_best_mate_search,
    ablation_correctness
);
criterion_main!(benches);
