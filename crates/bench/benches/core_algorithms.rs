//! Criterion benchmarks for the core algorithms: Algorithm 1 (generic and
//! complete-graph forms) and the initiative dynamics — optimized vs the
//! seed-faithful reference implementations (shared groups from
//! `strat_bench`) — plus the analytic solvers, graph generation, and the
//! swarm round loop (optimized vs the retained reference engine).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use strat_analytic::{b_matching, one_matching};
use strat_bench::{
    bench_dynamics, bench_dynamics_ref, bench_prefs, bench_prefs_ref, bench_stable_configuration,
    bench_stable_configuration_ref, bench_swarm_rounds, bench_swarm_rounds_ref,
};
use strat_graph::generators;

fn bench_analytic(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.sample_size(20);
    group.bench_function("algorithm2_n5000_p0.005", |b| {
        b.iter(|| one_matching::solve(black_box(5000), black_box(0.005), &[2500]));
    });
    group.bench_function("algorithm3_b2_n5000_p0.01", |b| {
        b.iter(|| b_matching::solve(black_box(5000), black_box(0.01), 2, &[3000]));
    });
    group.bench_function("algorithm3_expectations_b3_n2000", |b| {
        let weights: Vec<f64> = (0..2000).map(|i| 1.0 + i as f64).collect();
        b.iter(|| b_matching::solve_expectations(black_box(2000), 0.01, 3, &weights));
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("erdos_renyi_n5000_p0.01", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| generators::erdos_renyi(black_box(5000), black_box(0.01), &mut rng));
    });
    group.bench_function("components_n5000_d50", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::erdos_renyi_mean_degree(5000, 50.0, &mut rng);
        b.iter(|| strat_graph::components::Components::of(black_box(&g)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stable_configuration,
    bench_stable_configuration_ref,
    bench_dynamics,
    bench_dynamics_ref,
    bench_prefs,
    bench_prefs_ref,
    bench_analytic,
    bench_graph,
    bench_swarm_rounds,
    bench_swarm_rounds_ref
);
criterion_main!(benches);
