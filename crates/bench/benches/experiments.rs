//! One Criterion benchmark per paper table/figure: each runs the full
//! regeneration kernel (quick profile) so regressions in any experiment
//! pipeline are caught, and the harness cost per artifact is documented.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use strat_sim::runner::{self, ExperimentContext};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments_quick");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(5));
    let ctx = ExperimentContext {
        quick: true,
        seed: 2007,
    };
    for entry in runner::registry() {
        group.bench_function(entry.id, |b| {
            b.iter(|| {
                let result = (entry.run)(&ctx);
                assert!(
                    result.all_passed(),
                    "{} shape checks failed during benchmarking",
                    entry.id
                );
                result
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
