//! Schema and row-presence gate for the checked-in `BENCH_core.json`:
//! the exporter's output must parse, every measurement must be a finite
//! positive median with non-empty names, every speedup row must be
//! consistent with its reference/optimized pair, and the scale-path rows
//! (n = 10⁵ and n = 10⁶ flash rounds, the million-peer churn round) must
//! be present — a refresh that silently drops them fails here instead of
//! during the next perf comparison.

use serde_json::Value;

fn load() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core.json");
    let raw = std::fs::read_to_string(path).expect("BENCH_core.json is checked in at repo root");
    serde_json::from_str_value(&raw).expect("BENCH_core.json parses")
}

fn rows(report: &Value, section: &str) -> Vec<(String, String, f64)> {
    report
        .get(section)
        .and_then(Value::as_array)
        .unwrap_or_else(|| panic!("`{section}` is an array"))
        .iter()
        .map(|row| {
            let field = |key: &str| {
                row.get(key)
                    .and_then(Value::as_str)
                    .unwrap_or_else(|| panic!("`{section}` row has string `{key}`: {row:?}"))
                    .to_string()
            };
            let ns = row
                .get(if section == "groups" {
                    "median_ns"
                } else {
                    "optimized_ns"
                })
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("`{section}` row has a numeric time: {row:?}"));
            (field("group"), field("bench"), ns)
        })
        .collect()
}

#[test]
fn report_schema_is_well_formed() {
    let report = load();
    for key in ["generated_by", "command"] {
        let s = report
            .get(key)
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("`{key}` is a string"));
        assert!(!s.is_empty(), "`{key}` is non-empty");
    }
    let time_scale = report
        .get("time_scale")
        .and_then(Value::as_f64)
        .expect("`time_scale` is a number");
    assert!(time_scale.is_finite() && time_scale > 0.0);

    let groups = rows(&report, "groups");
    assert!(!groups.is_empty(), "at least one measurement");
    for (group, bench, median_ns) in &groups {
        assert!(!group.is_empty() && !bench.is_empty());
        assert!(
            median_ns.is_finite() && *median_ns > 0.0,
            "{group}/{bench}: median {median_ns} ns"
        );
    }
    let mut keys: Vec<_> = groups.iter().map(|(g, b, _)| (g, b)).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), groups.len(), "duplicate measurement rows");
}

#[test]
fn speedup_rows_are_consistent_with_their_pairs() {
    let report = load();
    let speedups = report
        .get("speedups")
        .and_then(Value::as_array)
        .expect("`speedups` is an array");
    assert!(!speedups.is_empty(), "at least one speedup pair");
    for row in speedups {
        let num = |key: &str| {
            row.get(key)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("speedup row has `{key}`: {row:?}"))
        };
        let (reference, optimized, speedup) =
            (num("reference_ns"), num("optimized_ns"), num("speedup"));
        assert!(reference > 0.0 && optimized > 0.0);
        assert!(
            (speedup - reference / optimized).abs() <= 1e-6 * speedup.abs(),
            "speedup field disagrees with its ratio: {row:?}"
        );
    }
}

#[test]
fn scale_path_rows_are_present() {
    let report = load();
    let groups = rows(&report, "groups");
    for (group, bench) in [
        ("swarm", "flash_round_indexed_n100000_pieces"),
        ("swarm", "flash_round_indexed_n1000000_pieces"),
        ("session", "round_churn_n1000"),
        ("session", "round_churn_indexed_n1000000"),
        ("universe", "round_shared_n1000_t8"),
        ("universe", "membership_join_leave_d20"),
    ] {
        assert!(
            groups.iter().any(|(g, b, _)| g == group && b == bench),
            "scale-path row {group}/{bench} missing from BENCH_core.json"
        );
    }
}
