//! Disjoint-set (union-find) structure with union by size and path halving.

/// Disjoint-set forest over `0..n`.
///
/// Used for connected-component analysis of collaboration graphs (cluster
/// sizes in the Section 4 stratification study).
///
/// # Examples
///
/// ```
/// use strat_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// uf.union(0, 1);
/// uf.union(2, 3);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 2));
/// assert_eq!(uf.component_count(), 2);
/// assert_eq!(uf.size_of(0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    /// Size of the component; only meaningful at roots.
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            u32::try_from(n).is_ok(),
            "UnionFind supports at most u32::MAX elements"
        );
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`, with path halving.
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Unions the sets of `a` and `b`. Returns `true` if they were disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            core::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> usize {
        let root = self.find(x);
        self.size[root] as usize
    }

    /// Number of disjoint sets.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.size_of(1), 1);
        assert!(!uf.connected(0, 2));
        assert_eq!(uf.len(), 3);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected
        assert_eq!(uf.component_count(), 3);
        assert_eq!(uf.size_of(2), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 4));
    }

    #[test]
    fn chain_unions_compress() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.component_count(), 1);
        assert_eq!(uf.size_of(0), n);
        // After finds, paths should be short; just exercise correctness.
        for i in 0..n {
            assert_eq!(uf.find(i), uf.find(0));
        }
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
