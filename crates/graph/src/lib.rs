//! Graph substrate for the *Stratification in P2P Networks* reproduction.
//!
//! The stratification model (see the `strat-core` crate) is defined over an
//! **acceptance graph**: an undirected, loopless graph whose edges mark pairs
//! of peers willing to collaborate. This crate provides:
//!
//! * [`Graph`] — compact undirected graphs with sorted adjacency,
//! * [`generators`] — the acceptance-graph families used by the paper
//!   (complete graphs for the Section 4 toy model, Erdős–Rényi `G(n, d)` for
//!   the Section 5 random-graph analysis),
//! * [`UnionFind`] and [`components::Components`] — connected-component
//!   analysis for cluster-size statistics,
//! * [`metrics`] — degrees, BFS distances, diameter, clustering coefficient.
//!
//! # Example
//!
//! Build the paper's `G(n, d)` acceptance graph and check its shape:
//!
//! ```
//! use rand::SeedableRng;
//! use strat_graph::{components::Components, generators, metrics};
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2007);
//! let g = generators::erdos_renyi_mean_degree(1000, 10.0, &mut rng);
//!
//! assert!((metrics::mean_degree(&g) - 10.0).abs() < 1.0);
//! // With d = 10 ≫ 1 the graph a.s. has a giant component.
//! assert!(Components::of(&g).giant_size() > 900);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// Index-coupled loops are the domain idiom here: adjacency construction couples node indices with membership arrays.
#![allow(clippy::needless_range_loop)]

pub mod components;
mod error;
pub mod generators;
#[allow(clippy::module_inception)]
mod graph;
pub mod metrics;
mod node;
mod union_find;

pub use error::GraphError;
pub use graph::{Graph, GraphBuilder};
pub use node::{node_ids, NodeId};
pub use union_find::UnionFind;
