//! Node identifiers.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a peer (node) in a graph.
///
/// Nodes are dense indices `0..n`. The paper labels peers `1..=n` with label 1
/// being the best peer; this crate uses zero-based [`NodeId`]s everywhere and
/// leaves ranking semantics to `strat-core`, which maps node ids to ranks.
///
/// # Examples
///
/// ```
/// use strat_graph::NodeId;
///
/// let a = NodeId::new(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(format!("{a}"), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32` (graphs in this workspace are
    /// bounded well below `u32::MAX` nodes).
    #[inline]
    #[must_use]
    pub fn new(index: usize) -> Self {
        Self(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }

    /// Returns the dense index of this node.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        Self(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.index()
    }
}

/// Returns an iterator over the node ids `0..n`.
///
/// # Examples
///
/// ```
/// let ids: Vec<_> = strat_graph::node_ids(3).collect();
/// assert_eq!(ids.len(), 3);
/// assert_eq!(ids[2].index(), 2);
/// ```
pub fn node_ids(n: usize) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
    (0..n).map(NodeId::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(42).to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(NodeId::new(10) > NodeId::new(2));
    }

    #[test]
    fn conversions() {
        let id = NodeId::from(7u32);
        assert_eq!(u32::from(id), 7);
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn node_ids_iterates_densely() {
        let v: Vec<_> = node_ids(4).collect();
        assert_eq!(
            v,
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(3)
            ]
        );
        assert_eq!(node_ids(0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NodeId::new(usize::MAX);
    }
}
