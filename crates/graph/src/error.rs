//! Error types for graph construction and queries.

use core::fmt;

use crate::NodeId;

/// Error raised by graph construction and mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint refers to a node outside `0..n`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The number of nodes in the graph.
        node_count: usize,
    },
    /// A self-loop `(v, v)` was supplied; graphs in this crate are loopless.
    SelfLoop {
        /// The node that would be looped to itself.
        node: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at {node} is not allowed")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::NodeOutOfRange {
            node: NodeId::new(9),
            node_count: 5,
        };
        assert_eq!(e.to_string(), "node n9 out of range for graph with 5 nodes");
        let e = GraphError::SelfLoop {
            node: NodeId::new(2),
        };
        assert_eq!(e.to_string(), "self-loop at n2 is not allowed");
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(GraphError::SelfLoop {
            node: NodeId::new(0),
        });
        assert!(e.to_string().contains("self-loop"));
    }
}
