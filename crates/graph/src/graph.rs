//! Undirected, loopless graphs with sorted adjacency lists.

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId};

/// An undirected, loopless graph over nodes `0..n`.
///
/// This is the *acceptance graph* of the stratification model: an edge
/// `(p, q)` means the two peers accept to collaborate. It also represents
/// *collaboration graphs* (matchings seen as graphs) for component and
/// stratification analysis.
///
/// Adjacency lists are kept sorted by node id, which lets the matching
/// algorithms of `strat-core` scan neighbours in global-ranking order when
/// node ids are rank-ordered, and makes `has_edge` a binary search.
///
/// # Examples
///
/// ```
/// use strat_graph::{Graph, NodeId};
///
/// let mut builder = Graph::builder(4);
/// builder.add_edge(NodeId::new(0), NodeId::new(1))?;
/// builder.add_edge(NodeId::new(2), NodeId::new(1))?;
/// let g = builder.build();
///
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 2);
/// assert!(g.has_edge(NodeId::new(1), NodeId::new(2)));
/// assert_eq!(g.degree(NodeId::new(3)), 0);
/// # Ok::<(), strat_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `adjacency[v]` is the sorted list of neighbours of `v`.
    adjacency: Vec<Vec<NodeId>>,
    /// Number of undirected edges.
    edge_count: usize,
}

impl Graph {
    /// Creates a builder for a graph with `node_count` nodes and no edges.
    #[must_use]
    pub fn builder(node_count: usize) -> GraphBuilder {
        GraphBuilder::new(node_count)
    }

    /// Creates an empty (edgeless) graph with `node_count` nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = strat_graph::Graph::empty(5);
    /// assert_eq!(g.edge_count(), 0);
    /// ```
    #[must_use]
    pub fn empty(node_count: usize) -> Self {
        Self {
            adjacency: vec![Vec::new(); node_count],
            edge_count: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// Duplicate edges are collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= node_count`
    /// and [`GraphError::SelfLoop`] for edges `(v, v)`.
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut builder = GraphBuilder::new(node_count);
        for (u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    #[inline]
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Sorted neighbours of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.index()]
    }

    /// Whether the undirected edge `(u, v)` exists.
    ///
    /// Runs in `O(log deg)`. Returns `false` for `u == v` (loopless).
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = strat_graph::generators::cycle(3);
    /// let edges: Vec<_> = g.edges().collect();
    /// assert_eq!(edges.len(), 3);
    /// ```
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, neigh)| {
            let u = NodeId::new(u);
            neigh
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator {
        crate::node_ids(self.node_count())
    }

    /// Returns the complement graph (complete graph minus this one), loopless.
    ///
    /// Intended for small analysis graphs; allocates `O(n²)` in the worst
    /// case.
    #[must_use]
    pub fn complement(&self) -> Self {
        let n = self.node_count();
        let mut builder = GraphBuilder::new(n);
        for u in 0..n {
            let u_id = NodeId::new(u);
            let mut neigh = self.adjacency[u].iter().copied().peekable();
            for v in (u + 1)..n {
                let v_id = NodeId::new(v);
                while neigh.peek().is_some_and(|&w| w < v_id) {
                    neigh.next();
                }
                if neigh.peek() == Some(&v_id) {
                    continue;
                }
                builder
                    .add_edge(u_id, v_id)
                    .expect("complement edges are in range and loopless");
            }
        }
        builder.build()
    }

    /// Checks internal invariants (sorted, symmetric, loopless adjacency and
    /// consistent edge count). Used by tests and debug assertions.
    #[must_use]
    pub fn check_invariants(&self) -> bool {
        let mut half_edges = 0usize;
        for (u, neigh) in self.adjacency.iter().enumerate() {
            let u_id = NodeId::new(u);
            if neigh.windows(2).any(|w| w[0] >= w[1]) {
                return false; // not strictly sorted (also catches duplicates)
            }
            for &v in neigh {
                if v == u_id || v.index() >= self.node_count() {
                    return false;
                }
                if self.adjacency[v.index()].binary_search(&u_id).is_err() {
                    return false;
                }
            }
            half_edges += neigh.len();
        }
        half_edges == 2 * self.edge_count
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects edges (deduplicated at [`build`](GraphBuilder::build) time) and
/// produces sorted adjacency lists.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    adjacency: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` nodes.
    #[must_use]
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count,
            adjacency: vec![Vec::new(); node_count],
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Duplicates are tolerated and collapsed at build time.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        for w in [u, v] {
            if w.index() >= self.node_count {
                return Err(GraphError::NodeOutOfRange {
                    node: w,
                    node_count: self.node_count,
                });
            }
        }
        self.adjacency[u.index()].push(v);
        self.adjacency[v.index()].push(u);
        Ok(self)
    }

    /// Finalizes into a [`Graph`], sorting and deduplicating adjacency.
    #[must_use]
    pub fn build(mut self) -> Graph {
        let mut edge_count = 0usize;
        for neigh in &mut self.adjacency {
            neigh.sort_unstable();
            neigh.dedup();
            edge_count += neigh.len();
        }
        Graph {
            adjacency: self.adjacency,
            edge_count: edge_count / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(3);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert!(g.check_invariants());
        assert!(!g.has_edge(n(0), n(1)));
    }

    #[test]
    fn builder_dedups_and_sorts() {
        let mut b = Graph::builder(4);
        b.add_edge(n(2), n(0)).unwrap();
        b.add_edge(n(0), n(2)).unwrap(); // duplicate, reversed
        b.add_edge(n(0), n(1)).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(n(0)), &[n(1), n(2)]);
        assert!(g.check_invariants());
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = Graph::builder(2);
        assert_eq!(
            b.add_edge(n(1), n(1)).unwrap_err(),
            GraphError::SelfLoop { node: n(1) }
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut b = Graph::builder(2);
        assert_eq!(
            b.add_edge(n(0), n(5)).unwrap_err(),
            GraphError::NodeOutOfRange {
                node: n(5),
                node_count: 2
            }
        );
    }

    #[test]
    fn has_edge_is_symmetric_and_loopless() {
        let g = Graph::from_edges(3, [(n(0), n(1))]).unwrap();
        assert!(g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(1), n(0)));
        assert!(!g.has_edge(n(0), n(0)));
        assert!(!g.has_edge(n(1), n(2)));
    }

    #[test]
    fn edges_iterator_yields_canonical_pairs() {
        let g = Graph::from_edges(4, [(n(3), n(1)), (n(0), n(2))]).unwrap();
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort();
        assert_eq!(edges, vec![(n(0), n(2)), (n(1), n(3))]);
    }

    #[test]
    fn complement_of_empty_is_complete() {
        let g = Graph::empty(4).complement();
        assert_eq!(g.edge_count(), 6);
        assert!(g.check_invariants());
        // complement twice returns the original
        assert_eq!(g.complement(), Graph::empty(4));
    }

    #[test]
    fn complement_of_edge() {
        let g = Graph::from_edges(3, [(n(0), n(1))]).unwrap().complement();
        assert!(!g.has_edge(n(0), n(1)));
        assert!(g.has_edge(n(0), n(2)));
        assert!(g.has_edge(n(1), n(2)));
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert!(g.check_invariants());
    }
}
