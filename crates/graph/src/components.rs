//! Connected-component analysis.

use crate::{Graph, NodeId, UnionFind};

/// Decomposition of a graph into connected components.
///
/// Cluster analysis (Section 4 of the paper) is built on this: the
/// *collaboration graph* of a stable configuration is decomposed and the
/// component sizes summarize how fragmented collaborations are.
///
/// # Examples
///
/// ```
/// use strat_graph::{components::Components, generators};
///
/// let g = generators::path(3); // one component of size 3
/// let comps = Components::of(&g);
/// assert_eq!(comps.count(), 1);
/// assert_eq!(comps.sizes(), &[3]);
/// assert_eq!(comps.mean_size(), 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct Components {
    /// `membership[v]` is the component index of node `v` (dense, `0..count`).
    membership: Vec<u32>,
    /// Component sizes, sorted descending.
    sizes: Vec<usize>,
}

impl Components {
    /// Computes the connected components of `graph`.
    #[must_use]
    pub fn of(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut uf = UnionFind::new(n);
        for (u, v) in graph.edges() {
            uf.union(u.index(), v.index());
        }
        Self::from_union_find(&mut uf)
    }

    /// Builds the decomposition recorded in a pre-populated [`UnionFind`].
    ///
    /// Useful when the caller already unions edges incrementally (e.g. while
    /// constructing a matching) and wants to avoid materializing a graph.
    #[must_use]
    pub fn from_union_find(uf: &mut UnionFind) -> Self {
        let n = uf.len();
        let mut root_to_component = vec![u32::MAX; n];
        let mut membership = vec![0u32; n];
        let mut sizes = Vec::new();
        for v in 0..n {
            let root = uf.find(v);
            if root_to_component[root] == u32::MAX {
                root_to_component[root] =
                    u32::try_from(sizes.len()).expect("component count fits u32");
                sizes.push(0usize);
            }
            let comp = root_to_component[root];
            membership[v] = comp;
            sizes[comp as usize] += 1;
        }
        // Sort sizes descending but keep membership indices consistent:
        // remap component ids by decreasing size.
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by_key(|&c| core::cmp::Reverse(sizes[c]));
        let mut remap = vec![0u32; sizes.len()];
        for (new_id, &old_id) in order.iter().enumerate() {
            remap[old_id] = new_id as u32;
        }
        for m in &mut membership {
            *m = remap[*m as usize];
        }
        let mut sorted_sizes: Vec<usize> = order.iter().map(|&c| sizes[c]).collect();
        debug_assert!(sorted_sizes.windows(2).all(|w| w[0] >= w[1]));
        sorted_sizes.shrink_to_fit();
        Self {
            membership,
            sizes: sorted_sizes,
        }
    }

    /// Number of components.
    #[must_use]
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component index of `v` (components are numbered by decreasing size).
    #[must_use]
    pub fn component_of(&self, v: NodeId) -> usize {
        self.membership[v.index()] as usize
    }

    /// Component sizes, sorted descending.
    #[must_use]
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component, or 0 for an empty graph.
    #[must_use]
    pub fn giant_size(&self) -> usize {
        self.sizes.first().copied().unwrap_or(0)
    }

    /// Mean component size (`n / count`), or 0 for an empty graph.
    #[must_use]
    pub fn mean_size(&self) -> f64 {
        if self.sizes.is_empty() {
            return 0.0;
        }
        self.membership.len() as f64 / self.sizes.len() as f64
    }

    /// Whether two nodes are in the same component.
    #[must_use]
    pub fn same_component(&self, u: NodeId, v: NodeId) -> bool {
        self.membership[u.index()] == self.membership[v.index()]
    }

    /// Whether the whole graph is connected (vacuously true when `n <= 1`).
    #[must_use]
    pub fn is_connected(&self) -> bool {
        self.sizes.len() <= 1
    }

    /// Iterates over the nodes of component `c`.
    pub fn members(&self, c: usize) -> impl Iterator<Item = NodeId> + '_ {
        let c = c as u32;
        self.membership
            .iter()
            .enumerate()
            .filter(move |&(_, &m)| m == c)
            .map(|(v, _)| NodeId::new(v))
    }
}

#[cfg(test)]
mod tests {
    use crate::generators;

    use super::*;

    #[test]
    fn empty_graph_components() {
        let comps = Components::of(&Graph::empty(0));
        assert_eq!(comps.count(), 0);
        assert!(comps.is_connected());
        assert_eq!(comps.giant_size(), 0);
        assert_eq!(comps.mean_size(), 0.0);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let comps = Components::of(&Graph::empty(4));
        assert_eq!(comps.count(), 4);
        assert_eq!(comps.sizes(), &[1, 1, 1, 1]);
        assert!(!comps.is_connected());
    }

    #[test]
    fn two_triangles() {
        let n = |i| NodeId::new(i);
        let g = Graph::from_edges(
            6,
            [
                (n(0), n(1)),
                (n(1), n(2)),
                (n(2), n(0)),
                (n(3), n(4)),
                (n(4), n(5)),
                (n(5), n(3)),
            ],
        )
        .unwrap();
        let comps = Components::of(&g);
        assert_eq!(comps.count(), 2);
        assert_eq!(comps.sizes(), &[3, 3]);
        assert!(comps.same_component(n(0), n(2)));
        assert!(!comps.same_component(n(0), n(3)));
        assert_eq!(comps.mean_size(), 3.0);
    }

    #[test]
    fn sizes_sorted_descending_and_membership_consistent() {
        let n = |i| NodeId::new(i);
        // Component {0,1,2,3} and component {4,5}.
        let g =
            Graph::from_edges(6, [(n(0), n(1)), (n(1), n(2)), (n(2), n(3)), (n(4), n(5))]).unwrap();
        let comps = Components::of(&g);
        assert_eq!(comps.sizes(), &[4, 2]);
        assert_eq!(comps.component_of(n(0)), 0);
        assert_eq!(comps.component_of(n(5)), 1);
        let big: Vec<_> = comps.members(0).collect();
        assert_eq!(big.len(), 4);
        assert!(big.contains(&n(3)));
    }

    #[test]
    fn complete_graph_is_connected() {
        let comps = Components::of(&generators::complete(10));
        assert!(comps.is_connected());
        assert_eq!(comps.giant_size(), 10);
    }
}
