//! Graph generators used by the paper's experiments.
//!
//! The paper's simulations use *Erdős–Rényi loopless symmetric graphs*
//! `G(n, d)` where `d` is the expected degree (each edge exists independently
//! with probability `d / (n - 1)`), and *complete* acceptance graphs for the
//! toy stratification model of Section 4.

use rand::Rng;

use crate::{Graph, GraphBuilder, NodeId};

/// Complete (everybody-accepts-everybody) graph on `n` nodes.
///
/// This is the Section 4 toy model acceptance graph.
///
/// # Examples
///
/// ```
/// let g = strat_graph::generators::complete(5);
/// assert_eq!(g.edge_count(), 10);
/// ```
#[must_use]
pub fn complete(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            builder
                .add_edge(NodeId::new(u), NodeId::new(v))
                .expect("complete graph edges are valid");
        }
    }
    builder.build()
}

/// Cycle `0 - 1 - … - (n-1) - 0`.
///
/// Used by connectivity arguments (§4.1: the cycle is the unique connected
/// 2-regular graph).
///
/// # Panics
///
/// Panics if `n < 3` (a loopless cycle needs at least three nodes).
#[must_use]
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least 3 nodes, got {n}");
    let mut builder = GraphBuilder::new(n);
    for u in 0..n {
        builder
            .add_edge(NodeId::new(u), NodeId::new((u + 1) % n))
            .expect("cycle edges are valid");
    }
    builder.build()
}

/// Path `0 - 1 - … - (n-1)`.
#[must_use]
pub fn path(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 1..n {
        builder
            .add_edge(NodeId::new(u - 1), NodeId::new(u))
            .expect("path edges are valid");
    }
    builder.build()
}

/// Star with centre `0` and `n - 1` leaves.
#[must_use]
pub fn star(n: usize) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for u in 1..n {
        builder
            .add_edge(NodeId::new(0), NodeId::new(u))
            .expect("star edges are valid");
    }
    builder.build()
}

/// Erdős–Rényi graph `G(n, p)`: every unordered pair is an edge independently
/// with probability `p`.
///
/// Uses the Batagelj–Brandes geometric-skip sampler, `O(n + m)` expected
/// time, so sparse graphs with large `n` (the paper uses `n = 5000`,
/// `p = 0.5 %`) are cheap.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = strat_graph::generators::erdos_renyi(100, 0.05, &mut rng);
/// assert!(g.check_invariants());
/// ```
#[must_use]
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(
        p.is_finite() && (0.0..=1.0).contains(&p),
        "p must be in [0, 1], got {p}"
    );
    if n == 0 || p == 0.0 {
        return Graph::empty(n);
    }
    if p >= 1.0 {
        return complete(n);
    }

    // Batagelj & Brandes (2005): walk the lower-triangular pair enumeration
    // (v, w) with w < v, skipping a geometric number of non-edges at a time.
    let mut builder = GraphBuilder::new(n);
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(0.0..1.0);
        // Number of skipped pairs: floor(log(1-r) / log(1-p)).
        let skip = ((1.0 - r).ln() / log_q).floor();
        // Guard against astronomically large skips overflowing i64.
        if !skip.is_finite() || skip >= (n * n) as f64 {
            break;
        }
        w += 1 + skip as i64;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            builder
                .add_edge(NodeId::new(v), NodeId::new(w as usize))
                .expect("sampled edges are valid");
        }
    }
    builder.build()
}

/// Erdős–Rényi graph `G(n, d)` parameterized by the *expected degree* `d`, as
/// in the paper: each edge exists with probability `d / (n - 1)`.
///
/// `d` is clamped to the feasible range `[0, n - 1]`.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let g = strat_graph::generators::erdos_renyi_mean_degree(1000, 10.0, &mut rng);
/// let mean = 2.0 * g.edge_count() as f64 / 1000.0;
/// assert!((mean - 10.0).abs() < 1.5, "mean degree {mean} too far from 10");
/// ```
#[must_use]
pub fn erdos_renyi_mean_degree<R: Rng + ?Sized>(n: usize, d: f64, rng: &mut R) -> Graph {
    assert!(
        d.is_finite() && d >= 0.0,
        "expected degree must be non-negative, got {d}"
    );
    if n <= 1 {
        return Graph::empty(n);
    }
    let p = (d / (n as f64 - 1.0)).clamp(0.0, 1.0);
    erdos_renyi(n, p, rng)
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn complete_counts() {
        for n in 0..8 {
            let g = complete(n);
            assert_eq!(g.edge_count(), n * n.saturating_sub(1) / 2);
            assert!(g.check_invariants());
        }
    }

    #[test]
    fn cycle_is_2_regular() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 nodes")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path(4);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.degree(NodeId::new(0)), 1);
        assert_eq!(p.degree(NodeId::new(1)), 2);

        let s = star(5);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(NodeId::new(0)), 4);
        assert_eq!(s.degree(NodeId::new(3)), 1);
    }

    #[test]
    fn er_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).edge_count(), 45);
        assert_eq!(erdos_renyi(0, 0.5, &mut rng).node_count(), 0);
        assert_eq!(erdos_renyi(1, 0.5, &mut rng).edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "p must be in [0, 1]")]
    fn er_rejects_bad_p() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = erdos_renyi(5, 1.5, &mut rng);
    }

    #[test]
    fn er_edge_count_concentrates() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 2000;
        let p = 0.01;
        let g = erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        // ~sqrt(expected) std; allow 5 sigma.
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "edge count {got} too far from {expected}"
        );
        assert!(g.check_invariants());
    }

    #[test]
    fn er_mean_degree_parameterization() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = erdos_renyi_mean_degree(1000, 50.0, &mut rng);
        let mean = 2.0 * g.edge_count() as f64 / 1000.0;
        assert!((mean - 50.0).abs() < 3.0, "mean degree {mean}");
    }

    #[test]
    fn er_mean_degree_clamps() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // d > n-1 clamps to complete.
        let g = erdos_renyi_mean_degree(5, 100.0, &mut rng);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn er_is_deterministic_for_fixed_seed() {
        let g1 = erdos_renyi(200, 0.03, &mut ChaCha8Rng::seed_from_u64(9));
        let g2 = erdos_renyi(200, 0.03, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1, g2);
    }
}
