//! Structural graph metrics: degrees, distances, clustering coefficient.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Mean degree `2m / n` of the graph, or 0 for the empty node set.
///
/// # Examples
///
/// ```
/// let g = strat_graph::generators::cycle(6);
/// assert_eq!(strat_graph::metrics::mean_degree(&g), 2.0);
/// ```
#[must_use]
pub fn mean_degree(graph: &Graph) -> f64 {
    if graph.node_count() == 0 {
        return 0.0;
    }
    2.0 * graph.edge_count() as f64 / graph.node_count() as f64
}

/// Edge density `m / (n choose 2)`, or 0 when `n < 2`.
#[must_use]
pub fn density(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n < 2 {
        return 0.0;
    }
    graph.edge_count() as f64 / (n * (n - 1) / 2) as f64
}

/// Histogram of node degrees: `hist[k]` = number of nodes of degree `k`.
#[must_use]
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let max_deg = graph.nodes().map(|v| graph.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in graph.nodes() {
        hist[graph.degree(v)] += 1;
    }
    hist
}

/// BFS distances (in hops) from `source`; `None` for unreachable nodes.
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<u32>> {
    let n = graph.node_count();
    assert!(
        source.index() < n,
        "source {source} out of range for {n} nodes"
    );
    let mut dist = vec![None; n];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for &v in graph.neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Eccentricity of `source` within its component (max BFS distance).
#[must_use]
pub fn eccentricity(graph: &Graph, source: NodeId) -> u32 {
    bfs_distances(graph, source)
        .into_iter()
        .flatten()
        .max()
        .unwrap_or(0)
}

/// Exact diameter: max eccentricity over all nodes, per component.
///
/// `O(n · (n + m))`; intended for analysis-sized graphs (the collaboration
/// graphs of Section 4 have at most thousands of nodes).
#[must_use]
pub fn diameter(graph: &Graph) -> u32 {
    graph
        .nodes()
        .map(|v| eccentricity(graph, v))
        .max()
        .unwrap_or(0)
}

/// Global clustering coefficient: `3 × triangles / open-or-closed wedges`.
///
/// Returns 0 when there are no wedges. Used to characterize collaboration
/// graphs (§4.1 discusses small-world properties of overlays).
#[must_use]
pub fn clustering_coefficient(graph: &Graph) -> f64 {
    let mut wedges = 0u64;
    let mut closed = 0u64; // ordered triangle corners (3 per triangle × 2 directions)
    for v in graph.nodes() {
        let neigh = graph.neighbors(v);
        let deg = neigh.len() as u64;
        wedges += deg.saturating_sub(1) * deg / 2;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if graph.has_edge(a, b) {
                    closed += 1;
                }
            }
        }
    }
    if wedges == 0 {
        return 0.0;
    }
    closed as f64 / wedges as f64
}

#[cfg(test)]
mod tests {
    use crate::generators;

    use super::*;

    #[test]
    fn mean_degree_and_density() {
        let g = generators::complete(5);
        assert_eq!(mean_degree(&g), 4.0);
        assert_eq!(density(&g), 1.0);
        assert_eq!(mean_degree(&Graph::empty(0)), 0.0);
        assert_eq!(density(&Graph::empty(1)), 0.0);
    }

    #[test]
    fn histogram_of_star() {
        let g = generators::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4); // leaves
        assert_eq!(h[4], 1); // centre
    }

    #[test]
    fn bfs_on_path() {
        let g = generators::path(4);
        let d = bfs_distances(&g, NodeId::new(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(eccentricity(&g, NodeId::new(0)), 3);
        assert_eq!(eccentricity(&g, NodeId::new(1)), 2);
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::empty(3);
        let d = bfs_distances(&g, NodeId::new(1));
        assert_eq!(d, vec![None, Some(0), None]);
        assert_eq!(diameter(&g), 0);
    }

    #[test]
    fn clustering_extremes() {
        assert_eq!(clustering_coefficient(&generators::complete(6)), 1.0);
        assert_eq!(clustering_coefficient(&generators::path(5)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::empty(3)), 0.0);
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(diameter(&generators::cycle(6)), 3);
        assert_eq!(diameter(&generators::cycle(7)), 3);
    }
}
