//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use strat_graph::{components::Components, generators, metrics, Graph, NodeId};

/// Strategy: a random edge list over `n` nodes.
fn edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(3 * n));
        (Just(n), edges)
    })
}

fn build(n: usize, raw_edges: &[(usize, usize)]) -> Graph {
    let mut builder = Graph::builder(n);
    for &(u, v) in raw_edges {
        if u != v {
            builder
                .add_edge(NodeId::new(u), NodeId::new(v))
                .expect("endpoints are in range");
        }
    }
    builder.build()
}

proptest! {
    /// Every built graph satisfies the structural invariants.
    #[test]
    fn built_graphs_are_valid((n, edges) in edge_list(64)) {
        let g = build(n, &edges);
        prop_assert!(g.check_invariants());
    }

    /// `has_edge` agrees with the edge iterator.
    #[test]
    fn has_edge_matches_edge_iter((n, edges) in edge_list(32)) {
        let g = build(n, &edges);
        let listed: std::collections::HashSet<_> = g.edges().collect();
        for u in g.nodes() {
            for v in g.nodes() {
                let canonical = if u < v { (u, v) } else { (v, u) };
                prop_assert_eq!(g.has_edge(u, v), u != v && listed.contains(&canonical));
            }
        }
    }

    /// Complementing twice is the identity.
    #[test]
    fn complement_involution((n, edges) in edge_list(24)) {
        let g = build(n, &edges);
        prop_assert_eq!(g.complement().complement(), g);
    }

    /// Component sizes partition the node set and are sorted descending.
    #[test]
    fn components_partition_nodes((n, edges) in edge_list(64)) {
        let g = build(n, &edges);
        let comps = Components::of(&g);
        prop_assert_eq!(comps.sizes().iter().sum::<usize>(), n);
        prop_assert!(comps.sizes().windows(2).all(|w| w[0] >= w[1]));
        // Edge endpoints share a component.
        for (u, v) in g.edges() {
            prop_assert!(comps.same_component(u, v));
        }
    }

    /// BFS distance satisfies the triangle property along edges.
    #[test]
    fn bfs_distances_are_consistent((n, edges) in edge_list(48)) {
        let g = build(n, &edges);
        let src = NodeId::new(0);
        let dist = metrics::bfs_distances(&g, src);
        for (u, v) in g.edges() {
            match (dist[u.index()], dist[v.index()]) {
                (Some(du), Some(dv)) => {
                    prop_assert!(du.abs_diff(dv) <= 1, "edge endpoints differ by >1 hop");
                }
                (None, None) => {}
                _ => prop_assert!(false, "edge spans reachable/unreachable"),
            }
        }
    }

    /// The ER sampler never produces invalid graphs and respects `p = 0 | 1`.
    #[test]
    fn erdos_renyi_valid(n in 1usize..200, seed in any::<u64>(), p in 0.0f64..=1.0) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::erdos_renyi(n, p, &mut rng);
        prop_assert!(g.check_invariants());
        prop_assert_eq!(g.node_count(), n);
        if p == 0.0 {
            prop_assert_eq!(g.edge_count(), 0);
        }
        if p == 1.0 {
            prop_assert_eq!(g.edge_count(), n * (n - 1) / 2);
        }
    }
}
