//! Differential guard for the Scenario migration: every experiment's data
//! rows, at the quick profile with seed 2007, must stay **bit-identical**
//! to the pre-migration harness (PR 1 state). The golden fingerprints were
//! harvested from that code before any experiment was touched.
//!
//! Run with `GOLDEN_PRINT=1` to print current fingerprints (for refreshing
//! after an *intentional* row change — document such changes in
//! EXPERIMENTS.md/CHANGES.md).

use strat_sim::runner::{self, ExperimentContext};

/// FNV-1a over the exact f64 bit patterns of the row data.
fn fingerprint(rows: &[Vec<f64>]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for row in rows {
        for &value in row {
            for byte in value.to_bits().to_le_bytes() {
                eat(byte);
            }
        }
        eat(b'\n');
    }
    hash
}

/// `(id, fingerprint)` pairs harvested from the pre-Scenario harness.
const GOLDEN: &[(&str, u64)] = &[
    ("fig1", 0xb2286407dc63a8c5),
    ("fig2", 0x3a232a9f25ec8a95),
    ("fig3", 0xa23bcad813f4d0f4),
    ("fig45", 0x5ce337a2a7fddfd4),
    ("table1", 0xdb7fc9a38eddd76e),
    ("fig6", 0x080854c2f705590f),
    ("fig7", 0xbf02c29edd43147f),
    ("fig8", 0x76ff142f830e32fb),
    ("fig9", 0x9fbcb12c1525e1ed),
    ("fig10", 0x8e127414f94cddf0),
    ("fig11", 0xe1aa4db351f79bf1),
    ("bt1", 0x703d7a80283f8682),
    // PR 3 additions (flash crowd + free-rider sweep), recorded at birth.
    ("btflash", 0x422fc5a079cae2f7),
    ("btfree", 0x540dc519723119b3),
    ("ext1", 0x96ff492352c0fa6e),
    ("ext2", 0x87423fc70fa52cc7),
    // PR 4 addition (generic-engine latency clustering), recorded at birth.
    ("latstrat", 0xc2b9f5910930b60f),
    // PR 5 addition (open-membership churn sweep vs the fluid model),
    // recorded at birth.
    ("btchurn", 0x1310264f860d92cb),
    // PR 6 addition (fault-plane degradation/recovery sweep), recorded at
    // birth.
    ("btfault", 0x4cca2b7cae661056),
    // PR 7 addition (event-engine heterogeneity sweep vs the multi-class
    // fluid model), recorded at birth.
    ("btevent", 0x2d66d4c083c1c0d3),
    // PR 8 additions (observer-layer clustering + live-overlay sweeps),
    // recorded at birth.
    ("btcluster", 0x8e7790d9562b9e73),
    ("btoverlay", 0x6e199d7e5d7422f9),
    // PR 10 addition (multi-swarm shared-population universe sweep),
    // recorded at birth.
    ("btmulti", 0x1f437f8ea1d63274),
    ("fluid", 0xc0fe96f77ba157fe),
    ("mmo", 0x27179e7ca8fb3385),
];

#[test]
fn rows_match_pre_migration_goldens() {
    let ctx = ExperimentContext {
        quick: true,
        seed: 2007,
    };
    let print = std::env::var("GOLDEN_PRINT").is_ok();
    let mut failures = Vec::new();
    for entry in runner::registry() {
        let result = (entry.run)(&ctx);
        let fp = fingerprint(&result.rows);
        if print {
            println!("    (\"{}\", 0x{fp:016x}),", entry.id);
            continue;
        }
        match GOLDEN.iter().find(|(id, _)| *id == entry.id) {
            Some(&(_, want)) if want == fp => {}
            Some(&(_, want)) => failures.push(format!(
                "{}: fingerprint 0x{fp:016x} != golden 0x{want:016x}",
                entry.id
            )),
            None => failures.push(format!("{}: no golden recorded (0x{fp:016x})", entry.id)),
        }
    }
    assert!(failures.is_empty(), "row drift detected:\n{failures:#?}");
}
