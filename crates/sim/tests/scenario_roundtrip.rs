//! The Scenario contract, end to end:
//!
//! 1. every registered experiment's preset survives
//!    `to_json -> from_json` unchanged;
//! 2. the parsed preset *builds* bit-identical simulation state
//!    (dynamics / swarm fingerprints match the in-memory preset's);
//! 3. the parsed preset *measures* identically: `run_scenario` on it
//!    reproduces the exact rows of `run` (the `--scenario` CLI path's
//!    guarantee).

use strat_scenario::{stream_rng, Scenario, TopologyModel};
use strat_sim::runner::{self, ExperimentContext};

fn ctx() -> ExperimentContext {
    ExperimentContext {
        quick: true,
        seed: 2007,
    }
}

#[test]
fn every_preset_round_trips_through_json() {
    for entry in runner::registry() {
        let preset = (entry.preset)(&ctx());
        assert_eq!(preset.name, entry.id, "preset name matches registry id");
        assert_eq!(
            preset.experiment, entry.id,
            "preset binds to its own experiment"
        );
        let parsed =
            Scenario::from_json(&preset.to_json()).unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        assert_eq!(parsed, preset, "{} JSON round trip", entry.id);
        let parsed_pretty = Scenario::from_json(&preset.to_json_pretty())
            .unwrap_or_else(|e| panic!("{}: {e}", entry.id));
        assert_eq!(parsed_pretty, preset, "{} pretty round trip", entry.id);
    }
}

/// A cheap structural fingerprint of built simulation state.
fn build_fingerprint(scenario: &Scenario) -> Vec<f64> {
    if scenario.swarm.is_some() {
        // Swarm path: run a few rounds, fingerprint the transfer totals.
        let mut swarm = scenario
            .build_swarm(&mut stream_rng(scenario.seed, 0xf1))
            .expect("valid swarm scenario");
        swarm.run_rounds(5);
        (0..swarm.peer_count())
            .map(|p| swarm.peer(p).total_downloaded() + swarm.peer(p).upload_kbps())
            .collect()
    } else if scenario.capacity.bandwidth_cdf().is_some() {
        // Bandwidth-only scenarios (fig10): the capacity assignment is the
        // observable.
        scenario
            .capacity
            .upload_bandwidths(scenario.peers, &mut stream_rng(scenario.seed, 0xf1))
            .expect("valid scenario")
    } else if matches!(scenario.topology, TopologyModel::Complete) {
        // Complete topologies never materialize the quadratic graph; the
        // stable configuration is the observable.
        let stable = scenario
            .stable_matching(&mut stream_rng(scenario.seed, 0xf1))
            .expect("valid scenario");
        (0..stable.node_count())
            .map(|v| stable.degree(strat_graph::NodeId::new(v)) as f64)
            .collect()
    } else {
        // Dynamics path: converge a little and fingerprint the matching.
        let mut dynamics = scenario
            .build_dynamics(&mut stream_rng(scenario.seed, 0xf1))
            .expect("valid scenario");
        let mut rng = stream_rng(scenario.seed, 0xf2);
        for _ in 0..3 {
            dynamics.run_base_unit(&mut rng);
        }
        let matching = dynamics.matching();
        (0..dynamics.node_count())
            .map(|v| {
                let v = strat_graph::NodeId::new(v);
                matching
                    .mates(v)
                    .iter()
                    .map(|m| m.index() as f64)
                    .sum::<f64>()
            })
            .collect()
    }
}

#[test]
fn parsed_presets_build_bit_identical_state() {
    for entry in runner::registry() {
        let preset = (entry.preset)(&ctx());
        // table1's headline instance is full-profile sized; its kernel
        // path is covered by the row-equality test below.
        if entry.id == "table1" {
            continue;
        }
        let parsed = Scenario::from_json(&preset.to_json()).expect("parses");
        assert_eq!(
            build_fingerprint(&preset),
            build_fingerprint(&parsed),
            "{}: parsed preset builds different state",
            entry.id
        );
    }
}

#[test]
fn run_scenario_on_parsed_preset_reproduces_run() {
    let ctx = ctx();
    for entry in runner::registry() {
        let preset = (entry.preset)(&ctx);
        let parsed = Scenario::from_json(&preset.to_json()).expect("parses");
        let direct = (entry.run)(&ctx);
        let via_json = (entry.run_scenario)(&ctx, &parsed);
        assert_eq!(direct.columns, via_json.columns, "{} columns", entry.id);
        assert_eq!(direct.rows, via_json.rows, "{} rows", entry.id);
        assert_eq!(direct.checks, via_json.checks, "{} checks", entry.id);
    }
}
