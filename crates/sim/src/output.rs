//! Rendering experiment results: CSV, ASCII tables, terminal line plots.

use crate::runner::ExperimentResult;

/// Serializes the result's data table as CSV (header + rows).
///
/// # Examples
///
/// ```
/// use strat_sim::runner::ExperimentResult;
///
/// let mut r = ExperimentResult::new("x", "t", "p", vec!["a".into(), "b".into()]);
/// r.push_row(vec![1.0, 2.5]);
/// assert_eq!(strat_sim::output::to_csv(&r), "a,b\n1,2.5\n");
/// ```
#[must_use]
pub fn to_csv(result: &ExperimentResult) -> String {
    let mut out = String::new();
    out.push_str(&result.columns.join(","));
    out.push('\n');
    for row in &result.rows {
        let line: Vec<String> = row.iter().map(|v| format_number(*v)).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

/// Renders a bounded ASCII table of the result (first `max_rows` rows).
#[must_use]
pub fn to_ascii_table(result: &ExperimentResult, max_rows: usize) -> String {
    let mut widths: Vec<usize> = result.columns.iter().map(String::len).collect();
    let shown: Vec<Vec<String>> = result
        .rows
        .iter()
        .take(max_rows)
        .map(|row| row.iter().map(|v| format_number(*v)).collect())
        .collect();
    for row in &shown {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let header: Vec<String> = result
        .columns
        .iter()
        .zip(&widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    out.push_str(&header.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(header.join("  ").len()));
    out.push('\n');
    for row in &shown {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    if result.rows.len() > max_rows {
        out.push_str(&format!(
            "... ({} more rows)\n",
            result.rows.len() - max_rows
        ));
    }
    out
}

/// Renders an ASCII line plot of column `ycol` against column `xcol`.
///
/// Each series point becomes a `*` on a `width × height` canvas with axis
/// labels — enough to eyeball the shape of a paper figure in a terminal.
///
/// # Panics
///
/// Panics if the column indices are out of range.
#[must_use]
pub fn ascii_plot(
    result: &ExperimentResult,
    xcol: usize,
    ycols: &[usize],
    width: usize,
    height: usize,
) -> String {
    assert!(xcol < result.columns.len(), "xcol out of range");
    for &y in ycols {
        assert!(y < result.columns.len(), "ycol out of range");
    }
    if result.rows.is_empty() || ycols.is_empty() {
        return String::from("(no data)\n");
    }
    let xs: Vec<f64> = result.rows.iter().map(|r| r[xcol]).collect();
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for row in &result.rows {
        for &y in ycols {
            let v = row[y];
            if v.is_finite() {
                ymin = ymin.min(v);
                ymax = ymax.max(v);
            }
        }
    }
    let (xmin, xmax) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    if !(ymin.is_finite() && ymax.is_finite() && xmin.is_finite() && xmax.is_finite()) {
        return String::from("(no finite data)\n");
    }
    let yspan = if ymax > ymin { ymax - ymin } else { 1.0 };
    let xspan = if xmax > xmin { xmax - xmin } else { 1.0 };
    let mut canvas = vec![vec![b' '; width]; height];
    let marks = [b'*', b'o', b'+', b'x', b'#'];
    for row in &result.rows {
        let cx = (((row[xcol] - xmin) / xspan) * (width - 1) as f64).round() as usize;
        for (si, &y) in ycols.iter().enumerate() {
            let v = row[y];
            if !v.is_finite() {
                continue;
            }
            let cy = (((v - ymin) / yspan) * (height - 1) as f64).round() as usize;
            canvas[height - 1 - cy][cx.min(width - 1)] = marks[si % marks.len()];
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{ymax:>10.4} ┤"));
    out.push_str(core::str::from_utf8(&canvas[0]).expect("ascii"));
    out.push('\n');
    for line in canvas.iter().take(height - 1).skip(1) {
        out.push_str("           │");
        out.push_str(core::str::from_utf8(line).expect("ascii"));
        out.push('\n');
    }
    out.push_str(&format!("{ymin:>10.4} ┤"));
    out.push_str(core::str::from_utf8(&canvas[height - 1]).expect("ascii"));
    out.push('\n');
    out.push_str(&format!(
        "            {xmin:<.4}{:pad$}{xmax:>.4}\n",
        "",
        pad = width.saturating_sub(16)
    ));
    let legend: Vec<String> = ycols
        .iter()
        .enumerate()
        .map(|(si, &y)| {
            format!(
                "{} = {}",
                char::from(marks[si % marks.len()]),
                result.columns[y]
            )
        })
        .collect();
    out.push_str(&format!("            {}\n", legend.join(", ")));
    out
}

/// Formats a float compactly: integers without decimals, others trimmed.
fn format_number(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.6}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentResult {
        let mut r = ExperimentResult::new("s", "sample", "p", vec!["x".into(), "y".into()]);
        for i in 0..20 {
            r.push_row(vec![i as f64, (i * i) as f64]);
        }
        r
    }

    #[test]
    fn csv_shape() {
        let csv = to_csv(&sample());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 21);
        assert_eq!(lines[0], "x,y");
        assert_eq!(lines[3], "2,4");
    }

    #[test]
    fn ascii_table_truncates() {
        let t = to_ascii_table(&sample(), 5);
        assert!(t.contains("... (15 more rows)"));
        assert!(t.starts_with('x'));
    }

    #[test]
    fn plot_renders_marks() {
        let p = ascii_plot(&sample(), 0, &[1], 40, 10);
        assert!(p.contains('*'));
        assert!(p.contains("* = y"));
    }

    #[test]
    fn plot_handles_empty() {
        let r = ExperimentResult::new("e", "t", "p", vec!["x".into(), "y".into()]);
        assert_eq!(ascii_plot(&r, 0, &[1], 10, 5), "(no data)\n");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(0.25), "0.25");
        assert_eq!(format_number(0.1234567), "0.123457");
        assert_eq!(format_number(f64::NAN), "NaN");
    }
}
