//! Figure 11: expected download/upload ratio as a function of the upload
//! bandwidth per slot (`b₀ = 3`, `d = 20`).
//!
//! The paper's four observations, each encoded as a shape check:
//!
//! 1. best peers suffer low sharing ratios;
//! 2. peers at bandwidth density peaks trade at ratio ≈ 1;
//! 3. efficiency peaks appear just above density peaks;
//! 4. the lowest peers see high efficiency (while risking unmatchedness).

use strat_bandwidth::{efficiency_curve, mean_ratio_in_band, EfficiencyModel};
use strat_scenario::{CapacityModel, Scenario, SwarmParams, TopologyModel};

use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 11 scenario: Saroiu-marked peers, `d = 20` overlay, and the
/// reference client's `b₀ = 3` TFT slots (carried by the swarm section).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("fig11", if ctx.quick { 800 } else { 4000 })
        .with_seed(ctx.seed)
        .with_capacity(CapacityModel::SaroiuByRank)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_swarm(SwarmParams::default())
}

/// Runs the Figure 11 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 11 kernel on an arbitrary base scenario (Saroiu
/// capacities; `b₀` read from the swarm section's TFT slots).
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let b0 = scenario.swarm.as_ref().map_or(3, |s| s.tft_slots as u32);
    let model = EfficiencyModel {
        b0,
        d: scenario.topology.mean_degree(scenario.peers),
        n: scenario.peers,
    };
    let cdf = scenario
        .capacity
        .bandwidth_cdf()
        .expect("fig11 requires a Saroiu capacity model");
    let curve = efficiency_curve(&model, &cdf);

    let mut result = ExperimentResult::new(
        "fig11",
        "Figure 11: expected D/U ratio vs upload bandwidth per slot",
        format!("b0={}, d={}, n={}", model.b0, model.d, model.n),
        vec![
            "slot_bandwidth_kbps".into(),
            "du_ratio".into(),
            "du_ratio_offered".into(),
            "expected_mates".into(),
        ],
    );
    // Emit worst-to-best so the x axis is increasing like the paper's.
    for pt in curve.iter().rev() {
        result.push_row(vec![
            pt.slot_bandwidth,
            pt.ratio,
            pt.ratio_offered,
            pt.expected_mates,
        ]);
    }

    let top_mean: f64 = curve[..curve.len() / 100]
        .iter()
        .map(|p| p.ratio)
        .sum::<f64>()
        / (curve.len() / 100) as f64;
    result.check(
        "best peers suffer low sharing ratios",
        top_mean < 1.0,
        format!("top-1% mean ratio {top_mean:.3}"),
    );
    let modem = mean_ratio_in_band(&curve, 13.0, 14.0).expect("modem band populated");
    result.check(
        "density-peak peers have ratio close to 1 (56k class)",
        (modem - 1.0).abs() < 0.25,
        format!("mean ratio {modem:.3}"),
    );
    let above_modem = mean_ratio_in_band(&curve, 14.5, 22.0).expect("band populated");
    result.check(
        "efficiency peak just above the 56k density peak",
        above_modem > modem,
        format!("above-peak {above_modem:.3} > in-peak {modem:.3}"),
    );
    let dsl = mean_ratio_in_band(&curve, 62.0, 66.0); // 256k DSL class slots
    if let Some(dsl) = dsl {
        let above_dsl = mean_ratio_in_band(&curve, 68.0, 95.0).expect("band populated");
        result.check(
            "efficiency peak just above the 256k density peak",
            above_dsl > dsl,
            format!("above-peak {above_dsl:.3} > in-peak {dsl:.3}"),
        );
    }
    let worst = &curve[curve.len() - 1];
    result.check(
        "lowest peers have high efficiency",
        worst.ratio > 1.3,
        format!("worst-peer ratio {:.3}", worst.ratio),
    );
    result.check(
        "lowest peers risk unmatched slots",
        worst.expected_mates < f64::from(model.b0) - 0.05,
        format!("expected mates {:.3} of {}", worst.expected_mates, model.b0),
    );
    result.note(
        "ratio = E[download] / (E[matched slots] x slot bandwidth); ratio_offered \
         divides by all b0 slots instead, discounting unmatched risk (see \
         strat-bandwidth docs). The paper's y axis corresponds to the former."
            .to_string(),
    );
    result.note(
        "Paper: 'it is tempting for an average peer to tweak its number of connections... \
         this leads to a Nash equilibrium where all peers have just one TFT slot' — the \
         argument for BitTorrent's 4-slot default."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 19,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        // x axis increasing.
        for w in result.rows.windows(2) {
            assert!(w[1][0] >= w[0][0]);
        }
    }
}
