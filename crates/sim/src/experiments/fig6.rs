//! Figure 6: influence of σ on the `N(6, σ²)` b-matching problem — the
//! phase transition.
//!
//! Paper observations: as soon as σ is big enough to produce heterogeneous
//! samples (σ ≈ 0.15) the mean cluster size explodes then stays almost
//! constant, while the Mean Max Offset *decreases* through the transition
//! before creeping back up: huge clusters, local collaborations —
//! stratification.

use strat_core::cluster;
use strat_scenario::{CapacityModel, Scenario};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 6 scenario: complete knowledge, `N(6, σ²)` capacities at
/// the post-transition σ = 0.2; the kernel sweeps σ through the phase
/// transition.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("fig6", if ctx.quick { 12_000 } else { 40_000 })
        .with_seed(ctx.seed)
        .with_capacity(CapacityModel::RoundedNormal {
            mean: 6.0,
            sigma: 0.2,
        })
}

/// Runs the Figure 6 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 6 kernel on an arbitrary base scenario (the scenario's
/// `b̄` anchors the sweep).
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let b_mean = match scenario.capacity {
        CapacityModel::RoundedNormal { mean, .. } => mean,
        _ => 6.0,
    };
    let sigmas = [
        0.0, 0.05, 0.1, 0.125, 0.15, 0.175, 0.2, 0.25, 0.3, 0.4, 0.5, 0.75, 1.0, 1.5, 2.0,
    ];
    let n = scenario.peers;
    let repetitions = if ctx.quick { 2 } else { 5 };

    let mut result = ExperimentResult::new(
        "fig6",
        "Figure 6: mean cluster size and MMO vs sigma for b ~ N(6, sigma^2)",
        format!("complete acceptance graph, n={n}, {repetitions} repetitions"),
        vec![
            "sigma".into(),
            "mean_cluster_size".into(),
            "mean_max_offset".into(),
        ],
    );

    let ranking = scenario.build_ranking(&mut common::rng(scenario.seed, 0x06));
    for (ci, &sigma) in sigmas.iter().enumerate() {
        let variant = scenario
            .clone()
            .with_capacity(CapacityModel::RoundedNormal {
                mean: b_mean,
                sigma,
            });
        let mut cluster_sum = 0.0;
        let mut mmo_sum = 0.0;
        for rep in 0..repetitions {
            let mut rng = common::rng(scenario.seed, 0x0600 + ((ci as u64) << 8) + rep as u64);
            let m = variant.stable_matching(&mut rng).expect("valid scenario");
            let stats = cluster::cluster_stats(&ranking, &m);
            cluster_sum += stats.mean_cluster_size;
            mmo_sum += stats.mmo;
        }
        result.push_row(vec![
            sigma,
            cluster_sum / repetitions as f64,
            mmo_sum / repetitions as f64,
        ]);
    }

    let rows = result.rows.clone();
    let col = move |s: f64, c: usize| {
        rows.iter()
            .find(|r| (r[0] - s).abs() < 1e-12)
            .map(|r| r[c])
            .expect("sigma sampled")
    };
    // n is generally not divisible by 7, so one truncated remainder cluster
    // shifts the sigma = 0 statistics by O(1/n).
    result.check(
        format!("sigma=0 reproduces constant {b_mean}-matching"),
        (col(0.0, 1) - (b_mean + 1.0)).abs() < 0.05
            && (col(0.0, 2) - cluster::mmo_constant_exact(b_mean as u32)).abs() < 0.01,
        format!("cluster {:.3}, MMO {:.4}", col(0.0, 1), col(0.0, 2)),
    );
    result.check(
        "cluster size explodes through sigma ~ 0.15",
        col(0.2, 1) > 20.0 * col(0.05, 1),
        format!(
            "cluster(0.05) {:.1} -> cluster(0.2) {:.1}",
            col(0.05, 1),
            col(0.2, 1)
        ),
    );
    result.check(
        "cluster size roughly plateaus after the transition",
        col(2.0, 1) < 50.0 * col(0.3, 1),
        format!(
            "cluster(0.3) {:.1} vs cluster(2.0) {:.1}",
            col(0.3, 1),
            col(2.0, 1)
        ),
    );
    result.check(
        "MMO decreases through the transition",
        col(0.2, 2) < col(0.0, 2),
        format!("MMO(0) {:.3} -> MMO(0.2) {:.3}", col(0.0, 2), col(0.2, 2)),
    );
    result.note(
        "Paper: 'As soon sigma is big enough to produce heterogeneous samples \
         (sigma ~ 0.15), the average connected component size explodes, then stays \
         almost constant... In contrast, as cluster size explodes, MMO decreases.'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_phase_transition() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 11,
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 15);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
