//! Figure 7: where the independence approximation errs — exact vs
//! Algorithm 2 for `n = 3`.
//!
//! Enumerating the 8 graphs on 3 peers yields the exact matching
//! probabilities `D(1,2) = p`, `D(1,3) = p(1−p)`, `D(2,3) = p(1−p)²`;
//! the independent model inflates `D(2,3)` by exactly `p³(1−p)`.

use strat_analytic::{exact, one_matching};
use strat_scenario::{Scenario, TopologyModel};

use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 7 scenario: the 3-peer, 1-matching system whose acceptance
/// edge probability the kernel sweeps.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("fig7", 3)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiEdgeProbability { p: 0.5 })
}

/// Runs the Figure 7 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 7 kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, _scenario: &Scenario) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "fig7",
        "Figure 7: exact vs independent-model matching probabilities, n = 3",
        "all 8 graphs enumerated per p".to_string(),
        vec![
            "p".into(),
            "exact_D12".into(),
            "exact_D13".into(),
            "exact_D23".into(),
            "approx_D23".into(),
            "error_D23".into(),
            "predicted_error_p3_1mp".into(),
        ],
    );

    let mut max_residual = 0.0f64;
    for k in 1..=19 {
        let p = k as f64 / 20.0;
        let exact_d = exact::exact_distribution(3, p, 1);
        let approx = one_matching::solve(3, p, &[1]);
        let approx_d23 = approx.row(1).expect("row 1 requested")[2];
        let error = approx_d23 - exact_d[1][2];
        let predicted = p.powi(3) * (1.0 - p);
        max_residual = max_residual.max((error - predicted).abs());
        result.push_row(vec![
            p,
            exact_d[0][1],
            exact_d[0][2],
            exact_d[1][2],
            approx_d23,
            error,
            predicted,
        ]);
    }

    result.check(
        "exact closed forms hold: D(1,2)=p, D(1,3)=p(1-p), D(2,3)=p(1-p)^2",
        result.rows.iter().all(|r| {
            let p = r[0];
            (r[1] - p).abs() < 1e-12
                && (r[2] - p * (1.0 - p)).abs() < 1e-12
                && (r[3] - p * (1.0 - p) * (1.0 - p)).abs() < 1e-12
        }),
        "all 19 p values".to_string(),
    );
    result.check(
        "approximation error is exactly p^3(1-p)",
        max_residual < 1e-12,
        format!("max |error - p^3(1-p)| = {max_residual:.2e}"),
    );
    result.note(
        "Paper Figure 7: 'Approximation error: for n = 3... Algorithm 2 leads to the same \
         except D(2,3) = D_exact(2,3) + p^3(1-p).'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_forms_verified() {
        let result = run(&ExperimentContext::default());
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        assert_eq!(result.rows.len(), 19);
    }
}
