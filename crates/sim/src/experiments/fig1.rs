//! Figure 1: convergence towards the stable state from the empty
//! configuration.
//!
//! Paper setup: peers labeled 1..n (label = rank), Erdős–Rényi `G(n, d)`
//! acceptance graphs, 1-matching, best-mate initiatives by a uniformly
//! random peer each step; disorder (distance to the stable configuration)
//! is plotted against *initiatives per peer* (base units) for
//! `(n, d) ∈ {(100, 50), (1000, 10), (1000, 50)}`.
//!
//! Paper observation: disorder quickly decreases; the stable configuration
//! is reached in less than `d` base units.

use strat_scenario::{Scenario, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 1 scenario: the headline `(n, d) = (1000, 50)` system; the
/// kernel derives the `(n/10, d)` and `(n, d/5)` companion curves.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    common::one_matching_scenario("fig1", 1000, 50.0).with_seed(ctx.seed)
}

/// Runs the Figure 1 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 1 kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    assert!(n >= 10, "fig1 scenario needs at least 10 peers, got {n}");
    let d = scenario.topology.mean_degree(n);
    let configs: &[(usize, f64)] = &[(n / 10, d), (n, d / 5.0), (n, d)];
    let units = 40usize;
    let repetitions = if ctx.quick { 2 } else { 8 };

    let mut result = ExperimentResult::new(
        "fig1",
        "Figure 1: convergence from C_empty (disorder vs initiatives per peer)",
        format!("1-matching, best-mate initiatives, {repetitions} runs averaged"),
        {
            let mut cols = vec!["initiatives_per_peer".to_string()];
            cols.extend(configs.iter().map(|(n, d)| format!("disorder_n{n}_d{d}")));
            cols
        },
    );

    // traces[c][t] = mean disorder of config c after t base units.
    let mut traces = vec![vec![0.0f64; units + 1]; configs.len()];
    for (c, &(n, d)) in configs.iter().enumerate() {
        let variant = scenario
            .clone()
            .with_peers(n)
            .with_topology(TopologyModel::ErdosRenyiMeanDegree { d });
        for rep in 0..repetitions {
            let mut rng = common::rng(scenario.seed, (c as u64) << 8 | rep as u64);
            let mut dynamics = variant.build_dynamics(&mut rng).expect("valid scenario");
            traces[c][0] += dynamics.disorder();
            for t in 1..=units {
                dynamics.run_base_unit(&mut rng);
                traces[c][t] += dynamics.disorder();
            }
        }
        for t in 0..=units {
            traces[c][t] /= repetitions as f64;
        }
    }

    for t in 0..=units {
        let mut row = vec![t as f64];
        row.extend(traces.iter().map(|tr| tr[t]));
        result.push_row(row);
    }

    // Shape criteria from the paper's text.
    for (c, &(n, d)) in configs.iter().enumerate() {
        let at_d = traces[c][(d as usize).min(units)];
        result.check(
            format!("n={n},d={d}: stable reached in < d base units"),
            at_d < 0.01,
            format!("disorder at t=d is {at_d:.5}"),
        );
        result.check(
            format!("n={n},d={d}: disorder decreases"),
            traces[c][units] < traces[c][0] * 0.05,
            format!("start {:.3}, end {:.5}", traces[c][0], traces[c][units]),
        );
    }
    // Convergence time scales with d (the paper's "< d base units" bound is
    // tight in d): at t = 5, the d = 10 system is already near-stable while
    // the d = 50 systems are still converging — exactly the ordering of the
    // paper's Figure 1 curves.
    let d10_at5 = traces[1][5];
    let d50_at5 = traces[2][5];
    result.check(
        "convergence time grows with d",
        d50_at5 > d10_at5,
        format!("disorder@5: d=50 {d50_at5:.4} > d=10 {d10_at5:.4}"),
    );
    // The two d = 50 curves (n = 100 vs n = 1000) behave alike: convergence
    // is governed by d, not by n.
    let gap = (traces[0][10] - traces[2][10]).abs();
    result.check(
        "convergence governed by d, not n",
        gap < 0.25,
        format!("|disorder@10(n=100) - disorder@10(n=1000)| = {gap:.4} at d=50"),
    );
    result.note(
        "Paper: 'In all simulations, the disorder quickly decreases, and the stable \
         configuration is reached in less than nd initiatives (that is d base units).'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 1,
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 41);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        // Disorder starts near 1 (C_empty vs near-perfect matching).
        assert!(result.rows[0][1] > 0.5);
    }
}
