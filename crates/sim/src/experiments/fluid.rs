//! Fluid-limit validation (Conjecture 1): `n·D(1, ⌊βn⌋) → d·e^{−βd}`.
//!
//! For several mean degrees `d`, the sup-error between the rescaled
//! Algorithm 2 solution for the best peer and the exponential fluid density
//! must shrink as `n` grows — the paper's scalability argument for
//! stratification.

use strat_analytic::fluid;
use strat_scenario::{Scenario, TopologyModel};

use crate::runner::{ExperimentContext, ExperimentResult};

/// The fluid-limit scenario: the largest 1-matching system of the sweep
/// at the paper's headline degree `d = 50`; the kernel shrinks `n` and
/// `d` through the convergence ladder.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let n = if ctx.quick { 2000 } else { 8000 };
    Scenario::new("fluid", n)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 50.0 })
}

/// Runs the fluid-limit validation on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the fluid-limit kernel on an arbitrary base scenario (its `n`
/// and `d` cap the sweep).
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let d_max = scenario.topology.mean_degree(scenario.peers);
    let ds: Vec<f64> = [5.0f64, 10.0, 20.0, 50.0]
        .into_iter()
        .filter(|&d| d <= d_max)
        .collect();
    let ns: Vec<usize> = [500usize, 2000, 8000]
        .into_iter()
        .filter(|&n| n <= scenario.peers)
        .collect();
    let beta_max = 0.5;

    let mut result = ExperimentResult::new(
        "fluid",
        "Conjecture 1: sup-error of n*D(1,.) against d*exp(-beta*d)",
        format!("beta <= {beta_max}, p = d/n"),
        {
            let mut cols = vec!["n".to_string()];
            cols.extend(ds.iter().map(|d| format!("sup_error_d{d}")));
            cols
        },
    );

    let mut errors = vec![Vec::new(); ds.len()];
    for &n in &ns {
        let mut row = vec![n as f64];
        for (k, &d) in ds.iter().enumerate() {
            let err = fluid::best_peer_fluid_error(n, d, beta_max);
            errors[k].push(err);
            row.push(err);
        }
        result.push_row(row);
    }

    for (k, &d) in ds.iter().enumerate() {
        let first = errors[k][0];
        let last = *errors[k].last().expect("at least one n");
        result.check(
            format!("d={d}: error shrinks with n"),
            last < first,
            format!("{first:.4} -> {last:.4}"),
        );
        result.check(
            format!("d={d}: relative error small at the largest n"),
            last / d < 0.12,
            format!("sup-error/d = {:.4}", last / d),
        );
    }
    result.note(
        "Paper §5.2: 'M_{0,d}(d beta) = d e^{-beta d} d beta' — the mate of the best \
         peer sits an exponential rank fraction below it with rate d; shape depends \
         only on d, never on n."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 29,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
