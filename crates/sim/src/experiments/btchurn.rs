//! BTCHURN (extension experiment): an open-membership swarm validated
//! against the BitTorrent population fluid model.
//!
//! The paper's §6 claims are about live swarms whose population turns
//! over; the session subsystem (`strat_bittorrent::session`) finally
//! simulates that regime — Poisson leecher arrivals, completion, a
//! lingering-seed period, departure. Xu's *Performance Modeling of
//! BitTorrent P2P File Sharing Networks* (arXiv 1311.1195) analyses
//! exactly this system through the deterministic fluid limit
//! ([`strat_analytic::fluid::BtFluidParams`]): with arrival rate `λ`,
//! per-peer service rate `μ` and promoted-seed departure rate `γ`, the
//! leecher/seed populations converge to
//!
//! ```text
//! x̄ = (λ/μ − λ/γ − s0)/η,    ȳ = λ/γ
//! ```
//!
//! This kernel sweeps **arrival rate × seed-leave probability**, runs each
//! cell to stationarity, and compares the measured steady-state
//! populations and download times against those closed forms — the
//! protocol simulator and the analytic oracle must agree to within 10 %
//! on the leecher population at every cell.
//!
//! Rows carry both the sampled population trajectories (with the fluid
//! trajectory alongside) and one steady-state summary row per cell
//! (`round = −1`).

use strat_analytic::fluid::BtFluidParams;
use strat_scenario::{
    ArrivalProcess, CapacityModel, DepartureRules, Scenario, SessionConfig, SwarmParams,
    TopologyModel,
};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The sweep cells `(arrivals per round, seed-leave probability)`.
fn sweep(quick: bool) -> Vec<(f64, f64)> {
    if quick {
        vec![(10.0, 0.25), (10.0, 0.4)]
    } else {
        vec![(6.0, 0.2), (6.0, 0.35), (12.0, 0.2), (12.0, 0.35)]
    }
}

/// Simulation horizon: `(warmup rounds, measurement rounds)`.
fn horizon(quick: bool) -> (u64, u64) {
    if quick {
        (120, 240)
    } else {
        (160, 280)
    }
}

/// Upload capacity of every peer (kbps) — constant, so the fluid model's
/// single service rate `μ` describes the swarm exactly.
const UPLOAD_KBPS: f64 = 400.0;
/// Original (permanent) seeds.
const SEEDS: usize = 2;

/// The fluid parameters a `(λ, γ)` cell maps to, given the preset's
/// file/round geometry: `μ = upload_kbit_per_round / file_kbit`, `η = 1`
/// (the Qiu–Srikant effectiveness argument for rarest-first), `θ = 0`.
fn fluid_params(scenario: &Scenario, lambda: f64, gamma: f64) -> BtFluidParams {
    let swarm = scenario
        .swarm
        .as_ref()
        .expect("btchurn has a swarm section");
    let file_kbit = swarm.piece_count as f64 * swarm.piece_size_kbit;
    BtFluidParams {
        lambda,
        mu: UPLOAD_KBPS * swarm.round_seconds / file_kbit,
        gamma,
        theta: 0.0,
        eta: 1.0,
        s0: SEEDS as f64,
    }
}

/// One sweep cell derived from the base scenario: `(λ, γ)` in the churn
/// section, the initial leecher pool set to the cell's predicted steady
/// state (fast stationarity).
fn cell_scenario(base: &Scenario, lambda: f64, gamma: f64) -> Scenario {
    let params = fluid_params(base, lambda, gamma);
    let steady = params.steady_state();
    let swarm = base.swarm.clone().expect("btchurn has a swarm section");
    let churn = swarm.churn.clone().expect("btchurn has a churn section");
    base.clone()
        .with_peers((steady.leechers.round() as usize).max(8))
        .with_swarm(SwarmParams {
            churn: Some(SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: lambda },
                departure: DepartureRules {
                    seed_leave_prob: gamma,
                    ..churn.departure
                },
                ..churn
            }),
            ..swarm
        })
}

/// The base scenario: constant 400 kbps capacities, `d = 20` overlay, a
/// 512 × 250 kbit file (`1/μ = 32` rounds), 2 permanent seeds, Poisson
/// arrivals of empty leechers, promoted seeds lingering at rate `γ`.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let (lambda, gamma) = sweep(ctx.quick)[0];
    let base = Scenario::new("btchurn", 8)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_capacity(CapacityModel::Constant { value: UPLOAD_KBPS })
        .with_swarm(SwarmParams {
            seeds: SEEDS,
            seed_upload_kbps: UPLOAD_KBPS,
            piece_count: 512,
            piece_size_kbit: 250.0,
            initial_completion: 0.5,
            fluid_content: false,
            seed_after_completion: true,
            swarm_seed: ctx.seed ^ 0xc4a9,
            churn: Some(SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: lambda },
                departure: DepartureRules {
                    leave_on_completion: 0.0,
                    seed_leave_prob: gamma,
                    seed_exodus_round: None,
                    abort_prob: 0.0,
                },
                arrival_upload_kbps: UPLOAD_KBPS,
                arrival_completion: 0.0,
                target_degree: 20,
                session_seed: ctx.seed ^ 0xc4a9,
                batched_wiring: false,
                peer_list_cap: None,
                compact_threshold: None,
            }),
            ..SwarmParams::default()
        });
    cell_scenario(&base, lambda, gamma)
}

/// Runs the churn sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the arrival-rate × seed-leave sweep derived from an arbitrary
/// base scenario (which must carry `swarm.churn`).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm or churn section.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let cells = sweep(ctx.quick);
    let (warmup, measure) = horizon(ctx.quick);
    let sample_every = 10u64;

    let mut result = ExperimentResult::new(
        "btchurn",
        "Open swarm: arrival x seed-leave sweep vs the fluid model",
        format!(
            "cells {cells:?}, {warmup}+{measure} rounds, 400 kbps peers, 1/mu = 32 rounds, \
             {SEEDS} permanent seeds"
        ),
        vec![
            "lambda".into(),
            "gamma".into(),
            "round".into(), // -1 marks the cell's steady-state summary row
            "leechers".into(),
            "seeds".into(),
            "fluid_leechers".into(),
            "fluid_seeds".into(),
        ],
    );

    let mut max_rel_err = 0.0f64;
    let mut seed_errs: Vec<f64> = Vec::new();
    let mut little_errs: Vec<f64> = Vec::new();
    let mut turnover_ok = true;
    let mut cohort_note = String::new();

    for &(lambda, gamma) in &cells {
        let cell = cell_scenario(scenario, lambda, gamma);
        let params = fluid_params(&cell, lambda, gamma);
        let steady = params.steady_state();
        let mut session = cell
            .build_session(&mut common::rng(cell.seed, 0xc4))
            .unwrap_or_else(|e| panic!("btchurn scenario: {e}"));

        // The fluid trajectory from the same initial condition (x0 at the
        // predicted steady state, no promoted seeds yet).
        let x0 = cell.peers as f64;
        let trajectory = params.trajectory(x0, 0.0, (warmup + measure) as f64, 1.0);

        let mut tail_leechers = 0.0f64;
        let mut tail_seeds = 0.0f64;
        for round in 0..warmup + measure {
            session.run_rounds(1);
            let pop = session.population();
            // Promoted seeds = seeding peers minus the permanent squad.
            let promoted = pop.seeding.saturating_sub(SEEDS) as f64;
            if round >= warmup {
                tail_leechers += pop.downloading as f64;
                tail_seeds += promoted;
            }
            if (round + 1).is_multiple_of(sample_every) {
                let (_, fx, fy) = trajectory[(round + 1) as usize];
                result.push_row(vec![
                    lambda,
                    gamma,
                    (round + 1) as f64,
                    pop.downloading as f64,
                    promoted,
                    fx,
                    fy,
                ]);
            }
        }
        let sim_x = tail_leechers / measure as f64;
        let sim_y = tail_seeds / measure as f64;
        result.push_row(vec![
            lambda,
            gamma,
            -1.0,
            sim_x,
            sim_y,
            steady.leechers,
            steady.seeds,
        ]);

        let rel_err = (sim_x - steady.leechers).abs() / steady.leechers;
        max_rel_err = max_rel_err.max(rel_err);
        // The discrete session observes a lingering seed for 1 + 1/gamma
        // sampled rounds exactly (the completion-observation pass plus the
        // geometric seed-leave draws), so Little's law for the promoted
        // pool reads lambda * (1 + 1/gamma) in round-sampled units.
        let seed_pred = lambda * (1.0 + 1.0 / gamma);
        seed_errs.push((sim_y - seed_pred).abs() / seed_pred);

        // Little's law self-consistency: mean download time of steady-state
        // arrivals vs x̄_sim / λ.
        let records: Vec<f64> = session
            .stats()
            .completion_records
            .iter()
            .filter(|&&(arrived, _)| arrived >= warmup / 2)
            .map(|&(arrived, completed)| (completed - arrived) as f64)
            .collect();
        if !records.is_empty() {
            let mean_dl = records.iter().sum::<f64>() / records.len() as f64;
            little_errs.push((mean_dl - sim_x / lambda).abs() / (sim_x / lambda));
        }

        let stats = session.stats();
        turnover_ok &= stats.arrivals > 0 && stats.departures > 0 && stats.completions > 0;
        if cohort_note.is_empty() {
            let cohorts = session.cohort_completions(40);
            let rendered: Vec<String> = cohorts
                .iter()
                .take(4)
                .map(|c| {
                    format!(
                        "[{}..): {} done, {:.1} rounds",
                        c.window_start, c.completed, c.mean_download_rounds
                    )
                })
                .collect();
            cohort_note = format!(
                "Per-cohort completion times (lambda = {lambda}, gamma = {gamma}, 40-round waves): {}",
                rendered.join("; ")
            );
        }
    }

    result.check(
        "steady-state leecher population within 10% of the fluid prediction at every cell",
        max_rel_err <= 0.10,
        format!("worst relative error {:.3}", max_rel_err),
    );
    result.check(
        "steady-state promoted-seed population tracks lambda * (1 + 1/gamma)",
        seed_errs.iter().all(|&e| e <= 0.15),
        format!("relative errors {seed_errs:?}"),
    );
    result.check(
        "download times satisfy Little's law against the measured pool",
        !little_errs.is_empty() && little_errs.iter().all(|&e| e <= 0.2),
        format!("relative errors {little_errs:?}"),
    );
    result.check(
        "population turns over (arrivals, completions and departures all happen)",
        turnover_ok,
        "checked at every cell".to_string(),
    );

    result.note(cohort_note);
    result.note(
        "Open-membership regime: Poisson arrivals of empty leechers, completion, a \
         geometric lingering-seed period, departure. The measured stationary populations \
         reproduce the fluid model's x-bar = (lambda/mu - lambda/gamma - s0)/eta and \
         y-bar = lambda/gamma closed forms — the session subsystem is quantitatively \
         faithful to the regime Xu's model describes."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
