//! MMO closed form (§4.2): `MMO(b₀) = (1/(b₀+1)) Σ max(i, b₀−i) → 3b₀/4`.

use strat_core::{cluster, GlobalRanking};
use strat_scenario::{CapacityModel, Scenario};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The MMO scenario: complete knowledge, constant capacities (the sweep's
/// largest `b₀ = 64` point).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("mmo", 65 * 64)
        .with_seed(ctx.seed)
        .with_capacity(CapacityModel::Constant { value: 64.0 })
}

/// Runs the MMO formula sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the MMO kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "mmo",
        "Mean Max Offset of constant b0-matching: measured, closed form, 3b0/4 limit",
        "complete acceptance graph".to_string(),
        vec![
            "b0".into(),
            "measured".into(),
            "closed_form".into(),
            "limit_3b0_over_4".into(),
            "ratio_to_limit".into(),
        ],
    );

    let mut rng = common::rng(scenario.seed, 0x30);
    for b0 in [2u32, 3, 4, 5, 6, 7, 10, 16, 32, 64] {
        let n = (b0 as usize + 1) * 64;
        let variant = scenario
            .clone()
            .with_peers(n)
            .with_capacity(CapacityModel::Constant {
                value: f64::from(b0),
            });
        let ranking = GlobalRanking::identity(n);
        let m = variant.stable_matching(&mut rng).expect("valid scenario");
        let measured = cluster::mean_max_offset(&ranking, &m);
        let exact = cluster::mmo_constant_exact(b0);
        let limit = cluster::mmo_constant_limit(b0);
        result.push_row(vec![
            f64::from(b0),
            measured,
            exact,
            limit,
            measured / limit,
        ]);
    }

    result.check(
        "measured MMO equals the closed form",
        result.rows.iter().all(|r| (r[1] - r[2]).abs() < 1e-9),
        "all b0 values".to_string(),
    );
    let last = result.rows.last().expect("rows present");
    result.check(
        "MMO/(3b0/4) -> 1",
        (last[4] - 1.0).abs() < 0.02,
        format!("ratio at b0={} is {:.4}", last[0], last[4]),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_sweep_passes() {
        let result = run(&ExperimentContext::default());
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
