//! MMO closed form (§4.2): `MMO(b₀) = (1/(b₀+1)) Σ max(i, b₀−i) → 3b₀/4`.

use strat_core::{cluster, stable_configuration_complete, Capacities, GlobalRanking};

use crate::runner::{ExperimentContext, ExperimentResult};

/// Runs the MMO formula sweep.
#[must_use]
pub fn run(_ctx: &ExperimentContext) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "mmo",
        "Mean Max Offset of constant b0-matching: measured, closed form, 3b0/4 limit",
        "complete acceptance graph".to_string(),
        vec![
            "b0".into(),
            "measured".into(),
            "closed_form".into(),
            "limit_3b0_over_4".into(),
            "ratio_to_limit".into(),
        ],
    );

    for b0 in [2u32, 3, 4, 5, 6, 7, 10, 16, 32, 64] {
        let n = (b0 as usize + 1) * 64;
        let ranking = GlobalRanking::identity(n);
        let caps = Capacities::constant(n, b0);
        let m = stable_configuration_complete(&ranking, &caps).expect("sizes match");
        let measured = cluster::mean_max_offset(&ranking, &m);
        let exact = cluster::mmo_constant_exact(b0);
        let limit = cluster::mmo_constant_limit(b0);
        result.push_row(vec![
            f64::from(b0),
            measured,
            exact,
            limit,
            measured / limit,
        ]);
    }

    result.check(
        "measured MMO equals the closed form",
        result.rows.iter().all(|r| (r[1] - r[2]).abs() < 1e-9),
        "all b0 values".to_string(),
    );
    let last = result.rows.last().expect("rows present");
    result.check(
        "MMO/(3b0/4) -> 1",
        (last[4] - 1.0).abs() < 0.02,
        format!("ratio at b0={} is {:.4}", last[0], last[4]),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_sweep_passes() {
        let result = run(&ExperimentContext::default());
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
