//! Figure 2: atomic alteration — remove one peer from the stable state and
//! watch reconvergence.
//!
//! Paper setup: 1000 peers, 1-matching, 10 neighbours per peer. Starting
//! from the stable configuration, remove peer 1 / 100 / 300 / 600 (1-based)
//! and track disorder towards the *new* stable configuration.
//!
//! Paper observations: convergence takes less than `d` base units, disorder
//! stays small, and — the domino effect — removing a good peer generally
//! induces more disorder than removing a bad one.

use strat_graph::NodeId;
use strat_scenario::Scenario;

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 2 scenario: the paper's `n = 1000`, `d = 10` system.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    common::one_matching_scenario("fig2", 1000, 10.0).with_seed(ctx.seed)
}

/// Runs the Figure 2 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 2 kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    assert!(n >= 10, "fig2 scenario needs at least 10 peers, got {n}");
    let d = scenario.topology.mean_degree(n);
    // Paper's removed peers are the 1-based labels 1/100/300/600; ours are
    // 0-based ranks, scaled to the scenario's population.
    let removals = [0usize, n / 10 - 1, 3 * n / 10 - 1, 6 * n / 10 - 1];
    let units = 10usize;
    let repetitions = if ctx.quick { 3 } else { 30 };

    let mut result = ExperimentResult::new(
        "fig2",
        "Figure 2: disorder after removing one peer from the stable state",
        format!("n={n}, d={d}, 1-matching, best-mate initiatives, {repetitions} runs averaged"),
        {
            let mut cols = vec!["initiatives_per_peer".to_string()];
            cols.extend(
                removals
                    .iter()
                    .map(|r| format!("disorder_remove_peer{}", r + 1)),
            );
            cols
        },
    );

    let mut traces = vec![vec![0.0f64; units + 1]; removals.len()];
    let mut peak = vec![0.0f64; removals.len()];
    for (c, &removed) in removals.iter().enumerate() {
        for rep in 0..repetitions {
            let mut rng = common::rng(scenario.seed, 0x0200 + ((c as u64) << 8) + rep as u64);
            // Jump straight to the stable configuration (Algorithm 1), then
            // perturb.
            let mut dynamics = scenario
                .build_dynamics_at_stable(&mut rng)
                .expect("valid scenario");
            dynamics.remove_peer(NodeId::new(removed));
            let d0 = dynamics.disorder();
            traces[c][0] += d0;
            peak[c] = peak[c].max(d0);
            for t in 1..=units {
                dynamics.run_base_unit(&mut rng);
                let dis = dynamics.disorder();
                traces[c][t] += dis;
                peak[c] = peak[c].max(dis);
            }
        }
        for t in 0..=units {
            traces[c][t] /= repetitions as f64;
        }
    }

    for t in 0..=units {
        let mut row = vec![t as f64];
        row.extend(traces.iter().map(|tr| tr[t]));
        result.push_row(row);
    }

    for (c, &removed) in removals.iter().enumerate() {
        result.check(
            format!("peer {}: disorder stays small", removed + 1),
            peak[c] < 0.05,
            format!("peak disorder {:.5}", peak[c]),
        );
        result.check(
            format!("peer {}: reconverges within d base units", removed + 1),
            traces[c][units] < 0.002,
            format!("disorder at t={units} is {:.6}", traces[c][units]),
        );
    }
    // Domino effect: integrated disorder decreases with the removed peer's
    // rank (better peers hurt more).
    let integrated: Vec<f64> = traces.iter().map(|tr| tr.iter().sum::<f64>()).collect();
    result.check(
        "domino effect: removing better peers causes more disorder",
        integrated[0] > integrated[3],
        format!(
            "integrated disorder: peer1 {:.4} vs peer600 {:.4}",
            integrated[0], integrated[3]
        ),
    );
    result.note(
        "Paper: 'due to a domino effect, removing a good peer generally induces more \
         disorder than removing a bad peer.'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 3,
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 11);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
