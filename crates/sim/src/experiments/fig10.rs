//! Figure 10: the upstream-bandwidth CDF (Saroiu-style synthetic preset).
//!
//! Prints the control points and a percentile table of the synthetic
//! distribution substituted for the Saroiu et al. Gnutella measurement
//! (substitution rationale in DESIGN.md).

use strat_scenario::{CapacityModel, Scenario};

use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 10 scenario: any population marked by the Saroiu CDF (the
/// kernel reports the distribution itself).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("fig10", 4000)
        .with_seed(ctx.seed)
        .with_capacity(CapacityModel::SaroiuByRank)
}

/// Runs the Figure 10 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 10 kernel on an arbitrary base scenario (which must
/// use a Saroiu capacity model).
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let cdf = scenario
        .capacity
        .bandwidth_cdf()
        .expect("fig10 requires a Saroiu capacity model");

    let mut result = ExperimentResult::new(
        "fig10",
        "Figure 10: upstream bandwidth CDF (synthetic Saroiu et al. stand-in)",
        "piecewise log-linear, 10 kbps - 100 Mbps".to_string(),
        vec!["upstream_kbps".into(), "percent_of_hosts".into()],
    );
    for pct in 1..=100 {
        let u = pct as f64 / 100.0;
        result.push_row(vec![cdf.quantile(u), pct as f64]);
    }

    result.check(
        "wide distribution spanning nearly four decades",
        cdf.quantile(0.99) / cdf.quantile(0.01) > 1000.0,
        format!(
            "1% at {:.0} kbps, 99% at {:.0} kbps",
            cdf.quantile(0.01),
            cdf.quantile(0.99)
        ),
    );
    let modem_share = cdf.cdf(64.0) - cdf.cdf(40.0);
    result.check(
        "a large host share concentrates at the modem class",
        modem_share > 0.1,
        format!(
            "{:.1}% of hosts between 40 and 64 kbps",
            100.0 * modem_share
        ),
    );
    let dsl_share = cdf.cdf(600.0) - cdf.cdf(100.0);
    result.check(
        "DSL classes hold the central mass",
        dsl_share > 0.3,
        format!(
            "{:.1}% of hosts between 100 and 600 kbps",
            100.0 * dsl_share
        ),
    );
    result.note(
        "Paper: 'One can observe a wide distribution of bandwidths (just like in \
         Orwell's Animal Farm, all peers are equal but some peers are more equal than \
         others).'"
            .to_string(),
    );
    for (bw, frac) in cdf.control_points() {
        result.note(format!(
            "control point: {bw:.0} kbps -> {:.0}%",
            frac * 100.0
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_monotone() {
        let result = run(&ExperimentContext::default());
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        for w in result.rows.windows(2) {
            assert!(w[1][0] >= w[0][0]);
        }
    }
}
