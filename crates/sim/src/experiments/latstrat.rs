//! LATSTRAT (paper §7 / Legout et al., cs/0703107): cluster formation
//! under latency preferences vs rank stratification, at dynamics scale.
//!
//! The paper's §7 extension and the clustering results of Legout et al.
//! observe that *distance-based* preferences make peers stratify into
//! spatial **clusters** rather than rank strata. Until the engine
//! unification this comparison only existed as a static fixpoint study
//! (`ext1`, full-scan sweeps at n ≤ 600); this kernel runs the **same
//! initiative process** — random scheduler, best-mate scans, incremental
//! thresholds and dirty sets — on both preference systems through the
//! scenario layer's generic-engine path, and records the full convergence
//! profile:
//!
//! * the **disorder trajectory** of each arm (distance to its memoized
//!   instant stable configuration, in the metric native to each arm);
//! * the mean **mate latency distance** and mean **mate rank offset** per
//!   base unit, measured in a shared latency embedding;
//! * the number of collaboration **clusters** (non-singleton components of
//!   the matching) as they crystallize.
//!
//! Expected shape: the latency arm's mates end up *spatially* local (small
//! distances, rank-blind), the ranked arm's mates end up *rank*-local
//! (small offsets, distance-blind), and both disorder trajectories
//! collapse towards 0 — the generic engine converges like the ranked one.

use strat_graph::components::Components;
use strat_scenario::{CapacityModel, PreferenceModel, Scenario, ScenarioDynamics, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// Per-arm, per-base-unit measurements.
#[derive(Clone, Copy, Default)]
struct ArmSample {
    disorder: f64,
    mate_dist: f64,
    rank_offset: f64,
    clusters: f64,
}

fn measure(dynamics: &ScenarioDynamics, positions: &[f64]) -> ArmSample {
    let m = dynamics.matching();
    let mut dist = 0.0f64;
    let mut offset = 0.0f64;
    let mut count = 0.0f64;
    for v in 0..m.node_count() {
        let v_id = strat_graph::NodeId::new(v);
        for &w in m.mates(v_id) {
            dist += (positions[v] - positions[w.index()]).abs();
            offset += (v as f64 - w.index() as f64).abs();
            count += 1.0;
        }
    }
    let clusters = Components::of(&m.to_graph())
        .sizes()
        .iter()
        .filter(|&&s| s >= 2)
        .count();
    ArmSample {
        disorder: dynamics.disorder_general(),
        mate_dist: dist / count.max(1.0),
        rank_offset: offset / count.max(1.0),
        clusters: clusters as f64,
    }
}

/// The LATSTRAT scenario: a 2-matching `G(n, 16)` system under pure
/// latency preferences in a `[0, 1000)` space (the kernel derives the
/// ranked twin itself).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let n = if ctx.quick { 240 } else { 1200 };
    Scenario::new("latstrat", n)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 16.0 })
        .with_capacity(CapacityModel::Constant { value: 2.0 })
        .with_preference(PreferenceModel::Latency { span: 1000.0 })
}

/// Runs the latency-clustering comparison on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the latency-clustering kernel on an arbitrary base scenario. The
/// scenario's preference model provides the latency arm (a ranked-only
/// scenario falls back to the preset's `[0, 1000)` embedding); the ranked
/// twin swaps in `GlobalRank` on the same topology, capacities and seed.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    let d = scenario.topology.mean_degree(n);
    let lat_pref = if scenario.preference.is_ranked() {
        PreferenceModel::Latency { span: 1000.0 }
    } else {
        scenario.preference.clone()
    };
    let lat_variant = scenario.clone().with_preference(lat_pref);
    let units = 24usize;
    let settle_cap = 200usize;
    let repetitions = if ctx.quick { 2 } else { 6 };

    let mut result = ExperimentResult::new(
        "latstrat",
        "LATSTRAT: latency-cluster formation vs rank stratification (generic engine)",
        format!(
            "n={n}, d={d}, 2-matching, best-mate initiatives, {repetitions} runs averaged; \
             both arms share topology, capacities and latency embedding"
        ),
        vec![
            "initiatives_per_peer".into(),
            "disorder_latency".into(),
            "disorder_ranked".into(),
            "mate_distance_latency".into(),
            "mate_distance_ranked".into(),
            "rank_offset_latency".into(),
            "rank_offset_ranked".into(),
            "clusters_latency".into(),
            "clusters_ranked".into(),
        ],
    );

    // traces[t] = averaged (latency arm, ranked arm) samples after t units.
    let mut traces = vec![[ArmSample::default(); 2]; units + 1];
    let mut stable_runs = [0usize; 2];
    for rep in 0..repetitions {
        let stream = 0x1a70 + rep as u64;
        // Twin stream re-derives the shared substrate for measurement: the
        // build consumes topology → preference in a documented order, so
        // replaying it yields the exact latency embedding the latency arm
        // was built with (the ranked arm shares the topology draws, hence
        // the graph).
        let mut twin = common::rng(scenario.seed, stream);
        let _ = lat_variant.build_graph(&mut twin).expect("valid scenario");
        let positions = lat_variant
            .preference
            .latency_positions(n, &mut twin)
            .expect("latency arm has an embedding");

        // The latency arm builds first; the ranked twin then takes the
        // latency arm's *materialized* capacities as an explicit list, so
        // the arms share capacities exactly even under stochastic capacity
        // models (whose draws would otherwise land at different stream
        // offsets — the latency arm consumes n position draws first). The
        // twin's topology draws come first in its own stream, so the graph
        // is shared too.
        let mut lat_rng = common::rng(scenario.seed, stream);
        let mut lat_dynamics = lat_variant
            .build_dynamics(&mut lat_rng)
            .expect("valid scenario");
        let ranked_variant = scenario
            .clone()
            .with_preference(PreferenceModel::GlobalRank)
            .with_capacity(CapacityModel::Explicit {
                values: lat_dynamics
                    .capacities()
                    .as_slice()
                    .iter()
                    .map(|&b| f64::from(b))
                    .collect(),
            });
        let mut rank_rng = common::rng(scenario.seed, stream);
        let mut ranked_dynamics = ranked_variant
            .build_dynamics(&mut rank_rng)
            .expect("valid scenario");

        for (arm, dynamics, rng) in [
            (0usize, &mut lat_dynamics, &mut lat_rng),
            (1usize, &mut ranked_dynamics, &mut rank_rng),
        ] {
            let sample = measure(dynamics, &positions);
            add(&mut traces[0][arm], sample, repetitions);
            for t in 1..=units {
                dynamics.run_base_unit(rng);
                let sample = measure(dynamics, &positions);
                add(&mut traces[t][arm], sample, repetitions);
            }
            // Convergence epilogue (not part of the recorded trajectory):
            // both engines must reach a stable configuration shortly after
            // the window.
            let mut extra = 0usize;
            while !dynamics.is_stable() && extra < settle_cap {
                dynamics.run_base_unit(rng);
                extra += 1;
            }
            if dynamics.is_stable() {
                stable_runs[arm] += 1;
            }
        }
    }

    for (t, row) in traces.iter().enumerate() {
        result.push_row(vec![
            t as f64,
            row[0].disorder,
            row[1].disorder,
            row[0].mate_dist,
            row[1].mate_dist,
            row[0].rank_offset,
            row[1].rank_offset,
            row[0].clusters,
            row[1].clusters,
        ]);
    }

    let first = &traces[1];
    let last = &traces[units];
    result.check(
        "latency preferences cluster by distance",
        last[0].mate_dist < 0.5 * last[1].mate_dist,
        format!(
            "final mate distance: latency {:.1} vs ranked {:.1}",
            last[0].mate_dist, last[1].mate_dist
        ),
    );
    result.check(
        "rank preferences stratify by rank",
        last[1].rank_offset < 0.5 * last[0].rank_offset,
        format!(
            "final mate rank offset: ranked {:.1} vs latency {:.1}",
            last[1].rank_offset, last[0].rank_offset
        ),
    );
    result.check(
        "disorder collapses on both arms",
        last[0].disorder < 0.25 * first[0].disorder && last[1].disorder < 0.25 * first[1].disorder,
        format!(
            "disorder t=1 → t={units}: latency {:.3} → {:.3}, ranked {:.3} → {:.3}",
            first[0].disorder, last[0].disorder, first[1].disorder, last[1].disorder
        ),
    );
    result.check(
        "both engines reach a stable configuration",
        stable_runs[0] == repetitions && stable_runs[1] == repetitions,
        format!(
            "stable runs: latency {}/{repetitions}, ranked {}/{repetitions}",
            stable_runs[0], stable_runs[1]
        ),
    );
    result.check(
        "collaborations crystallize into many clusters on both arms",
        last[0].clusters > n as f64 / 40.0 && last[1].clusters > n as f64 / 40.0,
        format!(
            "final clusters: latency {:.0}, ranked {:.0} (n = {n})",
            last[0].clusters, last[1].clusters
        ),
    );
    result.note(
        "Paper §7 proposes 'a symmetric ranking such as latency'; Legout et al. \
         (cs/0703107) observe clustering of peers with similar characteristics. Under \
         the unified engine the latency arm runs the very machinery the ranked proofs \
         target — same thresholds, dirty sets and churn support — so the cluster-vs- \
         strata contrast is measured on one initiative process, not two simulators."
            .to_string(),
    );
    result
}

fn add(acc: &mut ArmSample, sample: ArmSample, repetitions: usize) {
    let w = 1.0 / repetitions as f64;
    acc.disorder += w * sample.disorder;
    acc.mate_dist += w * sample.mate_dist;
    acc.rank_offset += w * sample.rank_offset;
    acc.clusters += w * sample.clusters;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 43,
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 25);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        // The two arms genuinely differ from the first base unit on.
        assert!(result.rows[1][3] != result.rows[1][4]);
    }
}
