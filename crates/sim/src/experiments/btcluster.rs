//! BTCLUSTER (validation experiment): Tit-for-Tat unchokes cluster by
//! bandwidth class — Legout, Liogkas, Lian & Zhang's *Clustering and
//! Sharing Incentives in BitTorrent Systems* (SIGMETRICS 2007).
//!
//! Legout et al. instrumented live swarms with two or three upload
//! classes and found that TFT's rate-ranked unchokes sort peers into
//! same-class cliques: the fraction of regular (TFT) unchokes landing on
//! a same-class partner rises far above the class-blind expectation, and
//! the effect disappears when the choking algorithm is replaced by
//! uniformly random unchokes. That observation is the microscopic face of
//! the paper's stratification theorem (§6): rate-ranked b-matching pairs
//! peers of adjacent bandwidth rank, so coarse bandwidth classes become
//! clusters.
//!
//! This kernel sweeps the **class-speed spread** `u_fast / u_slow` over a
//! two-class fluid swarm and measures, with a [`ClusterObserver`] tap on
//! the unmodified round engine, the same-class fraction of TFT unchokes
//! against the class-blind baseline. A twin swarm per spread runs with
//! choking disabled (`tft_slots = 0`, one optimistic slot — uniformly
//! random unchokes) as the control: its same-class fraction must collapse
//! back to the baseline.
//!
//! Rows: one per spread with the choked affinity, the baseline, the
//! excess, and the random-unchoke control affinity.

use strat_bittorrent::observer::{ClusterObserver, UNTRACKED_CLASS};
use strat_scenario::{CapacityModel, Scenario, SwarmParams, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The class-speed spreads `u_fast / u_slow` swept.
fn spreads(quick: bool) -> Vec<f64> {
    if quick {
        vec![2.0, 8.0]
    } else {
        vec![1.0, 2.0, 4.0, 8.0]
    }
}

/// Simulation horizon: `(warmup rounds, measured rounds)`. The warmup
/// runs unobserved (TFT partnerships need a few rechoke periods to lock
/// in); only the measured tail feeds the affinity estimate.
fn horizon(quick: bool) -> (u64, u64) {
    if quick {
        (40, 80)
    } else {
        (60, 160)
    }
}

/// Leechers per swarm (split evenly into the two classes).
fn leechers(quick: bool) -> usize {
    if quick {
        60
    } else {
        120
    }
}

/// Slow-class upload capacity (kbps); the fast class uploads
/// `spread × SLOW_KBPS`.
const SLOW_KBPS: f64 = 400.0;
/// Permanent seeds (untracked by the affinity metric).
const SEEDS: usize = 2;

/// Per-slot class labels for a swarm built from [`cell_scenario`]: slow
/// leechers are class 0, fast leechers class 1, seeds untracked.
fn class_labels(n: usize) -> Vec<u32> {
    let half = n / 2;
    let mut classes = vec![0u32; half];
    classes.extend(vec![1u32; n - half]);
    classes.extend(vec![UNTRACKED_CLASS; SEEDS]);
    classes
}

/// One sweep cell: the base scenario with explicit two-class capacities
/// (first half slow, second half `spread ×` faster).
fn cell_scenario(base: &Scenario, spread: f64) -> Scenario {
    let n = base.peers;
    let half = n / 2;
    let mut values = vec![SLOW_KBPS; half];
    values.extend(vec![SLOW_KBPS * spread; n - half]);
    base.clone()
        .with_capacity(CapacityModel::Explicit { values })
}

/// The random-unchoke twin of a cell: choking disabled, every unchoke an
/// optimistic (uniformly random) one. Same capacities, topology and
/// seeds — only the slot policy differs.
fn random_twin(cell: &Scenario) -> Scenario {
    let swarm = cell.swarm.clone().expect("btcluster has a swarm section");
    cell.clone().with_swarm(SwarmParams {
        tft_slots: 0,
        optimistic_slots: 1,
        ..swarm
    })
}

/// The base scenario: a closed two-class fluid swarm (steady-state §6
/// setting — no completions, pure rate dynamics), `d = 20` overlay,
/// standard 3 TFT + 1 optimistic slots.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let base = Scenario::new("btcluster", leechers(ctx.quick))
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_swarm(SwarmParams {
            seeds: SEEDS,
            seed_upload_kbps: 2.0 * SLOW_KBPS,
            fluid_content: true,
            swarm_seed: ctx.seed ^ 0xc15e,
            ..SwarmParams::default()
        });
    cell_scenario(&base, spreads(ctx.quick)[0])
}

/// Runs the clustering sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the class-spread sweep derived from an arbitrary base scenario
/// (which must carry a swarm section).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm section or an affinity estimate
/// (no unchokes observed).
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let sweep = spreads(ctx.quick);
    let (warmup, measure) = horizon(ctx.quick);

    let mut result = ExperimentResult::new(
        "btcluster",
        "TFT unchokes cluster by bandwidth class (Legout et al.)",
        format!(
            "spreads {sweep:?}, {} leechers in 2 classes, slow {SLOW_KBPS} kbps, \
             {warmup}+{measure} rounds, random-unchoke control twin",
            scenario.peers
        ),
        vec![
            "spread".into(),
            "affinity".into(),
            "baseline".into(),
            "excess".into(),
            "random_affinity".into(),
            "random_baseline".into(),
        ],
    );

    let mut affinities: Vec<f64> = Vec::new();
    let mut baselines: Vec<f64> = Vec::new();
    let mut random_gaps: Vec<f64> = Vec::new();
    let mut control_gap = f64::NAN;

    for &spread in &sweep {
        let cell = cell_scenario(scenario, spread);
        let classes = class_labels(cell.peers);

        // Choked swarm: warm up unobserved, then measure with the tap.
        let mut swarm = cell
            .build_swarm(&mut common::rng(cell.seed, 0xc1))
            .unwrap_or_else(|e| panic!("btcluster scenario: {e}"));
        swarm.run_rounds(warmup);
        let obs = ClusterObserver::new(classes.clone());
        swarm.run_rounds_with(measure, &obs);
        let affinity = obs
            .tft_affinity()
            .expect("choked swarm issues TFT unchokes");

        // Random-unchoke twin: same capacities, choking disabled.
        let twin = random_twin(&cell);
        let mut rand_swarm = twin
            .build_swarm(&mut common::rng(twin.seed, 0xc1))
            .unwrap_or_else(|e| panic!("btcluster twin: {e}"));
        rand_swarm.run_rounds(warmup);
        let rand_obs = ClusterObserver::new(classes);
        rand_swarm.run_rounds_with(measure, &rand_obs);
        let random = rand_obs
            .optimistic_affinity()
            .expect("random twin issues optimistic unchokes");

        result.push_row(vec![
            spread,
            affinity.same_fraction,
            affinity.baseline,
            affinity.excess(),
            random.same_fraction,
            random.baseline,
        ]);

        affinities.push(affinity.same_fraction);
        baselines.push(affinity.baseline);
        random_gaps.push((random.same_fraction - random.baseline).abs());
        if spread == 1.0 {
            control_gap = (affinity.same_fraction - affinity.baseline).abs();
        }
    }

    let monotone = affinities.windows(2).all(|w| w[1] >= w[0] - 0.03);
    result.check(
        "same-class TFT affinity is monotone non-decreasing in the class spread",
        monotone,
        format!("affinities {affinities:?}"),
    );
    let last = affinities.len() - 1;
    result.check(
        "at the widest spread, TFT affinity clears the class-blind baseline",
        affinities[last] > baselines[last] + 0.10,
        format!(
            "affinity {:.3} vs baseline {:.3} at spread {}",
            affinities[last], baselines[last], sweep[last]
        ),
    );
    result.check(
        "random unchoking collapses the affinity to the baseline at every spread",
        random_gaps.iter().all(|&g| g <= 0.06),
        format!("|affinity - baseline| gaps {random_gaps:?}"),
    );
    if control_gap.is_finite() {
        result.check(
            "at spread 1 (identical classes) the choked affinity sits at the baseline",
            control_gap <= 0.06,
            format!("gap {control_gap:.3}"),
        );
    }

    result.note(
        "Legout et al.'s clustering effect, in vivo: rate-ranked TFT unchokes \
         concentrate on same-bandwidth-class partners as the class spread grows, \
         while the uniformly random (optimistic-only) control stays at the \
         class-blind expectation. Clustering is the coarse-grained signature of \
         the paper's stratification theorem."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
