//! BT1 (extension experiment): the paper's §6 claims observed in the
//! protocol simulator rather than the abstract model.
//!
//! A fluid-content swarm (content never bottlenecks — §6's post-flash-crowd
//! assumption) with upload capacities drawn from the Figure 10 bandwidth
//! distribution. We track:
//!
//! * stratification: the mean upload-rank offset of reciprocated TFT pairs
//!   shrinking over time;
//! * the share-ratio structure of Figure 11: fastest peers below 1, slowest
//!   peers above 1.

use strat_bittorrent::metrics;
use strat_scenario::{BehaviorMix, CapacityModel, Scenario, SwarmParams, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The BT1 scenario: a fluid-content swarm with Figure 10 upload
/// capacities in shuffled order (peer index carries no rank info), the
/// reference client's 3 TFT + 1 optimistic slots, and 2 fast seeds.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let leechers = if ctx.quick { 120 } else { 400 };
    Scenario::new("bt1", leechers)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_capacity(CapacityModel::SaroiuShuffled {
            shuffle_seed: ctx.seed ^ 0x5455,
        })
        .with_swarm(SwarmParams {
            seeds: 2,
            seed_upload_kbps: 1000.0,
            tft_slots: 3,
            optimistic_slots: 1,
            fluid_content: true,
            swarm_seed: ctx.seed ^ 0xb7,
            behavior: BehaviorMix::compliant(),
            ..SwarmParams::default()
        })
}

/// Runs the BT swarm validation on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the BT swarm validation kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let leechers = scenario.peers;
    let rounds = if ctx.quick { 80u64 } else { 240 };
    let seeds = scenario.swarm.as_ref().map_or(2, |s| s.seeds);

    let mut swarm = scenario
        .build_swarm(&mut common::rng(scenario.seed, 0xb1))
        .unwrap_or_else(|e| panic!("bt1 scenario: {e}"));
    let mut result = ExperimentResult::new(
        "bt1",
        "BT swarm: TFT stratification and share ratios (section 6 in vivo)",
        format!("{leechers} leechers + {seeds} seeds, fluid content, {rounds} rounds"),
        vec![
            "round".into(),
            "reciprocal_pairs".into(),
            "mean_rank_offset".into(),
            "normalized_offset".into(),
        ],
    );

    let mut early_offset = None;
    for r in 0..rounds {
        swarm.round();
        if r % 5 == 4 || r == 1 {
            let snap = metrics::stratification_snapshot(&swarm);
            if let (Some(off), Some(norm)) = (snap.mean_rank_offset, snap.normalized_offset) {
                if early_offset.is_none() {
                    early_offset = Some(off);
                }
                result.push_row(vec![
                    snap.round as f64,
                    snap.reciprocal_pairs as f64,
                    off,
                    norm,
                ]);
            }
        }
    }

    let late = metrics::stratification_snapshot(&swarm);
    let early = early_offset.expect("early snapshot captured");
    let late_off = late.mean_rank_offset.expect("pairs persist in fluid mode");
    result.check(
        "TFT partners stratify (rank offset shrinks)",
        late_off < 0.6 * early,
        format!("early offset {early:.1} -> late {late_off:.1}"),
    );
    result.check(
        "reciprocated pairs persist",
        late.reciprocal_pairs * 3 > leechers,
        format!(
            "{} reciprocated pairs for {leechers} leechers",
            late.reciprocal_pairs
        ),
    );

    // Share-ratio structure over bandwidth deciles.
    let perf = metrics::leecher_performance(&swarm);
    let mut by_bw: Vec<&metrics::PeerPerformance> = perf.iter().collect();
    by_bw.sort_by(|a, b| a.upload_kbps.total_cmp(&b.upload_kbps));
    let decile = leechers / 10;
    let mean_ratio = |slice: &[&metrics::PeerPerformance]| {
        let rs: Vec<f64> = slice.iter().filter_map(|p| p.share_ratio).collect();
        rs.iter().sum::<f64>() / rs.len() as f64
    };
    let slowest = mean_ratio(&by_bw[..decile]);
    let fastest = mean_ratio(&by_bw[leechers - decile..]);
    result.check(
        "fastest decile has share ratio below 1",
        fastest < 1.0,
        format!("mean D/U {fastest:.3}"),
    );
    result.check(
        "slowest decile has share ratio above 1",
        slowest > 1.0,
        format!("mean D/U {slowest:.3}"),
    );
    result.check(
        "slow peers beat fast peers in D/U",
        slowest > fastest,
        format!("slowest {slowest:.3} > fastest {fastest:.3}"),
    );
    result.note(format!(
        "Share ratios by decile (slow to fast): {}",
        (0..10)
            .map(|k| {
                let lo = k * decile;
                let hi = if k == 9 { leechers } else { (k + 1) * decile };
                format!("{:.2}", mean_ratio(&by_bw[lo..hi]))
            })
            .collect::<Vec<_>>()
            .join(", ")
    ));
    result.note(
        "This experiment exercises the actual protocol loop (TFT rechoke + optimistic \
         probe), i.e. the random-initiative dynamics of section 3 — the offsets shrink \
         exactly as Theorem 1's convergence predicts."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
