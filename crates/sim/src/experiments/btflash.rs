//! BTFLASH (extension experiment): a flash-crowd swarm at a scale the
//! reference engine could not afford.
//!
//! The paper's §6 analysis assumes the post-flash-crowd steady state; this
//! kernel simulates the flash crowd itself — a large leecher population
//! arriving almost empty (2 % initial completion) against a small seed
//! squad — and tracks the completion wave. Xu's *Performance Modeling of
//! BitTorrent P2P File Sharing Networks* (arXiv 1311.1195) motivates the
//! regime; the data-oriented engine's parallel rounds
//! ([`Swarm::run_rounds_parallel`](strat_bittorrent::Swarm::run_rounds_parallel),
//! bit-reproducible for any thread count) make the ≥10⁴-peer population
//! tractable.
//!
//! Shape checks: the swarm starts cold, the completion curve is monotone,
//! a substantial fraction completes within the horizon, and fast peers
//! ride the wave earlier than slow peers (the bandwidth stratification of
//! §6 showing up in completion times).

use strat_scenario::{BehaviorMix, CapacityModel, Scenario, SwarmParams, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The flash-crowd scenario: 10 000 leechers (300 quick) at 2 % initial
/// completion, 20 strong seeds, Figure 10 bandwidths in shuffled order,
/// piece-level content (no fluid shortcut).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let leechers = if ctx.quick { 300 } else { 10_000 };
    Scenario::new("btflash", leechers)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_capacity(CapacityModel::SaroiuShuffled {
            shuffle_seed: ctx.seed ^ 0xf1a5,
        })
        .with_swarm(SwarmParams {
            seeds: 20,
            seed_upload_kbps: 5000.0,
            piece_count: 128,
            piece_size_kbit: 1024.0,
            initial_completion: 0.02,
            fluid_content: false,
            seed_after_completion: true,
            swarm_seed: ctx.seed ^ 0xf1a5,
            behavior: BehaviorMix::compliant(),
            ..SwarmParams::default()
        })
}

/// Runs the flash-crowd experiment on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the flash-crowd kernel on an arbitrary base scenario.
///
/// Rounds execute through the parallel engine on all available workers;
/// the determinism contract keeps the rows identical for any thread
/// count.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    run_scenario_with_threads(ctx, scenario, strat_par::default_threads())
}

/// The kernel with an explicit worker count (the thread-independence test
/// drives this directly; results must not depend on `threads`).
fn run_scenario_with_threads(
    ctx: &ExperimentContext,
    scenario: &Scenario,
    threads: usize,
) -> ExperimentResult {
    let leechers = scenario.peers;
    let rounds = if ctx.quick { 60u64 } else { 160 };
    let sample_every = 5u64;
    let seeds = scenario.swarm.as_ref().map_or(0, |s| s.seeds);

    let mut swarm = scenario
        .build_swarm(&mut common::rng(scenario.seed, 0xf1))
        .unwrap_or_else(|e| panic!("btflash scenario: {e}"));
    let piece_count = swarm.config().piece_count;

    let mut result = ExperimentResult::new(
        "btflash",
        "Flash crowd: completion wave of a cold large swarm",
        format!(
            "{leechers} leechers + {seeds} seeds, {:.0} % initial completion, {rounds} rounds (parallel rounds)",
            100.0 * scenario.swarm.as_ref().map_or(0.0, |s| s.initial_completion)
        ),
        vec![
            "round".into(),
            "completed".into(),
            "completed_frac".into(),
            "mean_progress".into(),
        ],
    );

    let mut completions: Vec<usize> = Vec::new();
    let mut simulated = 0u64;
    while simulated < rounds {
        let step = sample_every.min(rounds - simulated);
        swarm.run_rounds_parallel(step, threads);
        simulated += step;
        let completed = swarm.completed_count();
        let mean_progress = (0..leechers)
            .map(|p| swarm.peer(p).pieces().count() as f64 / piece_count as f64)
            .sum::<f64>()
            / leechers as f64;
        completions.push(completed);
        result.push_row(vec![
            simulated as f64,
            completed as f64,
            completed as f64 / leechers as f64,
            mean_progress,
        ]);
    }

    let first = completions[0];
    let last = *completions.last().expect("at least one sample");
    result.check(
        "swarm starts cold (few early completions)",
        (first as f64) < 0.10 * leechers as f64,
        format!("{first} of {leechers} complete at round {sample_every}"),
    );
    result.check(
        "completion curve is monotone",
        completions.windows(2).all(|w| w[1] >= w[0]),
        format!("samples: {completions:?}"),
    );
    result.check(
        "a substantial fraction completes within the horizon",
        (last as f64) > 0.30 * leechers as f64,
        format!(
            "{last} of {leechers} ({:.1} %) complete at round {rounds}",
            100.0 * last as f64 / leechers as f64
        ),
    );

    // Fast peers complete earlier than slow peers: compare the mean
    // completion round of the fastest vs slowest completer quartiles.
    let mut by_bw: Vec<(f64, Option<u64>)> = (0..leechers)
        .map(|p| (swarm.peer(p).upload_kbps(), swarm.peer(p).completed_round()))
        .collect();
    by_bw.sort_by(|a, b| a.0.total_cmp(&b.0));
    let quartile = leechers / 4;
    let mean_completion = |slice: &[(f64, Option<u64>)]| -> Option<f64> {
        let rounds: Vec<f64> = slice.iter().filter_map(|x| x.1).map(|r| r as f64).collect();
        (!rounds.is_empty()).then(|| rounds.iter().sum::<f64>() / rounds.len() as f64)
    };
    let slow = mean_completion(&by_bw[..quartile]);
    let fast = mean_completion(&by_bw[leechers - quartile..]);
    let (verdict, detail) = match (fast, slow) {
        (Some(f), Some(s)) => (
            f < s,
            format!("fast quartile {f:.1} vs slow quartile {s:.1}"),
        ),
        (Some(f), None) => (
            true,
            format!("fast quartile {f:.1}; no slow-quartile completions yet"),
        ),
        (None, _) => (false, "no fast-quartile completions".to_string()),
    };
    result.check("fast peers ride the completion wave first", verdict, detail);

    result.note(format!(
        "Flash-crowd regime: {leechers} nearly-empty leechers against {seeds} seeds. \
         The completion wave sweeps the swarm by bandwidth rank — the §6 \
         stratification expressed in completion times rather than share ratios."
    ));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }

    #[test]
    fn results_are_thread_count_independent() {
        // The kernel runs through the parallel engine; the results must
        // not depend on how many workers the host machine offers.
        let ctx = ExperimentContext {
            quick: true,
            seed: 5,
        };
        let scenario = preset(&ctx);
        let serial = run_scenario_with_threads(&ctx, &scenario, 1);
        for threads in [2, 7] {
            assert_eq!(
                run_scenario_with_threads(&ctx, &scenario, threads),
                serial,
                "threads = {threads}"
            );
        }
    }
}
