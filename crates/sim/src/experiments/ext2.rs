//! EXT2 (paper §1, gossip reference): stratification under gossip-estimated
//! ranks.
//!
//! Deployed peers never see the true global ranking — they estimate their
//! standing by sampling peers (Jelasity et al.'s peer sampling service,
//! the paper's reference `[8]`). This experiment runs the entire pipeline on
//! **estimated** rankings and measures how much of the stable structure
//! survives: the disorder of the estimated-stable configuration w.r.t. the
//! true one, and the MMO degradation, as the gossip sample size grows.

use strat_core::{cluster, distance, gossip, stable_configuration, RankedAcceptance};
use strat_scenario::{PreferenceModel, Scenario};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The EXT2 scenario: the standard 1-matching system driven by
/// gossip-estimated ranks at the `k = 10` operating point; the kernel
/// sweeps the sample size around it.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let n = if ctx.quick { 300 } else { 1000 };
    common::one_matching_scenario("ext2", n, 10.0)
        .with_seed(ctx.seed)
        .with_preference(PreferenceModel::GossipEstimated { sample_size: 10 })
}

/// Runs the gossip-rank-estimation experiment on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the gossip-rank-estimation kernel on an arbitrary base scenario;
/// the scenario's gossip sample size anchors the sweep
/// `k × {0.3, 1, 3, 10, 30}`.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    let d = scenario.topology.mean_degree(n);
    let anchor = match scenario.preference {
        PreferenceModel::GossipEstimated { sample_size } => sample_size,
        _ => 10,
    };
    let sample_sizes: Vec<usize> = [0.3f64, 1.0, 3.0, 10.0, 30.0]
        .into_iter()
        .map(|f| ((anchor as f64 * f).round() as usize).max(1))
        .collect();
    let repetitions = if ctx.quick { 2 } else { 6 };

    let mut result = ExperimentResult::new(
        "ext2",
        "EXT2: stable configuration quality under gossip-estimated ranks",
        format!("n={n}, d={d}, 1-matching, {repetitions} runs averaged"),
        vec![
            "sample_size".into(),
            "rank_distortion".into(),
            "disorder_vs_true_stable".into(),
            "mmo_estimated".into(),
            "mmo_true".into(),
        ],
    );

    let mut rows: Vec<[f64; 5]> = vec![[0.0; 5]; sample_sizes.len()];
    for rep in 0..repetitions {
        let mut rng = common::rng(scenario.seed, 0xe2_00 + rep as u64);
        // The scenario provides the shared substrate (graph + truth +
        // capacities); each k re-estimates ranks from the same stream.
        let graph = scenario.build_graph(&mut rng).expect("valid scenario");
        let truth = PreferenceModel::GlobalRank.build_ranking(n, &mut rng);
        let caps = scenario.build_capacities(&mut rng).expect("valid scenario");
        let true_acc = RankedAcceptance::new(graph.clone(), truth.clone()).expect("sizes");
        let true_stable = stable_configuration(&true_acc, &caps).expect("sizes");
        let true_mmo = cluster::mean_max_offset(&truth, &true_stable);
        for (k_idx, &k) in sample_sizes.iter().enumerate() {
            let estimated = gossip::estimate_ranking(&truth, k, &mut rng);
            let distortion = gossip::ranking_distortion(&truth, &estimated);
            // Stable configuration the *estimated* system converges to.
            let est_acc = RankedAcceptance::new(graph.clone(), estimated).expect("sizes");
            let est_stable = stable_configuration(&est_acc, &caps).expect("sizes");
            // Quality is judged against the TRUE ranking.
            let disorder = distance::disorder(&truth, &est_stable, &true_stable);
            let mmo = cluster::mean_max_offset(&truth, &est_stable);
            rows[k_idx][0] = k as f64;
            rows[k_idx][1] += distortion / repetitions as f64;
            rows[k_idx][2] += disorder / repetitions as f64;
            rows[k_idx][3] += mmo / repetitions as f64;
            rows[k_idx][4] += true_mmo / repetitions as f64;
        }
    }
    for row in &rows {
        result.push_row(row.to_vec());
    }

    // The estimator's rank noise floor is ~ n/sqrt(k) (binomial counting
    // with replacement), so disorder shrinks like 1/sqrt(k) — compare the
    // ends rather than demanding strict monotony through sampling noise.
    let first = rows.first().expect("rows")[2];
    let last = rows.last().expect("rows")[2];
    result.check(
        "disorder shrinks substantially with sample size",
        last < 0.6 * first,
        format!(
            "disorder across k: {:?}",
            rows.iter()
                .map(|r| (r[2] * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        ),
    );
    result.check(
        "large samples approach the true stable configuration",
        last < 0.25,
        format!(
            "disorder at k={}: {:.4}",
            rows.last().expect("rows")[0],
            last
        ),
    );
    let mmo_ratio = rows[1][3] / rows[1][4];
    result.check(
        format!(
            "stratification survives coarse estimates (MMO within 3x at k={})",
            sample_sizes[1]
        ),
        mmo_ratio < 3.0,
        format!(
            "MMO estimated/true = {mmo_ratio:.2} at k={}",
            sample_sizes[1]
        ),
    );
    result.note(
        "Even k = 10 samples per peer keep collaborations local in true rank: the \
         estimator's error is itself local (a peer's estimated rank concentrates \
         around its true rank), so the global-ranking machinery degrades gracefully — \
         the practical reason gossip-based rank discovery suffices for TFT-like \
         systems."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 37,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
