//! Table 1: clustering and stratification properties on complete
//! acceptance graphs.
//!
//! Constant `b₀`-matching vs rounded-normal `N(b̄, 0.2²)`-matching for
//! `b₀, b̄ ∈ 2..=7`: average cluster size and Mean Max Offset (MMO).
//!
//! Paper values (constant): cluster size `b₀+1`, MMO
//! `1.67, 2.5, 3.2, 4, 4.71, 5.5`. Paper values (normal, σ = 0.2): cluster
//! sizes `6, 20, 78, 350, 1800, 11000` (growing roughly factorially) and
//! MMO `1.33, 2.10, 2.52, 3.21, 3.65, 4.31`.

use strat_core::cluster;
use strat_scenario::{CapacityModel, Scenario};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// Paper Table 1 reference values for the normal column.
pub const PAPER_NORMAL_CLUSTER: [f64; 6] = [6.0, 20.0, 78.0, 350.0, 1800.0, 11000.0];
/// Paper Table 1 reference values for the normal MMO row.
pub const PAPER_NORMAL_MMO: [f64; 6] = [1.33, 2.10, 2.52, 3.21, 3.65, 4.31];

/// The Table 1 scenario: complete knowledge with `N(6, 0.2²)` capacities
/// (the headline normal column); the kernel sweeps `b̄, b₀ ∈ 2..=7` and
/// the matching constant column.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("table1", 160_000)
        .with_seed(ctx.seed)
        .with_capacity(CapacityModel::RoundedNormal {
            mean: 6.0,
            sigma: 0.2,
        })
}

/// Runs the Table 1 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Table 1 kernel on an arbitrary base scenario (the scenario's
/// σ anchors the normal column).
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let sigma = match scenario.capacity {
        CapacityModel::RoundedNormal { sigma, .. } => sigma,
        _ => 0.2,
    };
    let repetitions = if ctx.quick { 4 } else { 6 };

    let mut result = ExperimentResult::new(
        "table1",
        "Table 1: clustering and stratification in a complete knowledge graph",
        format!("sigma={sigma}, {repetitions} repetitions for the normal column"),
        vec![
            "b".into(),
            "const_cluster_size".into(),
            "const_mmo".into(),
            "const_mmo_paper".into(),
            "normal_cluster_size".into(),
            "normal_cluster_paper".into(),
            "normal_mmo".into(),
            "normal_mmo_paper".into(),
        ],
    );

    let paper_const_mmo = [1.67, 2.5, 3.2, 4.0, 4.71, 5.5];
    for (idx, b) in (2u32..=7).enumerate() {
        // Constant column: measured on a large instance (values are exact).
        let n_const = (b as usize + 1) * 2000;
        let const_scenario =
            scenario
                .clone()
                .with_peers(n_const)
                .with_capacity(CapacityModel::Constant {
                    value: f64::from(b),
                });
        let mut const_rng = common::rng(scenario.seed, 0x1000 + u64::from(b));
        let m = const_scenario
            .stable_matching(&mut const_rng)
            .expect("valid scenario");
        let const_stats = cluster::cluster_stats(&const_scenario.build_ranking(&mut const_rng), &m);

        // Normal column: n must dwarf the expected cluster size.
        // Clusters must dwarf neither n (boundary clipping) nor the sample
        // count (heavy-tailed estimates); x24 the expected size with a
        // floor well above the small-b rows keeps every row in the
        // resolvable regime, and the O(n b alpha) complete-graph path makes
        // even the quick profile a sub-second affair.
        let n_normal = if ctx.quick {
            (PAPER_NORMAL_CLUSTER[idx] as usize * 24).clamp(10_000, 64_000)
        } else {
            (PAPER_NORMAL_CLUSTER[idx] as usize * 24).clamp(10_000, 160_000)
        };
        let normal_scenario =
            scenario
                .clone()
                .with_peers(n_normal)
                .with_capacity(CapacityModel::RoundedNormal {
                    mean: f64::from(b),
                    sigma,
                });
        let ranking = normal_scenario.build_ranking(&mut const_rng);
        let mut cluster_sum = 0.0;
        let mut mmo_sum = 0.0;
        for rep in 0..repetitions {
            let mut rng = common::rng(scenario.seed, 0x1000 + (u64::from(b) << 8) + rep as u64);
            let m = normal_scenario
                .stable_matching(&mut rng)
                .expect("valid scenario");
            let stats = cluster::cluster_stats(&ranking, &m);
            cluster_sum += stats.mean_cluster_size;
            mmo_sum += stats.mmo;
        }
        let normal_cluster = cluster_sum / repetitions as f64;
        let normal_mmo = mmo_sum / repetitions as f64;

        result.push_row(vec![
            f64::from(b),
            const_stats.mean_cluster_size,
            const_stats.mmo,
            paper_const_mmo[idx],
            normal_cluster,
            PAPER_NORMAL_CLUSTER[idx],
            normal_mmo,
            PAPER_NORMAL_MMO[idx],
        ]);
    }

    // Shape checks.
    for (row, b) in result.rows.clone().iter().zip(2u32..=7) {
        let idx = (b - 2) as usize;
        result.check(
            format!("b={b}: constant cluster size is b+1"),
            (row[1] - f64::from(b + 1)).abs() < 1e-9,
            format!("measured {:.3}", row[1]),
        );
        result.check(
            format!("b={b}: constant MMO matches closed form"),
            (row[2] - cluster::mmo_constant_exact(b)).abs() < 1e-9
                && (row[2] - row[3]).abs() < 0.01,
            format!("measured {:.3}, paper {:.2}", row[2], row[3]),
        );
        result.check(
            format!("b={b}: normal clusters much larger than constant"),
            row[4] > row[1],
            format!("normal {:.1} vs constant {:.1}", row[4], row[1]),
        );
        result.check(
            format!("b={b}: normal MMO below constant MMO"),
            row[6] < row[2],
            format!("normal {:.3} vs constant {:.3}", row[6], row[2]),
        );
        result.check(
            format!("b={b}: normal MMO within 35% of paper value"),
            (row[6] - PAPER_NORMAL_MMO[idx]).abs() / PAPER_NORMAL_MMO[idx] < 0.35,
            format!("measured {:.3}, paper {:.2}", row[6], PAPER_NORMAL_MMO[idx]),
        );
    }
    // Factorial-ish growth of the normal cluster sizes.
    let growth_ok = result.rows.windows(2).all(|w| w[1][4] / w[0][4] > 2.0);
    result.check(
        "normal cluster size grows super-exponentially in b",
        growth_ok,
        format!(
            "sizes: {:?}",
            result.rows.iter().map(|r| r[4].round()).collect::<Vec<_>>()
        ),
    );
    result.note(
        "Cluster sizes for the normal column are finite-size estimates (the paper's own \
         values are simulation estimates); factorial growth makes the largest entries \
         noisy in both."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_constant_column_exactly() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 7,
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 6);
        for check in &result.checks {
            if check.name.contains("constant") {
                assert!(check.passed, "{check:?}");
            }
        }
    }
}
