//! BTFAULT (extension experiment): graceful degradation and recovery of
//! an open swarm under injected faults.
//!
//! The fault plane (`strat_bittorrent::faults`) perturbs the session
//! regime that BTCHURN validated against the fluid oracle: peer
//! **crashes** (abrupt departures with no lifecycle cleanup), per-edge
//! **transfer loss**, tracker **outages** (announces deferred and retried
//! with exponential backoff), and overlay **partitions** that cut the
//! swarm in half for a round window and then heal. This kernel sweeps
//! crash rate × loss rate × outage length (plus a pure partition cell)
//! and reports, per cell:
//!
//! * population trajectories with overlay-degradation metrics sampled
//!   alongside (largest connected component, component count, BFS
//!   diameter, stalled peers — `strat_bittorrent::overlay`);
//! * a steady-state summary row (`round = −1`) against the
//!   **abort-augmented** fluid prediction: crashes enter the oracle as
//!   the mid-download abort rate `θ = crash`, the lingering-seed
//!   departure rate compounds to `1 − (1−γ)(1−crash)`, and transfer loss
//!   scales the service rate to `μ(1 − loss)`;
//! * for the partition cell, the **recovery time**: rounds from the heal
//!   until the largest component spans the full population again —
//!   deterministic (the repair pass draws from `(seed, round, event)`
//!   streams), which a second independent run verifies.

use strat_analytic::fluid::BtFluidParams;
use strat_bittorrent::overlay;
use strat_scenario::{
    ArrivalProcess, CapacityModel, DepartureRules, FaultPlan, FaultWindow, Scenario, Session,
    SessionConfig, SwarmParams, TopologyModel,
};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// One sweep cell: `(crash rate, loss rate, outage rounds, partition rounds)`.
type Cell = (f64, f64, u64, u64);

/// The sweep: a no-fault baseline, single-fault cells, a combined cell,
/// and a pure partition cell (the recovery measurement).
fn sweep(quick: bool) -> Vec<Cell> {
    if quick {
        vec![(0.0, 0.0, 0, 0), (0.01, 0.15, 4, 0), (0.0, 0.0, 0, 4)]
    } else {
        vec![
            (0.0, 0.0, 0, 0),
            (0.01, 0.0, 0, 0),
            (0.0, 0.15, 0, 0),
            (0.0, 0.0, 6, 0),
            (0.01, 0.15, 6, 0),
            (0.0, 0.0, 0, 6),
        ]
    }
}

/// Simulation horizon: `(warmup rounds, measurement rounds)`.
fn horizon(quick: bool) -> (u64, u64) {
    if quick {
        (80, 140)
    } else {
        (100, 200)
    }
}

/// Rounds into the measurement window at which fault windows open.
const WINDOW_OFFSET: u64 = 20;
/// Upload capacity of every peer (kbps).
const UPLOAD_KBPS: f64 = 400.0;
/// Original (permanent, crash-exempt) seeds.
const SEEDS: usize = 2;
/// Arrivals per round.
const LAMBDA: f64 = 4.0;
/// Lingering-seed departure probability per round.
const GAMMA: f64 = 0.3;

/// The abort-augmented fluid parameters of a cell: crashes are aborts
/// (`θ = crash`) for leechers and compound the seed departure rate;
/// transfer loss scales the service rate.
fn fluid_params(scenario: &Scenario, cell: Cell) -> BtFluidParams {
    let (crash, loss, _, _) = cell;
    let swarm = scenario
        .swarm
        .as_ref()
        .expect("btfault has a swarm section");
    let file_kbit = swarm.piece_count as f64 * swarm.piece_size_kbit;
    let mu = UPLOAD_KBPS * swarm.round_seconds / file_kbit;
    BtFluidParams {
        lambda: LAMBDA,
        mu: mu * (1.0 - loss),
        gamma: 1.0 - (1.0 - GAMMA) * (1.0 - crash),
        theta: crash,
        eta: 1.0,
        s0: SEEDS as f64,
    }
}

/// The cell's scenario: the base preset with its `swarm.faults` section
/// replaced by the cell's plan (windows open `WINDOW_OFFSET` rounds into
/// the measurement window).
fn cell_scenario(base: &Scenario, cell: Cell, quick: bool) -> Scenario {
    let (crash, loss, outage, partition) = cell;
    let (warmup, _) = horizon(quick);
    let start = warmup + WINDOW_OFFSET;
    let window = |rounds: u64| {
        if rounds == 0 {
            vec![]
        } else {
            vec![FaultWindow { start, rounds }]
        }
    };
    let swarm = base.swarm.clone().expect("btfault has a swarm section");
    base.clone().with_swarm(SwarmParams {
        faults: Some(FaultPlan {
            crash_prob: crash,
            loss_prob: loss,
            outages: window(outage),
            partitions: window(partition),
            fault_seed: base.seed ^ 0xfa17,
        }),
        ..swarm
    })
}

/// The base scenario: the BTCHURN regime at a smaller scale — constant
/// 400 kbps capacities, a 256 × 250 kbit file (`1/μ = 16` rounds), λ = 4
/// empty-leecher arrivals per round, γ = 0.3 lingering seeds (x̄ ≈ 49) —
/// with the combined-fault plan attached (the dumped preset exercises the
/// full `swarm.faults` schema).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let base = Scenario::new("btfault", 49)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 16.0 })
        .with_capacity(CapacityModel::Constant { value: UPLOAD_KBPS })
        .with_swarm(SwarmParams {
            seeds: SEEDS,
            seed_upload_kbps: UPLOAD_KBPS,
            piece_count: 256,
            piece_size_kbit: 250.0,
            initial_completion: 0.5,
            fluid_content: false,
            seed_after_completion: true,
            swarm_seed: ctx.seed ^ 0xfa07,
            churn: Some(SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: LAMBDA },
                departure: DepartureRules {
                    leave_on_completion: 0.0,
                    seed_leave_prob: GAMMA,
                    seed_exodus_round: None,
                    abort_prob: 0.0,
                },
                arrival_upload_kbps: UPLOAD_KBPS,
                arrival_completion: 0.0,
                target_degree: 16,
                session_seed: ctx.seed ^ 0xfa07,
                batched_wiring: false,
                peer_list_cap: None,
                compact_threshold: None,
            }),
            ..SwarmParams::default()
        });
    let combined = if ctx.quick {
        (0.01, 0.15, 4, 0)
    } else {
        (0.01, 0.15, 6, 0)
    };
    cell_scenario(&base, combined, ctx.quick)
}

/// Runs the fault sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// What one cell's simulation measured.
struct CellOutcome {
    /// Tail-mean leecher population.
    leechers: f64,
    /// Tail-mean promoted-seed population.
    seeds: f64,
    /// Rounds from partition heal to full connectivity; `None` without a
    /// partition (or if connectivity never returned).
    recovery: Option<u64>,
    /// Components observed in the last partition round.
    split_components: usize,
    /// Mean download rounds of steady-state completions.
    mean_download: f64,
    /// The finished session (statistics and final swarm state).
    session: Session,
}

/// Simulates one cell, pushing sampled rows, and returns its outcomes.
#[allow(clippy::too_many_lines)]
fn simulate_cell(
    result: &mut ExperimentResult,
    scenario: &Scenario,
    cell: Cell,
    quick: bool,
    fluid_leechers: f64,
) -> CellOutcome {
    let (crash, loss, outage, partition) = cell;
    let (warmup, measure) = horizon(quick);
    let sample_every = 10u64;
    let heal_end = warmup + WINDOW_OFFSET + partition;

    let mut session = scenario
        .build_session(&mut common::rng(scenario.seed, 0xfa))
        .unwrap_or_else(|e| panic!("btfault scenario: {e}"));

    let mut tail_leechers = 0.0f64;
    let mut tail_seeds = 0.0f64;
    let mut recovery = None;
    let mut split_components = 0usize;
    for round in 0..warmup + measure {
        session.run_rounds(1);
        let pop = session.population();
        let promoted = pop.seeding.saturating_sub(SEEDS) as f64;
        if round >= warmup {
            tail_leechers += pop.downloading as f64;
            tail_seeds += promoted;
        }
        if partition > 0 && round + 1 == heal_end {
            // Last partitioned round: the overlay must actually be split.
            split_components = overlay::snapshot(session.swarm()).components;
        }
        if partition > 0 && recovery.is_none() && round + 1 >= heal_end {
            // First fully-connected round after the heal.
            if overlay::fully_connected(session.swarm()) {
                recovery = Some(round + 1 - heal_end);
            }
        }
        if (round + 1).is_multiple_of(sample_every) {
            let snap = overlay::snapshot(session.swarm());
            result.push_row(vec![
                crash,
                loss,
                outage as f64,
                partition as f64,
                (round + 1) as f64,
                pop.downloading as f64,
                promoted,
                snap.largest_component as f64,
                snap.components as f64,
                snap.diameter as f64,
                snap.stalled as f64,
                fluid_leechers,
                recovery.map_or(-1.0, |r| r as f64),
            ]);
        }
    }

    let records: Vec<f64> = session
        .stats()
        .completion_records
        .iter()
        .filter(|&&(arrived, _)| arrived >= warmup / 2)
        .map(|&(arrived, completed)| (completed - arrived) as f64)
        .collect();
    let mean_download = if records.is_empty() {
        0.0
    } else {
        records.iter().sum::<f64>() / records.len() as f64
    };

    CellOutcome {
        leechers: tail_leechers / measure as f64,
        seeds: tail_seeds / measure as f64,
        recovery,
        split_components,
        mean_download,
        session,
    }
}

/// Runs the crash × loss × outage sweep (plus the partition-recovery
/// cell) derived from an arbitrary base scenario, which must carry
/// `swarm.churn` (its `swarm.faults` section is replaced per cell).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm or churn section.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let cells = sweep(ctx.quick);
    let (warmup, measure) = horizon(ctx.quick);

    let mut result = ExperimentResult::new(
        "btfault",
        "Fault plane: crash/loss/outage/partition degradation and recovery",
        format!(
            "cells (crash, loss, outage, partition) = {cells:?}, {warmup}+{measure} rounds, \
             400 kbps peers, 1/mu = 16 rounds, lambda = {LAMBDA}, gamma = {GAMMA}, \
             {SEEDS} permanent seeds"
        ),
        vec![
            "crash".into(),
            "loss".into(),
            "outage_len".into(),
            "partition_len".into(),
            "round".into(), // -1 marks the cell's steady-state summary row
            "leechers".into(),
            "seeds".into(),
            "largest_cc".into(),
            "components".into(),
            "diameter".into(),
            "stalled".into(),
            "fluid_leechers".into(),
            "recovery_rounds".into(),
        ],
    );

    let mut max_rel_err = 0.0f64;
    let mut baseline_download = 0.0f64;
    let mut lossy_download = 0.0f64;
    let mut crash_seen = false;
    let mut loss_seen = false;
    let mut outage_ok = true;
    let mut outage_present = false;
    let mut partition_outcome: Option<(Cell, CellOutcome)> = None;

    for &cell in &cells {
        let (crash, loss, outage, partition) = cell;
        let cell_scn = cell_scenario(scenario, cell, ctx.quick);
        let params = fluid_params(&cell_scn, cell);
        let steady = params.steady_state();
        let outcome = simulate_cell(&mut result, &cell_scn, cell, ctx.quick, steady.leechers);

        result.push_row(vec![
            crash,
            loss,
            outage as f64,
            partition as f64,
            -1.0,
            outcome.leechers,
            outcome.seeds,
            0.0,
            0.0,
            0.0,
            0.0,
            steady.leechers,
            outcome.recovery.map_or(-1.0, |r| r as f64),
        ]);

        max_rel_err = max_rel_err.max((outcome.leechers - steady.leechers).abs() / steady.leechers);
        let stats = outcome.session.stats();
        if crash > 0.0 {
            crash_seen |= stats.crashes > 0;
        }
        if loss > 0.0 {
            loss_seen |= outcome.session.swarm().lost_deliveries() > 0;
            if lossy_download == 0.0 {
                lossy_download = outcome.mean_download;
            }
        }
        if cell == (0.0, 0.0, 0, 0) {
            baseline_download = outcome.mean_download;
            // The baseline cell must be genuinely fault-free.
            assert_eq!(stats.crashes, 0, "baseline crashed");
            assert_eq!(
                outcome.session.swarm().lost_deliveries(),
                0,
                "baseline lost"
            );
        }
        if outage > 0 {
            outage_present = true;
            outage_ok &= stats.deferred_announces > 0
                && stats.announce_retries >= stats.deferred_announces
                && outcome.session.pending_announces() == 0;
        }
        if partition > 0 {
            partition_outcome = Some((cell, outcome));
        }
    }

    // Looser than BTCHURN's 10%: the fault-scale swarm downloads in
    // 1/mu = 16 rounds (vs 32 there), so the geometric-vs-exponential
    // holding-time discretization error is proportionally larger, and the
    // faulted cells add crash/loss interaction terms the mean-field
    // closed forms ignore.
    result.check(
        "steady-state leecher populations within 25% of the abort-augmented fluid oracle",
        max_rel_err <= 0.25,
        format!("worst relative error {max_rel_err:.3}"),
    );
    result.check(
        "fault injection bites: crash cells crash, loss cells drop deliveries",
        crash_seen && loss_seen,
        format!("crash_seen {crash_seen}, loss_seen {loss_seen}"),
    );
    result.check(
        "tracker outage defers announces and retry-backoff admits every one (queue drains)",
        outage_present && outage_ok,
        "deferred > 0, retries >= deferred, pending == 0 at horizon".to_string(),
    );
    result.check(
        "transfer loss lengthens downloads relative to the no-fault baseline",
        baseline_download > 0.0 && lossy_download > baseline_download,
        format!("baseline {baseline_download:.1} rounds, lossy {lossy_download:.1} rounds"),
    );

    let (partition_cell, partition_run) = partition_outcome.expect("sweep has a partition cell");
    let recovery = partition_run.recovery;
    result.check(
        "partition splits the overlay and the heal restores full connectivity",
        partition_run.split_components >= 2 && recovery.is_some(),
        format!(
            "components during window {}, recovery {recovery:?}",
            partition_run.split_components
        ),
    );
    let bound = 30u64;
    result.check(
        "largest component returns to the full population within 30 rounds of the heal",
        recovery.is_some_and(|r| r <= bound),
        format!("recovery_rounds {recovery:?} (bound {bound})"),
    );
    // Recovery is a *deterministic* number: an independent rebuild of the
    // same cell must measure it exactly.
    let rerun = simulate_cell(
        &mut ExperimentResult::new("btfault-rerun", "", "", result.columns.clone()),
        &cell_scenario(scenario, partition_cell, ctx.quick),
        partition_cell,
        ctx.quick,
        0.0,
    );
    result.check(
        "partition recovery time is deterministic across independent runs",
        rerun.recovery == recovery,
        format!("first {recovery:?}, rerun {:?}", rerun.recovery),
    );

    result.note(format!(
        "Partition-heal recovery: the overlay splits into {} components while the \
         partition window is open (repair is half-restricted and the tracker's candidate \
         list is half-usable, so survivors run under-degree), then re-bridges to one \
         component {} rounds after the heal — a deterministic figure reproduced exactly \
         by an independent run.",
        partition_run.split_components,
        recovery.map_or(-1, |r| r as i64),
    ));
    result.note(
        "Fluid-oracle mapping for faulted cells: crashes are mid-download aborts \
         (theta = crash) that also compound the lingering-seed departure rate to \
         1 - (1-gamma)(1-crash); transfer loss scales the service rate to mu(1-loss). \
         The measured stationary populations track these abort-augmented closed forms, \
         so the fault plane degrades the swarm the way the population model predicts \
         rather than destabilizing it."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }

    #[test]
    fn preset_carries_a_live_fault_plan() {
        let ctx = ExperimentContext {
            quick: false,
            seed: 7,
        };
        let scenario = preset(&ctx);
        let faults = scenario.swarm.as_ref().unwrap().faults.as_ref().unwrap();
        assert!(!faults.is_inert());
        assert!(faults.validate().is_ok());
        // And it round-trips through JSON (the dumped preset is loadable).
        let parsed = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(parsed, scenario);
    }
}
