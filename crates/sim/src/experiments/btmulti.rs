//! BTMULTI (extension experiment): the multi-swarm universe validated
//! against the Xu multi-class fluid oracle applied per torrent.
//!
//! The single-session experiments treat each torrent as a closed world;
//! real BitTorrent populations are shared — one peer seeds yesterday's
//! torrent while leeching today's, splitting its upload capacity across
//! both. The universe subsystem (`strat_bittorrent::universe`) models
//! exactly that: one member population over `T` swarms, `Fixed { extra }`
//! multi-torrent membership drawn from Zipf popularity weights, and a
//! capacity-split policy applied at every rechoke boundary.
//!
//! This kernel sweeps **torrent count × popularity skew**. Three
//! capacity classes `[1/s, 1, s] · b̄` are assigned to members
//! round-robin; each member joins its home torrent plus one extra drawn
//! ∝ popularity, so every replica runs at half capacity under
//! `EqualShare`. The Xu multi-class fixed point predicts each torrent's
//! per-class download times once two corrections are applied:
//!
//! * **capacity share** — member service rates scale by `1/(1+extra)`
//!   ([`BtMultiClassParams::with_capacity_share`]); the permanent
//!   publishers stay single-torrent at full rate, so `μ_seed` does not;
//! * **effective arrival rates** — torrent `t` receives its own Poisson
//!   flux `λ_t = λ·T·ŵ_t` plus the cross-join inflow
//!   `Σ_{s≠t} λ_s · ŵ_t / (1 − ŵ_s)` from members homed elsewhere
//!   (one extra draw without replacement).
//!
//! Acceptance: pooled per-class download times within 35 % of the
//! arrival-weighted oracle at every cell, per-torrent class ordering
//! (the *stratification position*) stable across every adequately
//! sampled torrent, and same-class tit-for-tat affinity positive in
//! every swarm — the paper's clustering signal survives capacity
//! splitting because a member's per-replica rate is still class-ordered.

use strat_analytic::fluid::BtMultiClassParams;
use strat_bittorrent::observer::{ClusterObserver, UNTRACKED_CLASS};
use strat_scenario::{
    ArrivalProcess, CapacityModel, DepartureRules, MembershipModel, Scenario, SessionConfig,
    SwarmParams, TopologyModel, UniverseParams,
};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The sweep cells `(torrents, popularity_skew)`: a two-torrent uniform
/// control, a wider uniform universe, and a Zipf-skewed one.
fn sweep(quick: bool) -> Vec<(usize, f64)> {
    if quick {
        vec![(2, 0.0)]
    } else {
        vec![(2, 0.0), (4, 0.0), (4, 1.2)]
    }
}

/// Simulation horizon in rounds: `(warmup, measurement)`.
fn horizon(quick: bool) -> (u64, u64) {
    if quick {
        (60, 120)
    } else {
        (80, 200)
    }
}

/// Base upload capacity (kbps) of the middle class.
const UPLOAD_KBPS: f64 = 400.0;
/// Capacity-class spread: classes `[1/s, 1, s] · b̄`. Narrower than
/// btevent's moderate 1.5: weakly assortative round-engine matching
/// pulls the extreme classes toward the population mean, and capacity
/// splitting halves every per-replica rate, so the attenuation must fit
/// inside the same 35 % fluid band.
const SPREAD: f64 = 1.35;
/// Capacity classes per cell.
const CLASSES: usize = 3;
/// Permanent publisher seeds per torrent (single-torrent, full rate).
const SEEDS: usize = 3;
/// Per-torrent base Poisson arrival rate (peers per round); the universe
/// scales it by `T · ŵ_t`, so total universe flux is `λ · T`.
const LAMBDA: f64 = 3.0;
/// Promoted-seed departure rate per round.
const GAMMA: f64 = 0.35;
/// Extra torrents every member joins beyond its home swarm. The
/// effective-rate oracle below assumes exactly one extra draw.
const EXTRA: usize = 1;
/// Per-torrent completions (per class) required before a torrent's
/// class ordering counts toward the stability metric.
const MIN_SAMPLES: u64 = 25;

/// Class capacity multipliers `[1/s, 1, s]`.
fn multipliers() -> Vec<f64> {
    vec![1.0 / SPREAD, 1.0, SPREAD]
}

/// Normalized Zipf popularity weights `ŵ_t ∝ (t+1)^−skew` — the same
/// law [`UniverseParams::popularity_weights`] uses.
fn popularity(torrents: usize, skew: f64) -> Vec<f64> {
    let w: Vec<f64> = (0..torrents)
        .map(|t| ((t + 1) as f64).powf(-skew))
        .collect();
    let total: f64 = w.iter().sum();
    w.into_iter().map(|x| x / total).collect()
}

/// Per-torrent *effective* arrival rates: own Poisson flux plus the
/// cross-join inflow from members homed on other torrents (one extra
/// draw without replacement, ∝ popularity).
fn effective_lambdas(torrents: usize, skew: f64) -> Vec<f64> {
    let what = popularity(torrents, skew);
    let own: Vec<f64> = what.iter().map(|&w| LAMBDA * torrents as f64 * w).collect();
    (0..torrents)
        .map(|t| {
            own[t]
                + (0..torrents)
                    .filter(|&s| s != t)
                    .map(|s| own[s] * what[t] / (1.0 - what[s]))
                    .sum::<f64>()
        })
        .collect()
}

/// The capacity-share-adjusted oracle for one torrent: full-rate class
/// service rates scaled by `1/(1+extra)` for members, publishers left
/// at full rate, arrivals set to the torrent's effective flux split
/// evenly over the round-robin classes.
fn fluid_for(scenario: &Scenario, lambda_eff: f64) -> BtMultiClassParams {
    let swarm = scenario
        .swarm
        .as_ref()
        .expect("btmulti has a swarm section");
    let file_kbit = swarm.piece_count as f64 * swarm.piece_size_kbit;
    let mu_base = UPLOAD_KBPS * swarm.round_seconds / file_kbit;
    let mults = multipliers();
    BtMultiClassParams {
        lambda: vec![lambda_eff / CLASSES as f64; CLASSES],
        mu: mults.iter().map(|m| mu_base * m).collect(),
        gamma: GAMMA,
        eta: 1.0,
        s0: SEEDS as f64,
        mu_seed: mu_base * mults.iter().sum::<f64>() / CLASSES as f64,
    }
    .with_capacity_share(1.0 / (1 + EXTRA) as f64)
}

/// One sweep cell derived from the base scenario: the universe section
/// retargeted to `(torrents, skew)` and the initial per-torrent leecher
/// pool set to the mean predicted steady state divided by the
/// membership factor (each initial claim spawns `extra` replicas).
fn cell_scenario(base: &Scenario, torrents: usize, skew: f64) -> Scenario {
    let swarm = base.swarm.clone().expect("btmulti has a swarm section");
    let universe = swarm
        .universe
        .clone()
        .expect("btmulti has a universe section");
    let mean_total: f64 = effective_lambdas(torrents, skew)
        .iter()
        .map(|&l| {
            fluid_for(base, l)
                .steady_state()
                .leechers
                .iter()
                .sum::<f64>()
        })
        .sum::<f64>()
        / torrents as f64;
    let peers = (mean_total / (1 + EXTRA) as f64).round() as usize;
    base.clone()
        .with_peers(peers.max(CLASSES * 3))
        .with_swarm(SwarmParams {
            universe: Some(UniverseParams {
                torrents,
                popularity_skew: skew,
                ..universe
            }),
            ..swarm
        })
}

/// The base scenario: a shared-population universe over uniformly
/// popular torrents — 128 × 250 kbit files (`1/μ = 16` rounds for a
/// half-share middle-class replica), `d = 20` overlays, 3 publisher
/// seeds per torrent at the exact class-mean rate, Poisson arrivals of
/// empty leechers, one extra membership per member, equal capacity
/// split, classes `[1/s, 1, s] · 400` kbps assigned round-robin.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let (torrents, skew) = sweep(ctx.quick)[0];
    let mults = multipliers();
    let seed_kbps = UPLOAD_KBPS * mults.iter().sum::<f64>() / CLASSES as f64;
    let base = Scenario::new("btmulti", 9)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_capacity(CapacityModel::Constant { value: UPLOAD_KBPS })
        .with_swarm(SwarmParams {
            seeds: SEEDS,
            seed_upload_kbps: seed_kbps,
            piece_count: 128,
            piece_size_kbit: 250.0,
            initial_completion: 0.5,
            fluid_content: false,
            seed_after_completion: true,
            swarm_seed: ctx.seed ^ 0x3b17,
            churn: Some(SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: LAMBDA },
                departure: DepartureRules {
                    leave_on_completion: 0.0,
                    seed_leave_prob: GAMMA,
                    seed_exodus_round: None,
                    abort_prob: 0.0,
                },
                arrival_upload_kbps: UPLOAD_KBPS,
                arrival_completion: 0.0,
                target_degree: 20,
                session_seed: ctx.seed ^ 0x3b17,
                batched_wiring: false,
                peer_list_cap: None,
                compact_threshold: None,
            }),
            universe: Some(UniverseParams {
                torrents: 2,
                popularity_skew: 0.0,
                membership: MembershipModel::Fixed { extra: EXTRA },
                class_upload_kbps: multipliers().iter().map(|m| UPLOAD_KBPS * m).collect(),
                universe_seed: ctx.seed ^ 0x0a11,
                ..UniverseParams::default()
            }),
            ..SwarmParams::default()
        });
    cell_scenario(&base, torrents, skew)
}

/// Runs the multi-swarm sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the torrent-count × popularity-skew sweep derived from an
/// arbitrary base scenario (which must carry `swarm.churn` and
/// `swarm.universe`).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm, churn or universe section.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let cells = sweep(ctx.quick);
    let (warmup, measure) = horizon(ctx.quick);

    let mut result = ExperimentResult::new(
        "btmulti",
        "Multi-swarm universe: shared population vs the per-torrent fluid oracle",
        format!(
            "cells {cells:?}, {warmup}+{measure} rounds, classes [1/{SPREAD}, 1, {SPREAD}] x \
             {UPLOAD_KBPS} kbps, lambda = {LAMBDA}/round/torrent, gamma = {GAMMA}, \
             {SEEDS} publishers/torrent, extra = {EXTRA}, EqualShare"
        ),
        vec![
            "torrents".into(),
            "skew".into(),
            "torrent".into(),
            "class".into(),
            "measured_rounds".into(),
            "fluid_rounds".into(),
            "completions".into(),
            "tft_excess".into(),
        ],
    );

    let mut max_rel_err = 0.0f64;
    let mut ordered = true;
    let mut stable_torrents = 0u64;
    let mut sampled_torrents = 0u64;
    let mut affinity_positive = 0u64;
    let mut affinity_total = 0u64;
    let mut min_excess = f64::INFINITY;
    let mut turnover_ok = true;
    let mut membership_note = String::new();

    for &(torrents, skew) in &cells {
        let cell = cell_scenario(scenario, torrents, skew);
        let mut universe = cell
            .build_universe(&mut common::rng(cell.seed, 0xb71))
            .unwrap_or_else(|e| panic!("btmulti scenario: {e}"));

        universe.run_rounds(warmup, None);
        // Measurement window: per-torrent cluster observers whose
        // slot→class maps are re-synced from the member registry before
        // every round (arrivals land in recycled arena slots over time).
        let mut observers: Vec<ClusterObserver> = (0..torrents)
            .map(|_| ClusterObserver::with_class_count(CLASSES))
            .collect();
        for _ in 0..measure {
            for (t, obs) in observers.iter_mut().enumerate() {
                for slot in 0..universe.session(t).swarm().peer_count() {
                    let class = universe
                        .member_of_slot(t, slot)
                        .map_or(UNTRACKED_CLASS, |m| universe.member_class(m));
                    obs.assign_class(slot, class);
                }
            }
            universe.step(None, &observers);
        }

        // Per-(torrent, class) mean download rounds of members that
        // arrived after the transient.
        let lambda_eff = effective_lambdas(torrents, skew);
        let mut sums = vec![[0.0f64; CLASSES]; torrents];
        let mut counts = vec![[0u64; CLASSES]; torrents];
        for rec in &universe.stats().completion_records {
            if rec.arrival_round > 0 && rec.arrival_round >= warmup / 2 {
                sums[rec.torrent as usize][rec.class as usize] +=
                    (rec.completed_round - rec.arrival_round) as f64;
                counts[rec.torrent as usize][rec.class as usize] += 1;
            }
        }

        // Pooled per-class comparison: completion-weighted measured mean
        // vs the arrival-weighted mixture of per-torrent oracles.
        let fluid: Vec<Vec<f64>> = lambda_eff
            .iter()
            .map(|&l| fluid_for(&cell, l).mean_download_rounds())
            .collect();
        let lambda_total: f64 = lambda_eff.iter().sum();
        for class in 0..CLASSES {
            let total_count: u64 = (0..torrents).map(|t| counts[t][class]).sum();
            let total_sum: f64 = (0..torrents).map(|t| sums[t][class]).sum();
            if total_count == 0 {
                turnover_ok = false;
                continue;
            }
            let measured = total_sum / total_count as f64;
            let predicted: f64 = (0..torrents)
                .map(|t| lambda_eff[t] * fluid[t][class])
                .sum::<f64>()
                / lambda_total;
            max_rel_err = max_rel_err.max((measured - predicted).abs() / predicted);
        }

        // Rows, per-torrent position stability, and TFT affinity.
        let mut pooled = [f64::NAN; CLASSES];
        for class in 0..CLASSES {
            let n: u64 = (0..torrents).map(|t| counts[t][class]).sum();
            if n > 0 {
                pooled[class] = (0..torrents).map(|t| sums[t][class]).sum::<f64>() / n as f64;
            }
        }
        ordered &= pooled[0] > pooled[1] && pooled[1] > pooled[2];
        for t in 0..torrents {
            let affinity = observers[t].tft_affinity();
            let excess = affinity.map_or(f64::NAN, |a| a.excess());
            if let Some(a) = affinity {
                affinity_total += 1;
                affinity_positive += u64::from(a.excess() > 0.0);
                min_excess = min_excess.min(a.excess());
            }
            let mut per_torrent = [f64::NAN; CLASSES];
            for class in 0..CLASSES {
                if counts[t][class] > 0 {
                    per_torrent[class] = sums[t][class] / counts[t][class] as f64;
                }
                result.push_row(vec![
                    torrents as f64,
                    skew,
                    t as f64,
                    class as f64,
                    per_torrent[class],
                    fluid[t][class],
                    counts[t][class] as f64,
                    excess,
                ]);
            }
            if counts[t].iter().all(|&n| n >= MIN_SAMPLES) {
                sampled_torrents += 1;
                stable_torrents +=
                    u64::from(per_torrent[0] > per_torrent[1] && per_torrent[1] > per_torrent[2]);
            }
        }

        let stats = universe.stats();
        turnover_ok &=
            stats.cross_joins > 0 && stats.member_departures > 0 && stats.completions > 0;
        if membership_note.is_empty() {
            membership_note = format!(
                "Membership accounting (T = {torrents}, skew = {skew}): {} members claimed, \
                 {} cross-joins, {} member departures, {} replica departures, {} completions",
                stats.members,
                stats.cross_joins,
                stats.member_departures,
                stats.replica_departures,
                stats.completions,
            );
        }
    }

    result.check(
        "pooled per-class download times within 35% of the capacity-share-adjusted oracle",
        max_rel_err <= 0.35,
        format!("worst relative error {max_rel_err:.3} across all cells and classes"),
    );
    result.check(
        "pooled download times strictly ordered by class capacity at every cell",
        ordered,
        "slow > mid > fast on the completion-weighted means".to_string(),
    );
    result.check(
        "stratification positions stable across swarms",
        sampled_torrents > 0 && stable_torrents == sampled_torrents,
        format!(
            "{stable_torrents}/{sampled_torrents} adequately sampled torrents (>= {MIN_SAMPLES} \
             completions per class) reproduce the slow > mid > fast ordering"
        ),
    );
    result.check(
        "same-class TFT affinity positive in every swarm of every cell",
        affinity_total > 0 && affinity_positive == affinity_total,
        format!("{affinity_positive}/{affinity_total} swarms cluster (min excess {min_excess:.4})"),
    );
    result.check(
        "population turns over: cross-joins, departures and completions in every cell",
        turnover_ok,
        "every class completes downloads in every cell".to_string(),
    );

    result.note(membership_note);
    result.note(
        "Shared peer population across T torrents: every member joins one extra swarm drawn \
         from Zipf popularity, so each replica runs at half capacity under EqualShare. The \
         Xu multi-class fixed point still predicts per-torrent download times once member \
         service rates are scaled by the capacity share 1/(1+extra) and arrivals by the \
         cross-join inflow lambda_t + sum_s lambda_s w_t/(1-w_s); publishers stay \
         single-torrent at full rate. Stratification positions — the per-class download-time \
         ordering — are stable across swarms, and same-class tit-for-tat affinity stays \
         positive in every swarm: capacity splitting rescales the class ladder without \
         reshuffling it, which is the cross-swarm form of the paper's stratification claim."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }

    #[test]
    fn effective_lambdas_conserve_total_flux() {
        for &(torrents, skew) in &[(2usize, 0.0f64), (4, 0.0), (4, 1.2), (8, 0.7)] {
            let eff = effective_lambdas(torrents, skew);
            let total: f64 = eff.iter().sum();
            let expected = LAMBDA * torrents as f64 * (1 + EXTRA) as f64;
            assert!(
                (total - expected).abs() < 1e-9,
                "T = {torrents}, skew = {skew}: effective flux {total} != {expected}"
            );
        }
    }
}
