//! Figure 3: distance to the instant stable state under continuous churn.
//!
//! Paper setup: 1000 peers, 1-matching, 10 neighbours per peer, starting
//! from the empty configuration; churn levels 30/1000, 10/1000, 3/1000,
//! 0.5/1000 and no churn, over 20 base units.
//!
//! Paper observations: as churn increases the system can no longer reach
//! the instant stable configuration, but disorder stays under control and
//! the average disorder is roughly proportional to the churn rate.

use strat_scenario::{ChurnModel, Scenario};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 3 scenario: the `n = 1000`, `d = 10` system at the paper's
/// highest churn level (30/1000); the kernel sweeps the lower levels.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    common::one_matching_scenario("fig3", 1000, 10.0)
        .with_seed(ctx.seed)
        .with_churn(ChurnModel::Rate { rate: 0.03 })
}

/// Runs the Figure 3 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 3 kernel on an arbitrary base scenario; the scenario's
/// churn rate anchors the sweep `rate × {1, 1/3, 1/10, 1/60, 0}`.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    let d = scenario.topology.mean_degree(n);
    // Churn per initiative step, matching the paper's x/1000 labels. The
    // scenario's churn rate anchors the paper's 30/1000 level; the sweep
    // rescales the whole level ladder with it (scale 1.0 — i.e. exactly
    // the paper's rates — for the preset).
    let top = match scenario.churn {
        ChurnModel::Rate { rate } => rate,
        _ => 0.03,
    };
    let scale = top / 0.03;
    let levels = [30.0f64, 10.0, 3.0, 0.5, 0.0];
    let rates = levels.map(|l| l / 1000.0 * scale);
    let labels: Vec<String> = levels
        .iter()
        .map(|&l| {
            if l == 0.0 {
                "none".to_string()
            } else {
                format!("{}/1000", l * scale)
            }
        })
        .collect();
    let units = 20usize;
    let repetitions = if ctx.quick { 2 } else { 8 };

    let mut result = ExperimentResult::new(
        "fig3",
        "Figure 3: disorder vs time under continuous churn",
        format!("n={n}, d={d}, 1-matching, from C_empty, {repetitions} runs averaged"),
        {
            let mut cols = vec!["initiatives_per_peer".to_string()];
            cols.extend(labels.iter().map(|l| format!("disorder_churn_{l}")));
            cols
        },
    );

    let mut traces = vec![vec![0.0f64; units + 1]; rates.len()];
    for (c, &rate) in rates.iter().enumerate() {
        let variant = scenario.clone().with_churn(if rate == 0.0 {
            ChurnModel::None
        } else {
            ChurnModel::Rate { rate }
        });
        for rep in 0..repetitions {
            let mut rng = common::rng(scenario.seed, 0x0300 + ((c as u64) << 8) + rep as u64);
            let mut churn = variant.build_churn(&mut rng).expect("valid scenario");
            traces[c][0] += churn.dynamics().disorder();
            for t in 1..=units {
                churn.run_base_unit(&mut rng);
                traces[c][t] += churn.dynamics().disorder();
            }
        }
        for t in 0..=units {
            traces[c][t] /= repetitions as f64;
        }
    }

    for t in 0..=units {
        let mut row = vec![t as f64];
        row.extend(traces.iter().map(|tr| tr[t]));
        result.push_row(row);
    }

    // Steady-state disorder: mean over the last 5 base units.
    let steady: Vec<f64> = traces
        .iter()
        .map(|tr| tr[units - 4..=units].iter().sum::<f64>() / 5.0)
        .collect();
    result.check(
        "no churn reaches the stable configuration",
        steady[4] < 1e-4,
        format!("steady disorder without churn: {:.6}", steady[4]),
    );
    for w in 0..rates.len() - 1 {
        result.check(
            format!(
                "disorder ordered by churn ({} > {})",
                labels[w],
                labels[w + 1]
            ),
            steady[w] > steady[w + 1],
            format!("{:.5} > {:.5}", steady[w], steady[w + 1]),
        );
    }
    result.check(
        "disorder kept under control at the highest churn",
        steady[0] < 0.5,
        format!("steady disorder at 30/1000: {:.4}", steady[0]),
    );
    // Rough proportionality: steady disorder ratio between 30/1000 and
    // 3/1000 within a factor ~3 of the 10x rate ratio.
    let ratio = steady[0] / steady[2].max(1e-9);
    result.check(
        "average disorder roughly proportional to churn rate",
        ratio > 3.0 && ratio < 30.0,
        format!("steady(30/1000)/steady(3/1000) = {ratio:.2} (rates ratio 10)"),
    );
    result.note(
        "Paper: 'the disorder is kept under control... The average disorder is roughly \
         proportional to the churn rate.'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 5,
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 21);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
