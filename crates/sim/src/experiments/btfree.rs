//! BTFREE (extension experiment): a free-rider-share sweep over the
//! swarm's [`BehaviorMix`].
//!
//! Legout et al.'s *Clustering and Sharing Incentives in BitTorrent
//! Systems* (arXiv cs/0703107) studies how Tit-for-Tat's incentive
//! structure punishes non-contributors. This kernel sweeps the fraction of
//! free-riding leechers from 0 % to 50 % in a fluid-content swarm and
//! measures what each population earns: free riders live exclusively off
//! the optimistic ("generous") slots, so their download stays well below
//! the compliant population's at every level, while total swarm throughput
//! shrinks with the withdrawn capacity.

use strat_scenario::{BehaviorMix, CapacityModel, Scenario, SwarmParams, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// Free-rider fractions swept, in percent of the leecher population.
const LEVELS: [usize; 6] = [0, 10, 20, 30, 40, 50];

/// The sweep's base scenario: a fluid-content swarm with Figure 10
/// bandwidths in shuffled order and an all-compliant baseline mix (the
/// kernel derives the sweep levels from it).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let leechers = if ctx.quick { 150 } else { 600 };
    Scenario::new("btfree", leechers)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_capacity(CapacityModel::SaroiuShuffled {
            shuffle_seed: ctx.seed ^ 0xf4ee,
        })
        .with_swarm(SwarmParams {
            seeds: 2,
            seed_upload_kbps: 1000.0,
            fluid_content: true,
            swarm_seed: ctx.seed ^ 0xf4ee,
            behavior: BehaviorMix::compliant(),
            ..SwarmParams::default()
        })
}

/// Runs the free-rider sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the free-rider sweep derived from an arbitrary base scenario: each
/// level rebuilds the scenario with `free_riders = level % · leechers`
/// (riders occupy the top leecher indices — bandwidth-representative under
/// shuffled capacities).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm section.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let leechers = scenario.peers;
    let rounds = if ctx.quick { 60u64 } else { 150 };
    let base_params = scenario
        .swarm
        .clone()
        .unwrap_or_else(|| panic!("btfree scenario needs a swarm section"));

    let mut result = ExperimentResult::new(
        "btfree",
        "Free-rider share sweep: TFT punishes non-contributors",
        format!(
            "{leechers} leechers + {} seeds, fluid content, {rounds} rounds, riders at {LEVELS:?} %",
            base_params.seeds
        ),
        vec![
            "free_rider_pct".into(),
            "riders".into(),
            "compliant_mean_down".into(),
            "rider_mean_down".into(),
            "rider_to_compliant".into(),
            "total_up_kbit".into(),
        ],
    );

    let mut totals: Vec<f64> = Vec::new();
    let mut ratios: Vec<Option<f64>> = Vec::new();
    let mut riders_clean = true;
    for pct in LEVELS {
        let riders = leechers * pct / 100;
        let level_scenario = scenario.clone().with_swarm(SwarmParams {
            behavior: BehaviorMix {
                free_riders: riders,
                altruists: base_params.behavior.altruists,
            },
            ..base_params.clone()
        });
        let mut swarm = level_scenario
            .build_swarm(&mut common::rng(scenario.seed, 0xf4))
            .unwrap_or_else(|e| panic!("btfree scenario: {e}"));
        swarm.run_rounds(rounds);

        // Riders occupy the top leecher indices (the BehaviorMix layout).
        let compliant_down: Vec<f64> = (0..leechers - riders)
            .map(|p| swarm.peer(p).total_downloaded())
            .collect();
        let rider_down: Vec<f64> = (leechers - riders..leechers)
            .map(|p| swarm.peer(p).total_downloaded())
            .collect();
        riders_clean &= (leechers - riders..leechers)
            .all(|p| swarm.peer(p).total_uploaded() == 0.0 && swarm.tft_unchoked(p).is_empty());
        let total_up: f64 = (0..swarm.peer_count())
            .map(|p| swarm.peer(p).total_uploaded())
            .sum();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        let compliant_mean = mean(&compliant_down);
        let rider_mean = if riders > 0 { mean(&rider_down) } else { 0.0 };
        let ratio = (riders > 0 && compliant_mean > 0.0).then(|| rider_mean / compliant_mean);
        totals.push(total_up);
        ratios.push(ratio);
        result.push_row(vec![
            pct as f64,
            riders as f64,
            compliant_mean,
            rider_mean,
            // 0.0 stands in for "no riders" (NaN would break row
            // comparisons downstream).
            ratio.unwrap_or(0.0),
            total_up,
        ]);
    }

    result.check(
        "free riders never upload and hold no TFT slots",
        riders_clean,
        "checked at every sweep level".to_string(),
    );
    let rider_ratios: Vec<f64> = ratios.iter().copied().flatten().collect();
    result.check(
        "free riders earn well below the compliant mean at every level",
        !rider_ratios.is_empty() && rider_ratios.iter().all(|&r| r < 0.8),
        format!("rider/compliant ratios: {rider_ratios:?}"),
    );
    result.check(
        "total swarm throughput shrinks with the withdrawn capacity",
        totals.windows(2).all(|w| w[1] < w[0]),
        format!("total upload per level: {totals:?}"),
    );

    result.note(
        "Free riders subsist on the optimistic economy alone — the paper's \
         'generous connections' bound their intake, which is exactly the \
         incentive mechanism the §6 b-matching model attributes to TFT."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
