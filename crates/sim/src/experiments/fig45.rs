//! Figures 4 and 5: the structure of constant b-matching on a complete
//! acceptance graph, and the effect of a single extra connection.
//!
//! Figure 4: with `b₀ = 2` and total knowledge, the collaboration graph is
//! a sequence of disjoint `(b₀+1)`-cliques of consecutive ranks.
//! Figure 5: granting one extra connection to peer 1 chains the clusters
//! into a single connected component.

use strat_core::{cluster, GlobalRanking};
use strat_graph::{components::Components, NodeId};
use strat_scenario::{CapacityModel, Scenario};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figures 4–5 scenario: 9 peers, complete knowledge, constant
/// `b₀ = 2`; the kernel grants peer 1 its extra connection for Figure 5.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    Scenario::new("fig45", 9)
        .with_seed(ctx.seed)
        .with_capacity(CapacityModel::Constant { value: 2.0 })
}

/// Runs the Figures 4–5 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figures 4–5 kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers; // 3k+3 peers as in the paper's drawing
    let b0 = match scenario.capacity {
        CapacityModel::Constant { value } => value as u32,
        _ => 2,
    };
    let ranking = GlobalRanking::identity(n);

    let mut result = ExperimentResult::new(
        "fig45",
        "Figures 4-5: clusters of constant b-matching; one extra connection",
        format!("complete acceptance graph, n={n}, b0={b0}"),
        vec![
            "peer".into(),
            "component_fig4".into(),
            "degree_fig4".into(),
            "component_fig5".into(),
            "degree_fig5".into(),
        ],
    );

    // Figure 4: constant b0-matching.
    let mut rng = common::rng(scenario.seed, 0x45);
    let m4 = scenario.stable_matching(&mut rng).expect("valid scenario");
    let comps4 = Components::of(&m4.to_graph());

    // Figure 5: same but peer 1 (rank 0) gets one extra slot.
    let mut caps5: Vec<f64> = vec![f64::from(b0); n];
    caps5[0] += 1.0;
    let fig5 = scenario
        .clone()
        .with_capacity(CapacityModel::Explicit { values: caps5 });
    let m5 = fig5.stable_matching(&mut rng).expect("valid scenario");
    let comps5 = Components::of(&m5.to_graph());

    for p in 0..n {
        let v = NodeId::new(p);
        result.push_row(vec![
            (p + 1) as f64, // paper's 1-based label
            comps4.component_of(v) as f64,
            m4.degree(v) as f64,
            comps5.component_of(v) as f64,
            m5.degree(v) as f64,
        ]);
    }

    let stats4 = cluster::cluster_stats(&ranking, &m4);
    result.check(
        "fig4: disjoint (b0+1)-cliques",
        comps4.sizes() == [3, 3, 3] && (0..n).all(|p| m4.degree(NodeId::new(p)) == b0 as usize),
        format!("component sizes {:?}", comps4.sizes()),
    );
    result.check(
        "fig4: clusters are consecutive ranks",
        (0..n).all(|p| {
            comps4.component_of(NodeId::new(p)) == comps4.component_of(NodeId::new(3 * (p / 3)))
        }),
        "peers {1,2,3}, {4,5,6}, {7,8,9} cluster together".to_string(),
    );
    result.check(
        "fig5: one extra connection connects the graph",
        comps5.is_connected(),
        format!("component sizes {:?}", comps5.sizes()),
    );
    result.note(format!(
        "fig4 stats: mean cluster size {:.2}, MMO {:.3} (closed form {:.3})",
        stats4.mean_cluster_size,
        stats4.mmo,
        cluster::mmo_constant_exact(b0)
    ));
    result.note(
        "Paper §4.1: 'it is impossible for a 1-regular graph to be connected, and the \
         cycle is the unique 2-regular connected graph. It follows that it is better to \
         set b0 >= 3' — the basic argument for BitTorrent's 4 default slots."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper_drawings() {
        let result = run(&ExperimentContext::default());
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        assert_eq!(result.rows.len(), 9);
    }
}
