//! Figures 4 and 5: the structure of constant b-matching on a complete
//! acceptance graph, and the effect of a single extra connection.
//!
//! Figure 4: with `b₀ = 2` and total knowledge, the collaboration graph is
//! a sequence of disjoint `(b₀+1)`-cliques of consecutive ranks.
//! Figure 5: granting one extra connection to peer 1 chains the clusters
//! into a single connected component.

use strat_core::{cluster, stable_configuration_complete, Capacities, GlobalRanking};
use strat_graph::{components::Components, NodeId};

use crate::runner::{ExperimentContext, ExperimentResult};

/// Runs the Figures 4–5 reproduction.
#[must_use]
pub fn run(_ctx: &ExperimentContext) -> ExperimentResult {
    let n = 9usize; // 3k+3 peers as in the paper's drawing
    let b0 = 2u32;
    let ranking = GlobalRanking::identity(n);

    let mut result = ExperimentResult::new(
        "fig45",
        "Figures 4-5: clusters of constant b-matching; one extra connection",
        format!("complete acceptance graph, n={n}, b0={b0}"),
        vec![
            "peer".into(),
            "component_fig4".into(),
            "degree_fig4".into(),
            "component_fig5".into(),
            "degree_fig5".into(),
        ],
    );

    // Figure 4: constant b0-matching.
    let caps4 = Capacities::constant(n, b0);
    let m4 = stable_configuration_complete(&ranking, &caps4).expect("sizes match");
    let comps4 = Components::of(&m4.to_graph());

    // Figure 5: same but peer 1 (rank 0) gets one extra slot.
    let mut caps5 = Capacities::constant(n, b0);
    caps5.grant_extra(NodeId::new(0), 1);
    let m5 = stable_configuration_complete(&ranking, &caps5).expect("sizes match");
    let comps5 = Components::of(&m5.to_graph());

    for p in 0..n {
        let v = NodeId::new(p);
        result.push_row(vec![
            (p + 1) as f64, // paper's 1-based label
            comps4.component_of(v) as f64,
            m4.degree(v) as f64,
            comps5.component_of(v) as f64,
            m5.degree(v) as f64,
        ]);
    }

    let stats4 = cluster::cluster_stats(&ranking, &m4);
    result.check(
        "fig4: disjoint (b0+1)-cliques",
        comps4.sizes() == [3, 3, 3] && (0..n).all(|p| m4.degree(NodeId::new(p)) == b0 as usize),
        format!("component sizes {:?}", comps4.sizes()),
    );
    result.check(
        "fig4: clusters are consecutive ranks",
        (0..n).all(|p| {
            comps4.component_of(NodeId::new(p)) == comps4.component_of(NodeId::new(3 * (p / 3)))
        }),
        "peers {1,2,3}, {4,5,6}, {7,8,9} cluster together".to_string(),
    );
    result.check(
        "fig5: one extra connection connects the graph",
        comps5.is_connected(),
        format!("component sizes {:?}", comps5.sizes()),
    );
    result.note(format!(
        "fig4 stats: mean cluster size {:.2}, MMO {:.3} (closed form {:.3})",
        stats4.mean_cluster_size,
        stats4.mmo,
        cluster::mmo_constant_exact(b0)
    ));
    result.note(
        "Paper §4.1: 'it is impossible for a 1-regular graph to be connected, and the \
         cycle is the unique 2-regular connected graph. It follows that it is better to \
         set b0 >= 3' — the basic argument for BitTorrent's 4 default slots."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_matches_paper_drawings() {
        let result = run(&ExperimentContext::default());
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        assert_eq!(result.rows.len(), 9);
    }
}
