//! One module per paper artifact. Each exposes
//! `run(&ExperimentContext) -> ExperimentResult`.

pub mod bt1;
pub mod ext1;
pub mod ext2;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fluid;
pub mod mmo;
pub mod table1;

pub(crate) mod common {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_core::{Capacities, Dynamics, GlobalRanking, InitiativeStrategy, RankedAcceptance};
    use strat_graph::generators;

    /// Deterministic RNG stream `stream` derived from the context seed.
    pub fn rng(seed: u64, stream: u64) -> ChaCha8Rng {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(stream);
        rng
    }

    /// Builds the paper's standard simulation setup: `G(n, d)` acceptance
    /// graph, identity ranking, constant 1-matching, best-mate initiatives.
    pub fn one_matching_dynamics(n: usize, d: f64, rng: &mut ChaCha8Rng) -> Dynamics {
        let graph = generators::erdos_renyi_mean_degree(n, d, rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(n)).expect("sizes match");
        let caps = Capacities::constant(n, 1);
        Dynamics::new(acc, caps, InitiativeStrategy::BestMate).expect("sizes match")
    }
}
