//! One module per paper artifact. Each exposes three entry points wired
//! into the [`runner`](crate::runner) registry:
//!
//! * `preset(&ExperimentContext) -> Scenario` — the named declarative
//!   scenario for the figure (what `experiments scenarios --dump` writes);
//! * `run_scenario(&ExperimentContext, &Scenario) -> ExperimentResult` —
//!   the measurement kernel, driven entirely by the scenario (sweeps are
//!   expressed as `with_*` variants of it);
//! * `run(&ExperimentContext) -> ExperimentResult` — shorthand for
//!   `run_scenario(ctx, &preset(ctx))`.
//!
//! All simulation state is instantiated through the scenario layer
//! (`strat-scenario`); experiment modules never construct `Dynamics` or
//! `SwarmConfig` by hand.

pub mod bt1;
pub mod btchurn;
pub mod btcluster;
pub mod btevent;
pub mod btfault;
pub mod btflash;
pub mod btfree;
pub mod btmulti;
pub mod btoverlay;
pub mod ext1;
pub mod ext2;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fluid;
pub mod latstrat;
pub mod mmo;
pub mod table1;

pub(crate) mod common {
    use strat_scenario::{Scenario, TopologyModel};

    pub use strat_scenario::stream_rng as rng;

    /// The paper's standard declarative setup: `G(n, d)` acceptance graph,
    /// identity ranking, constant 1-matching, best-mate initiatives.
    /// Experiments attach their own name/seed/churn on top.
    pub fn one_matching_scenario(id: &str, n: usize, d: f64) -> Scenario {
        Scenario::new(id, n).with_topology(TopologyModel::ErdosRenyiMeanDegree { d })
    }
}
