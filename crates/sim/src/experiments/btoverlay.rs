//! BTOVERLAY (validation experiment): the tracker's peer-list cap shapes
//! the live overlay — Al-Hamra, Legout & Barakat's *Understanding the
//! Properties of the BitTorrent Overlay* (INRIA RR-6199, 2007).
//!
//! Al-Hamra et al. showed that the overlay a BitTorrent tracker grows is
//! governed by one knob: the number of peers handed back per announce.
//! Small peer lists starve arrivals of attachment points, thinning the
//! overlay (lower degree, larger diameter, weaker robustness); once the
//! cap clears the client's connection target the overlay saturates and
//! further list length changes nothing.
//!
//! This kernel sweeps the `tracker.peer_list_cap` scenario axis over an
//! open-membership swarm (Poisson arrivals, completion-linger-depart
//! churn) and measures the resulting overlay with
//! [`strat_bittorrent::overlay::snapshot`]: degree, components, BFS
//! diameter, seed reachability and stalled peers. A [`TraceObserver`]
//! rides along and its arrival/departure event streams must replay the
//! session's own counters exactly — the live-overlay metrics come off the
//! unmodified engine.
//!
//! Rows: sampled overlay trajectories per cap (`round > 0`) plus one
//! final-state summary row per cap (`round = −1`); `cap = 0` encodes the
//! uncapped (full peer list) control.

use strat_bittorrent::{overlay, TraceObserver};
use strat_scenario::{
    ArrivalProcess, CapacityModel, DepartureRules, Scenario, SessionConfig, SwarmParams,
    TopologyModel,
};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The peer-list caps swept (`None` = uncapped full-list control).
fn caps(quick: bool) -> Vec<Option<usize>> {
    if quick {
        vec![Some(3), Some(8), None]
    } else {
        vec![Some(3), Some(5), Some(8), Some(16), None]
    }
}

/// Simulation horizon in rounds.
fn horizon(quick: bool) -> u64 {
    if quick {
        120
    } else {
        200
    }
}

/// Upload capacity of every peer (kbps).
const UPLOAD_KBPS: f64 = 400.0;
/// Permanent seeds.
const SEEDS: usize = 2;
/// Per-peer connection target the wiring pass aims for.
const TARGET_DEGREE: usize = 8;

/// One sweep cell: the base scenario with the churn section's
/// `peer_list_cap` swapped for the cell's cap.
fn cell_scenario(base: &Scenario, cap: Option<usize>) -> Scenario {
    let swarm = base.swarm.clone().expect("btoverlay has a swarm section");
    let churn = swarm.churn.clone().expect("btoverlay has a churn section");
    base.clone().with_swarm(SwarmParams {
        churn: Some(SessionConfig {
            peer_list_cap: cap,
            compact_threshold: None,
            ..churn
        }),
        ..swarm
    })
}

/// The base scenario: an open swarm bootstrapped sparse (`d = 2`) so the
/// wiring pass — and therefore the peer-list cap — builds the overlay;
/// Poisson arrivals of empty leechers, lingering promoted seeds.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let base = Scenario::new("btoverlay", 40)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 2.0 })
        .with_capacity(CapacityModel::Constant { value: UPLOAD_KBPS })
        .with_swarm(SwarmParams {
            seeds: SEEDS,
            seed_upload_kbps: UPLOAD_KBPS,
            piece_count: 256,
            piece_size_kbit: 500.0,
            initial_completion: 0.3,
            fluid_content: false,
            seed_after_completion: true,
            swarm_seed: ctx.seed ^ 0x0b7a,
            churn: Some(SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: 4.0 },
                departure: DepartureRules {
                    leave_on_completion: 0.0,
                    seed_leave_prob: 0.3,
                    seed_exodus_round: None,
                    abort_prob: 0.0,
                },
                arrival_upload_kbps: UPLOAD_KBPS,
                arrival_completion: 0.0,
                target_degree: TARGET_DEGREE,
                session_seed: ctx.seed ^ 0x0b7a,
                batched_wiring: false,
                peer_list_cap: None,
                compact_threshold: None,
            }),
            ..SwarmParams::default()
        });
    cell_scenario(&base, caps(ctx.quick)[0])
}

/// Runs the peer-list-cap sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the cap sweep derived from an arbitrary base scenario (which
/// must carry `swarm.churn`).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm or churn section.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let sweep = caps(ctx.quick);
    let rounds = horizon(ctx.quick);
    let sample_every = 20u64;

    let mut result = ExperimentResult::new(
        "btoverlay",
        "Peer-list cap shapes the live overlay (Al-Hamra et al.)",
        format!(
            "caps {sweep:?}, target degree {TARGET_DEGREE}, {rounds} rounds, \
             Poisson(4) arrivals, sparse d = 2 bootstrap"
        ),
        vec![
            "cap".into(),   // 0 = uncapped control
            "round".into(), // -1 marks the cap's final-state summary row
            "present".into(),
            "mean_degree".into(),
            "components".into(),
            "largest_component".into(),
            "diameter".into(),
            "seed_reachable".into(),
            "stalled".into(),
        ],
    );

    let mut degrees: Vec<f64> = Vec::new();
    let mut diameters: Vec<f64> = Vec::new();
    let mut connectivity_ok = true;
    let mut trace_ok = true;

    for &cap in &sweep {
        let cell = cell_scenario(scenario, cap);
        let cap_col = cap.map_or(0.0, |c| c as f64);
        let mut session = cell
            .build_session(&mut common::rng(cell.seed, 0xee))
            .unwrap_or_else(|e| panic!("btoverlay scenario: {e}"));
        let obs = TraceObserver::new();

        for round in 0..rounds {
            session.run_rounds_with(1, &obs);
            if (round + 1).is_multiple_of(sample_every) {
                let snap = overlay::snapshot(session.swarm());
                result.push_row(vec![
                    cap_col,
                    (round + 1) as f64,
                    snap.present as f64,
                    snap.mean_degree,
                    snap.components as f64,
                    snap.largest_component as f64,
                    snap.diameter as f64,
                    snap.seed_reachable as f64,
                    snap.stalled as f64,
                ]);
            }
        }

        let snap = overlay::snapshot(session.swarm());
        result.push_row(vec![
            cap_col,
            -1.0,
            snap.present as f64,
            snap.mean_degree,
            snap.components as f64,
            snap.largest_component as f64,
            snap.diameter as f64,
            snap.seed_reachable as f64,
            snap.stalled as f64,
        ]);

        degrees.push(snap.mean_degree);
        diameters.push(snap.diameter as f64);
        connectivity_ok &= snap.largest_component as f64 >= 0.9 * snap.present as f64;

        // The trace layer's event streams must replay the session's own
        // bookkeeping: the overlay metrics come off an unmodified engine.
        let log = obs.into_log();
        let stats = session.stats();
        trace_ok &= log.arrivals.len() as u64 == stats.arrivals;
        trace_ok &= (log.departures.len() + log.crashes.len()) as u64 == stats.departures;
    }

    // The sweep lists caps in increasing tightness order ending with the
    // uncapped control, so `degrees`/`diameters` are ordered by cap.
    let last = sweep.len() - 1;
    result.check(
        "mean overlay degree grows monotonically with the peer-list cap",
        degrees.windows(2).all(|w| w[1] >= w[0] - 0.3),
        format!("final mean degrees {degrees:?}"),
    );
    result.check(
        "the tightest cap thins the overlay well below the uncapped control",
        degrees[0] + 1.0 <= degrees[last],
        format!(
            "mean degree {:.2} capped at {:?} vs {:.2} uncapped",
            degrees[0], sweep[0], degrees[last]
        ),
    );
    result.check(
        "the tightest cap stretches the overlay diameter (Al-Hamra's effect)",
        diameters[0] >= diameters[last],
        format!("final diameters {diameters:?}"),
    );
    result.check(
        "the swarm stays effectively connected at every cap (largest component >= 90%)",
        connectivity_ok,
        "checked at every cap".to_string(),
    );
    result.check(
        "observer arrival/departure streams replay the session counters exactly",
        trace_ok,
        "checked at every cap".to_string(),
    );

    result.note(
        "Al-Hamra et al.'s peer-list-cap effect, on the session engine: starving \
         announces of candidates (cap below the connection target) thins the \
         overlay and stretches its diameter, while caps at or above the target \
         reproduce the uncapped overlay. Measured through the RunObserver tap \
         and the overlay module on unmodified engine state."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
