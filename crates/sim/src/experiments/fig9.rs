//! Figure 9: validation of the independent `b₀`-matching model
//! (Algorithm 3) against brute-force simulation.
//!
//! Paper setup: 2-matching, `n = 5000`, `p = 1 %` (≈ 50 neighbours per
//! peer), observing peer 3000's first and second choice distributions,
//! centred at rank 3000. The paper drew 10⁶ Erdős–Rényi realizations
//! ("simulations requiring several weeks"); we default to a few thousand on
//! a reduced instance in quick mode and tens of thousands otherwise —
//! unbiased, just wider error bars (see DESIGN.md).

use strat_analytic::{b_matching, monte_carlo};
use strat_scenario::{CapacityModel, Scenario, TopologyModel};

use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 9 scenario: the independent 2-matching system Algorithm 3
/// is validated on (quick profiles shrink `n` in the same `d` regime).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let (n, p) = if ctx.quick {
        (600, 0.05) // d = 30, same regime, CI-sized
    } else {
        (5000, 0.01)
    };
    Scenario::new("fig9", n)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiEdgeProbability { p })
        .with_capacity(CapacityModel::Constant { value: 2.0 })
}

/// Runs the Figure 9 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 9 kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    assert!(n >= 12, "fig9 scenario needs at least 12 peers, got {n}");
    let p = scenario.topology.edge_probability(n);
    let realizations = if ctx.quick { 1500u64 } else { 20_000 };
    let b0 = match scenario.capacity {
        CapacityModel::Constant { value } => value as u32,
        _ => 2,
    };
    let peer = n * 3000 / 5000 - 1; // paper's peer 3000, scaled & 0-based
    let window = n / 6; // plot/report window around the peer

    let analytic = b_matching::solve(n, p, b0, &[peer]);
    let cfg = monte_carlo::MonteCarloConfig {
        n,
        p,
        b0,
        realizations,
        seed: scenario.seed ^ 0x9,
        threads: 16,
    };
    let empirical = monte_carlo::estimate_choice_distribution(&cfg, peer);

    let mut result = ExperimentResult::new(
        "fig9",
        "Figure 9: first/second choice distributions, simulation vs Algorithm 3",
        format!(
            "2-matching, n={n}, p={p}, peer {}, {realizations} realizations",
            peer + 1
        ),
        vec![
            "rank_offset".into(),
            "first_choice_simulated".into(),
            "second_choice_simulated".into(),
            "first_choice_estimated".into(),
            "second_choice_estimated".into(),
        ],
    );

    let emp1 = empirical.row(1);
    let emp2 = empirical.row(2);
    let ana1 = analytic.choice_row(peer, 1).expect("requested row");
    let ana2 = analytic.choice_row(peer, 2).expect("requested row");
    let lo = peer.saturating_sub(window);
    let hi = (peer + window).min(n - 1);
    for j in lo..=hi {
        result.push_row(vec![
            j as f64 - peer as f64,
            emp1[j],
            emp2[j],
            ana1[j],
            ana2[j],
        ]);
    }

    // Agreement criteria: L1 distance between empirical and analytic rows.
    let l1_first = monte_carlo::l1_distance(&emp1, ana1);
    let l1_second = monte_carlo::l1_distance(&emp2, ana2);
    // Statistical noise floor: L1 of a multinomial estimate with N samples
    // over k effective support points is ~ sqrt(k/N). Mate offsets carry
    // meaningful mass over ~ +/- 4n/d ranks, i.e. k ~ 8/p.
    let k_eff = 8.0 / p;
    let noise = (k_eff / realizations as f64).sqrt();
    let gate = (3.0 * noise).clamp(0.10, 1.2);
    result.check(
        "first-choice distribution matches Algorithm 3",
        l1_first < gate,
        format!("L1 = {l1_first:.4} (gate {gate:.3})"),
    );
    result.check(
        "second-choice distribution matches Algorithm 3",
        l1_second < gate,
        format!("L1 = {l1_second:.4} (gate {gate:.3})"),
    );
    // First choices outrank second choices on both sides.
    let mean_rank = |row: &[f64]| {
        let mass: f64 = row.iter().sum();
        row.iter()
            .enumerate()
            .map(|(j, d)| j as f64 * d)
            .sum::<f64>()
            / mass
    };
    result.check(
        "first choice outranks second choice (both methods)",
        mean_rank(&emp1) < mean_rank(&emp2) && mean_rank(ana1) < mean_rank(ana2),
        format!(
            "simulated means {:.0}/{:.0}, estimated {:.0}/{:.0}",
            mean_rank(&emp1),
            mean_rank(&emp2),
            mean_rank(ana1),
            mean_rank(ana2)
        ),
    );
    result.note(format!(
        "Choice masses — simulated: {:.4}/{:.4}, estimated: {:.4}/{:.4}",
        empirical.choice_mass(1),
        empirical.choice_mass(2),
        analytic.choice_mass(peer, 1),
        analytic.choice_mass(peer, 2),
    ));
    result.note(
        "Paper ran 10^6 realizations over several weeks; the estimator here is identical \
         and unbiased, with error bars scaled by sqrt(10^6/realizations)."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_validates_algorithm3() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 17,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
