//! Figure 8: the three regimes of the mate distribution
//! (`n = 5000`, `p = 0.5 %`, independent 1-matching).
//!
//! * Peer 200 (well ranked): mates concentrate just below its own rank,
//!   with an almost geometric right tail;
//! * Peer 2500 (central): symmetric distribution that simply *shifts* with
//!   the peer's rank — the finite-horizon / stratification property;
//! * Peer 4800 (poorly ranked): the shifted distribution is cut at the
//!   bottom; the missing mass is the probability of staying unmatched. The
//!   worst peer is matched in exactly half of the cases.

use strat_analytic::one_matching;
use strat_scenario::{Scenario, TopologyModel};

use crate::runner::{ExperimentContext, ExperimentResult};

/// The Figure 8 scenario: the independent 1-matching system at `d = 25`
/// (quick profiles shrink `n` and rescale `p` to keep `d` fixed).
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let n = if ctx.quick { 2000 } else { 5000 };
    let p = if ctx.quick {
        0.005 * 5000.0 / 2000.0
    } else {
        0.005
    }; // keep d = 25
    Scenario::new("fig8", n)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiEdgeProbability { p })
}

/// Runs the Figure 8 reproduction on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the Figure 8 kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    assert!(n >= 25, "fig8 scenario needs at least 25 peers, got {n}");
    let p = scenario.topology.edge_probability(n);
    // Paper peers 200 / 2500 / 4800 (1-based) scaled to n.
    let peers = [n * 200 / 5000 - 1, n * 2500 / 5000 - 1, n * 4800 / 5000 - 1];
    let worst = n - 1;
    let mut request = peers.to_vec();
    request.push(worst);
    let sol = one_matching::solve(n, p, &request);

    let mut result = ExperimentResult::new(
        "fig8",
        "Figure 8: mate distribution D(i, .) for a top, middle and bottom peer",
        format!(
            "independent 1-matching, n={n}, p={p:.4} (d = {:.1})",
            p * (n as f64 - 1.0)
        ),
        vec![
            "rank_j".into(),
            format!("D_peer{}", peers[0] + 1),
            format!("D_peer{}", peers[1] + 1),
            format!("D_peer{}", peers[2] + 1),
        ],
    );

    let rows: Vec<&[f64]> = peers
        .iter()
        .map(|&i| sol.row(i).expect("row requested"))
        .collect();
    for j in 0..n {
        result.push_row(vec![(j + 1) as f64, rows[0][j], rows[1][j], rows[2][j]]);
    }

    // Shape criteria.
    let mean_rank = |row: &[f64]| {
        let mass: f64 = row.iter().sum();
        row.iter()
            .enumerate()
            .map(|(j, d)| j as f64 * d)
            .sum::<f64>()
            / mass
    };
    let mid = peers[1];
    let mid_mean = mean_rank(rows[1]);
    result.check(
        "central peer's distribution is centred on its own rank",
        (mid_mean - mid as f64).abs() < n as f64 * 0.01,
        format!("mean mate rank {:.1} vs own rank {}", mid_mean, mid),
    );
    // Symmetry of the central distribution: mass within +/- w balanced.
    let w = n / 25;
    let left: f64 = rows[1][mid - w..mid].iter().sum();
    let right: f64 = rows[1][mid + 1..=mid + w].iter().sum();
    result.check(
        "central distribution is symmetric",
        (left - right).abs() / (left + right) < 0.1,
        format!("mass left {left:.3} vs right {right:.3}"),
    );
    // Shift invariance: D(mid, mid+k) ~ D(mid', mid'+k) for mid' in the
    // 25%-80% band — compare with a second solve.
    let mid2 = n * 3500 / 5000;
    let sol2 = one_matching::solve(n, p, &[mid2]);
    let row2 = sol2.row(mid2).expect("row requested");
    let max_shift_err = (1..w)
        .map(|k| {
            let a = rows[1][mid + k] - row2[mid2 + k];
            let b = rows[1][mid - k] - row2[mid2 - k];
            a.abs().max(b.abs())
        })
        .fold(0.0f64, f64::max);
    result.check(
        "distribution shifts with rank (finite-horizon property)",
        max_shift_err < 1e-4,
        format!("max |D(mid, mid+k) - D(mid', mid'+k)| = {max_shift_err:.2e}"),
    );
    // Top peer: mass concentrated above (below-rank mates) and geometric-ish
    // right part.
    let top = peers[0];
    let above: f64 = rows[0][top + 1..].iter().sum();
    let below: f64 = rows[0][..top].iter().sum();
    result.check(
        "top peer mostly mates below its rank",
        above > below,
        format!("mass below-rank {above:.3} vs above-rank {below:.3}"),
    );
    // Bottom peer: truncated distribution leaves unmatched probability.
    let unmatched_bottom = sol.unmatched_probability(peers[2]);
    result.check(
        "bottom peer has visible unmatched probability",
        unmatched_bottom > 0.001,
        format!("P(unmatched) = {unmatched_bottom:.4}"),
    );
    let unmatched_worst = sol.unmatched_probability(worst);
    result.check(
        "worst peer is matched in half of the cases",
        (unmatched_worst - 0.5).abs() < 0.05,
        format!("P(unmatched, worst) = {unmatched_worst:.4}"),
    );
    result.note(
        "Paper §5.3: 'the distribution simply shifts with the rank of the peer (for top \
         25% to top 80% peers)... A particular case for the worst peer is that it will \
         be matched exactly in half of the cases.'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 13,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
