//! BTEVENT (extension experiment): the continuous-time event engine
//! validated against the multi-class fluid model.
//!
//! The round engine forces every peer onto one synchronous clock, which
//! makes genuine bandwidth heterogeneity untestable: a 2x-faster peer
//! still rechokes, transfers and completes on the same 10 s grid. The
//! event core (`strat_bittorrent::events`) lifts that restriction —
//! rechoke ticks, piece crossings, tracker announces and session churn
//! are timestamped events, and per-class speed multipliers scale both a
//! peer's upload shares and (through TFT reciprocation) its download
//! rate.
//!
//! Xu's heterogeneous extension of the Qiu–Srikant dynamics
//! ([`strat_analytic::fluid::BtMultiClassParams`]) predicts the regime
//! quantitatively: with per-class arrival rates `λ_i`, service rates
//! `μ_i` and a shared promoted-seed pool, the steady-state download
//! times `T_i = x̄_i/λ_i` fall with class speed, and the whole profile
//! follows one scalar fixed point `Σ λ_i/(η μ_i X + S) = 1`.
//!
//! This kernel sweeps the **heterogeneity spread** `s`: three speed
//! classes with multipliers `[1/s, 1, s]`, equal Poisson arrival flux
//! per class (round-robin assignment), run to stationarity on the event
//! clock. Measured per-class mean download times must (a) reproduce the
//! fluid `T_i` within a documented tolerance and (b) be strictly ordered
//! by class speed whenever `s > 1`.
//!
//! **Tolerance.** The fluid model assumes perfect proportional sharing.
//! The simulator attenuates the predicted stratification in two honest
//! ways: the optimistic-unchoke slot donates a quarter of every class's
//! capacity to a common pool (lifting the slow class above its
//! prediction), and fast peers outrun the swarm's piece availability
//! (capping them below theirs). Both effects pull the extreme classes
//! *toward the middle, never past it*. The documented acceptance bands:
//! at moderate spread (`s <= 1.5`) every class within 35 % of its fluid
//! `T_i`; at strong spread the middle class stays in that band while
//! each extreme class must land between its own and the middle class's
//! predictions.

use strat_analytic::fluid::BtMultiClassParams;
use strat_scenario::{
    ArrivalProcess, CapacityModel, DepartureRules, EventTiming, Scenario, SessionConfig,
    SwarmParams, TopologyModel,
};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

/// The sweep cells: heterogeneity spread `s` (class multipliers
/// `[1/s, 1, s]`; `s = 1` is the homogeneous control, `s = 2` the
/// strong-heterogeneity cell held to the attenuation band).
fn sweep(quick: bool) -> Vec<f64> {
    if quick {
        vec![1.5]
    } else {
        vec![1.0, 1.5, 2.0]
    }
}

/// Simulation horizon in rounds: `(warmup, measurement)`.
fn horizon(quick: bool) -> (u64, u64) {
    if quick {
        (100, 220)
    } else {
        (140, 300)
    }
}

/// Base upload capacity (kbps) of the middle class; classes scale it by
/// their multiplier.
const UPLOAD_KBPS: f64 = 400.0;
/// Permanent seeds. Exactly one per class: consecutive arena slots take
/// classes round-robin, so a 3-seed squad always covers all three
/// multipliers and the oracle's `mu_seed` is the exact class mean.
const SEEDS: usize = 3;
/// Total Poisson arrival rate (peers per round); round-robin class
/// assignment splits it evenly, `λ_i = λ/3`.
const LAMBDA: f64 = 3.0;
/// Promoted-seed departure rate per round.
const GAMMA: f64 = 0.35;
/// Speed classes per cell.
const CLASSES: usize = 3;

/// Class multipliers `[1/s, 1, s]` for spread `s`.
fn multipliers(spread: f64) -> Vec<f64> {
    vec![1.0 / spread, 1.0, spread]
}

/// The multi-class fluid parameters a spread cell maps to, given the
/// preset's file/round geometry: `μ_i = mult_i · upload_kbit_per_round /
/// file_kbit`, `η = 1`, one permanent seed per class.
fn fluid_params(scenario: &Scenario, spread: f64) -> BtMultiClassParams {
    let swarm = scenario
        .swarm
        .as_ref()
        .expect("btevent has a swarm section");
    let file_kbit = swarm.piece_count as f64 * swarm.piece_size_kbit;
    let mu_base = UPLOAD_KBPS * swarm.round_seconds / file_kbit;
    let mults = multipliers(spread);
    BtMultiClassParams {
        lambda: vec![LAMBDA / CLASSES as f64; CLASSES],
        mu: mults.iter().map(|m| mu_base * m).collect(),
        gamma: GAMMA,
        eta: 1.0,
        s0: SEEDS as f64,
        mu_seed: mu_base * mults.iter().sum::<f64>() / CLASSES as f64,
    }
}

/// One sweep cell derived from the base scenario: the timing section's
/// multipliers set to `[1/s, 1, s]` and the initial leecher pool set to
/// the cell's predicted total steady state (fast stationarity).
fn cell_scenario(base: &Scenario, spread: f64) -> Scenario {
    let params = fluid_params(base, spread);
    let steady = params.steady_state();
    let total: f64 = steady.leechers.iter().sum();
    let swarm = base.swarm.clone().expect("btevent has a swarm section");
    let timing = swarm.timing.clone().expect("btevent has a timing section");
    base.clone()
        .with_peers((total.round() as usize).max(CLASSES * 3))
        .with_swarm(SwarmParams {
            timing: Some(EventTiming {
                speed_multipliers: multipliers(spread),
                ..timing
            }),
            ..swarm
        })
}

/// The base scenario: constant 400 kbps capacities scaled per class,
/// `d = 20` overlay, a 512 × 250 kbit file (`1/μ = 32` rounds for the
/// middle class), 3 permanent seeds (one per class), Poisson arrivals of
/// empty leechers on the event clock, continuous piece crossings,
/// tracker announces every 3 rounds.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let spread = sweep(ctx.quick)[0];
    let base = Scenario::new("btevent", 9)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 20.0 })
        .with_capacity(CapacityModel::Constant { value: UPLOAD_KBPS })
        .with_swarm(SwarmParams {
            seeds: SEEDS,
            seed_upload_kbps: UPLOAD_KBPS,
            piece_count: 512,
            piece_size_kbit: 250.0,
            initial_completion: 0.5,
            fluid_content: false,
            seed_after_completion: true,
            swarm_seed: ctx.seed ^ 0xe7e4,
            churn: Some(SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: LAMBDA },
                departure: DepartureRules {
                    leave_on_completion: 0.0,
                    seed_leave_prob: GAMMA,
                    seed_exodus_round: None,
                    abort_prob: 0.0,
                },
                arrival_upload_kbps: UPLOAD_KBPS,
                arrival_completion: 0.0,
                target_degree: 20,
                session_seed: ctx.seed ^ 0xe7e4,
                batched_wiring: false,
                peer_list_cap: None,
                compact_threshold: None,
            }),
            timing: Some(EventTiming {
                rechoke_interval: 10.0,
                transfer_quantum: None,
                announce_interval: Some(30.0),
                speed_multipliers: multipliers(spread),
            }),
            ..SwarmParams::default()
        });
    cell_scenario(&base, spread)
}

/// Runs the heterogeneity sweep on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the speed-spread sweep derived from an arbitrary base scenario
/// (which must carry `swarm.churn` and `swarm.timing`).
///
/// # Panics
///
/// Panics if the scenario lacks a swarm, churn or timing section.
#[must_use]
pub fn run_scenario(ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let cells = sweep(ctx.quick);
    let (warmup, measure) = horizon(ctx.quick);

    let mut result = ExperimentResult::new(
        "btevent",
        "Event engine: speed-heterogeneity sweep vs the multi-class fluid model",
        format!(
            "spreads {cells:?}, {warmup}+{measure} rounds, {UPLOAD_KBPS} kbps base uploads, \
             lambda = {LAMBDA}/round over {CLASSES} classes, gamma = {GAMMA}, {SEEDS} seeds"
        ),
        vec![
            "spread".into(),
            "class".into(),
            "multiplier".into(),
            "measured_rounds".into(),
            "fluid_rounds".into(),
            "completions".into(),
        ],
    );

    // Worst relative error at moderate heterogeneity (spread <= 1.5).
    let mut max_rel_err = 0.0f64;
    // Attenuation band at strong heterogeneity (spread > 1.5): each
    // extreme class must land between its own fluid prediction and the
    // middle class's (redistribution pulls toward the middle, never
    // past it), the middle class within the moderate band.
    let mut attenuation_ok = true;
    let mut ordered = true;
    let mut turnover_ok = true;
    let mut accounting_ok = true;
    let mut counter_note = String::new();

    for &spread in &cells {
        let cell = cell_scenario(scenario, spread);
        let params = fluid_params(&cell, spread);
        let fluid_rounds = params.mean_download_rounds();
        let round_seconds = cell
            .swarm
            .as_ref()
            .expect("btevent has a swarm section")
            .round_seconds;
        let mut engine = cell
            .build_event_engine(&mut common::rng(cell.seed, 0xe7))
            .unwrap_or_else(|e| panic!("btevent scenario: {e}"));
        engine.run_for((warmup + measure) as f64 * round_seconds);

        // Per-class mean download time of peers that arrived after the
        // warmup horizon (initial peers and early arrivals see the
        // transient, not the steady state).
        let warmup_seconds = warmup as f64 * round_seconds;
        let mut sums = [0.0f64; CLASSES];
        let mut counts = [0u64; CLASSES];
        for rec in engine.completions() {
            if rec.arrival_time >= warmup_seconds / 2.0 && rec.arrival_time > 0.0 {
                sums[rec.class as usize] += rec.completion_time - rec.arrival_time;
                counts[rec.class as usize] += 1;
            }
        }
        let mults = multipliers(spread);
        let mut measured = [f64::NAN; CLASSES];
        for class in 0..CLASSES {
            if counts[class] > 0 {
                measured[class] = sums[class] / counts[class] as f64 / round_seconds;
            } else {
                turnover_ok = false;
            }
            result.push_row(vec![
                spread,
                class as f64,
                mults[class],
                measured[class],
                fluid_rounds[class],
                counts[class] as f64,
            ]);
        }
        if spread <= 1.5 {
            for class in 0..CLASSES {
                let rel = (measured[class] - fluid_rounds[class]).abs() / fluid_rounds[class];
                max_rel_err = max_rel_err.max(rel);
            }
        } else {
            // Slow class: attenuated from above, never faster than the
            // middle class's prediction. Fast class: mirrored. 5% slack
            // on the own-class side absorbs sampling noise.
            attenuation_ok &= measured[0] <= fluid_rounds[0] * 1.05
                && measured[0] >= fluid_rounds[1] * 0.95
                && measured[2] >= fluid_rounds[2] * 0.95
                && measured[2] <= fluid_rounds[1] * 1.05;
            let rel = (measured[1] - fluid_rounds[1]).abs() / fluid_rounds[1];
            max_rel_err = max_rel_err.max(rel);
        }
        if spread > 1.0 {
            ordered &= measured[0] > measured[1] && measured[1] > measured[2];
        }

        let stats = engine.stats();
        turnover_ok &= stats.arrivals > 0 && stats.departures > 0;
        // Stale-plan transfers and stale-generation timers dispatch
        // without firing their per-kind counter, so the total dominates
        // the sum; every kind must actually occur.
        accounting_ok &= stats.events
            >= stats.arrivals
                + stats.departures
                + stats.transfers
                + stats.rechokes
                + stats.announces
            && stats.transfers > 0
            && stats.rechokes > 0
            && stats.announces > 0;
        if counter_note.is_empty() {
            counter_note = format!(
                "Event accounting (spread = {spread}): {} events = {} transfers + {} rechokes \
                 + {} announces + {} arrivals + {} departures; {} present at the horizon",
                stats.events,
                stats.transfers,
                stats.rechokes,
                stats.announces,
                stats.arrivals,
                stats.departures,
                engine.present_count(),
            );
        }
    }

    result.check(
        "per-class download times within 35% of the fluid prediction at moderate spread",
        max_rel_err <= 0.35,
        format!("worst relative error {max_rel_err:.3} (spread <= 1.5 plus the middle class)"),
    );
    result.check(
        "extreme classes attenuate toward (never past) the middle at strong spread",
        attenuation_ok,
        "measured T between the own-class and middle-class fluid predictions".to_string(),
    );
    result.check(
        "download times strictly ordered by class speed at every heterogeneous cell",
        ordered,
        "slow > mid > fast wherever spread > 1".to_string(),
    );
    result.check(
        "population turns over and every class completes downloads",
        turnover_ok,
        "checked at every cell".to_string(),
    );
    result.check(
        "event counters account for every dispatched event",
        accounting_ok,
        "events >= transfers + rechokes + announces + arrivals + departures, all kinds fire"
            .to_string(),
    );

    result.note(counter_note);
    result.note(
        "Heterogeneous-speed regime on the continuous event clock: classes [1/s, 1, s] \
         with equal arrival flux. At moderate spread the per-class mean download times \
         reproduce the multi-class fixed point sum(lambda_i / (eta mu_i X + S)) = 1 within \
         35%; at strong spread the simulator redistributes capacity toward the middle — \
         optimistic unchokes donate slow-class downloads, fast peers outrun the swarm's \
         piece availability — so the extreme classes land between their own and the \
         middle class's predictions. Stratification by bandwidth emerges from TFT on the \
         event timeline, in the direction and order Xu's heterogeneous model predicts."
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 23,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
    }
}
