//! EXT1 (paper §7 future work): combining utility functions —
//! bandwidth-rank stratification vs latency clustering.
//!
//! The conclusion of the paper observes that strong stratification is bad
//! for streaming (large collaboration-graph diameter → large play-out
//! delay) and proposes *combining* utilities, e.g. a second collaboration
//! type "depending on a symmetric ranking such as latency". This
//! experiment quantifies the trade-off on one instance:
//!
//! * **pure rank** preferences → minimal rank offsets, latency-blind mates;
//! * **pure latency** preferences → minimal mate distance, rank-blind;
//! * **banded rank × latency** (lexicographic) → intermediate on both axes,
//!   tunable by the class width.

use strat_core::prefs::{
    best_mate_dynamics, BandedRankPrefs, GlobalPrefs, LatencyPrefs, LexicographicPrefs,
    PrefDynamicsOutcome, PrefMatching, PreferenceSystem,
};
use strat_core::{Capacities, GlobalRanking};
use strat_graph::{Graph, NodeId};
use strat_scenario::{CapacityModel, PreferenceModel, Scenario, TopologyModel};

use crate::experiments::common;
use crate::runner::{ExperimentContext, ExperimentResult};

struct Measured {
    mean_rank_offset: f64,
    mean_latency: f64,
    matched_edges: usize,
}

fn measure(matching: &PrefMatching, ranking: &GlobalRanking, latency: &LatencyPrefs) -> Measured {
    let mut offset = 0.0f64;
    let mut dist = 0.0f64;
    let mut count = 0.0f64;
    for v in 0..matching.node_count() {
        let v_id = NodeId::new(v);
        for &w in matching.mates(v_id) {
            offset += ranking.offset(v_id, w) as f64;
            dist += latency.distance(v_id, w);
            count += 1.0;
        }
    }
    Measured {
        mean_rank_offset: offset / count.max(1.0),
        mean_latency: dist / count.max(1.0),
        matched_edges: matching.edge_count(),
    }
}

fn settle<P: PreferenceSystem>(graph: &Graph, prefs: &P, caps: &Capacities) -> PrefMatching {
    match best_mate_dynamics(graph, prefs, caps) {
        PrefDynamicsOutcome::Stable(m) => m,
        PrefDynamicsOutcome::Oscillating { .. } => {
            unreachable!("cycle-free utility classes cannot oscillate")
        }
    }
}

/// The EXT1 scenario: the §7 combined utility — banded rank classes of
/// width `n/20` refined by latency over a `[0, 1000)` space; the kernel
/// sweeps the class width between the pure-rank and pure-latency poles.
#[must_use]
pub fn preset(ctx: &ExperimentContext) -> Scenario {
    let n = if ctx.quick { 200 } else { 600 };
    Scenario::new("ext1", n)
        .with_seed(ctx.seed)
        .with_topology(TopologyModel::ErdosRenyiMeanDegree { d: 24.0 })
        .with_capacity(CapacityModel::Constant { value: 3.0 })
        .with_preference(PreferenceModel::BandedRankLatency {
            class_width: n / 20,
            span: 1000.0,
        })
}

/// Runs the combined-utilities trade-off on its preset.
#[must_use]
pub fn run(ctx: &ExperimentContext) -> ExperimentResult {
    run_scenario(ctx, &preset(ctx))
}

/// Runs the combined-utilities kernel on an arbitrary base scenario.
#[must_use]
pub fn run_scenario(_ctx: &ExperimentContext, scenario: &Scenario) -> ExperimentResult {
    let n = scenario.peers;
    let d = scenario.topology.mean_degree(n);
    let mut rng = common::rng(scenario.seed, 0xe1);
    // Scenario build order: topology, then preference (the latency
    // embedding all preference variants share), then capacities.
    let graph = scenario.build_graph(&mut rng).expect("valid scenario");
    let ranking = GlobalRanking::identity(n);
    // Latency positions uncorrelated with rank.
    let positions = scenario
        .preference
        .latency_positions(n, &mut rng)
        .expect("ext1 requires a latency-flavoured preference model");
    let latency = LatencyPrefs::new(positions);
    let caps: Capacities = scenario.build_capacities(&mut rng).expect("valid scenario");
    let b0 = caps.of(NodeId::new(0));

    let mut result = ExperimentResult::new(
        "ext1",
        "EXT1 (section 7): rank stratification vs latency clustering trade-off",
        format!("n={n}, d={d}, b0={b0}; latency uniform in [0,1000), independent of rank"),
        vec![
            "class_width".into(),
            "mean_rank_offset".into(),
            "mean_latency".into(),
            "matched_edges".into(),
        ],
    );

    // Pure rank (class width 1 ≡ exact global ranking).
    let pure_rank = measure(
        &settle(&graph, &GlobalPrefs::new(ranking.clone()), &caps),
        &ranking,
        &latency,
    );
    result.push_row(vec![
        1.0,
        pure_rank.mean_rank_offset,
        pure_rank.mean_latency,
        pure_rank.matched_edges as f64,
    ]);

    // Banded rank with latency refinement, coarser and coarser.
    let mut banded_results = Vec::new();
    for width in [n / 50, n / 20, n / 8, n / 4] {
        let prefs = LexicographicPrefs::new(
            BandedRankPrefs::new(ranking.clone(), width.max(2)),
            latency.clone(),
        );
        let measured = measure(&settle(&graph, &prefs, &caps), &ranking, &latency);
        result.push_row(vec![
            width as f64,
            measured.mean_rank_offset,
            measured.mean_latency,
            measured.matched_edges as f64,
        ]);
        banded_results.push(measured);
    }

    // Pure latency (class width n ≡ one class; rank ignored).
    let pure_latency = measure(&settle(&graph, &latency, &caps), &ranking, &latency);
    result.push_row(vec![
        n as f64,
        pure_latency.mean_rank_offset,
        pure_latency.mean_latency,
        pure_latency.matched_edges as f64,
    ]);

    result.check(
        "pure rank minimizes rank offsets",
        pure_rank.mean_rank_offset < pure_latency.mean_rank_offset,
        format!(
            "rank-prefs offset {:.1} < latency-prefs offset {:.1}",
            pure_rank.mean_rank_offset, pure_latency.mean_rank_offset
        ),
    );
    result.check(
        "pure latency minimizes mate distance",
        pure_latency.mean_latency < pure_rank.mean_latency,
        format!(
            "latency-prefs distance {:.1} < rank-prefs distance {:.1}",
            pure_latency.mean_latency, pure_rank.mean_latency
        ),
    );
    let mid = &banded_results[1]; // width = n/20
    result.check(
        "combined utility interpolates both axes",
        mid.mean_rank_offset < pure_latency.mean_rank_offset
            && mid.mean_latency < pure_rank.mean_latency,
        format!(
            "banded(n/20): offset {:.1} (< {:.1}), latency {:.1} (< {:.1})",
            mid.mean_rank_offset,
            pure_latency.mean_rank_offset,
            mid.mean_latency,
            pure_rank.mean_latency
        ),
    );
    let coarser_helps_latency = banded_results
        .windows(2)
        .all(|w| w[1].mean_latency <= w[0].mean_latency * 1.25);
    result.check(
        "coarser classes trade rank fidelity for latency (monotone-ish)",
        coarser_helps_latency,
        format!(
            "latency across widths: {:?}",
            banded_results
                .iter()
                .map(|m| m.mean_latency.round())
                .collect::<Vec<_>>()
        ),
    );
    result.note(
        "Paper §7: 'a strong stratification, needed to give peers incentive to \
         collaborate, produce a collaboration graph with large diameter (large play out \
         delay). In many cases, combining different utility function will be necessary.'"
            .to_string(),
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_passes_shape_checks() {
        let ctx = ExperimentContext {
            quick: true,
            seed: 31,
        };
        let result = run(&ctx);
        assert!(result.all_passed(), "failed checks: {:#?}", result.checks);
        assert_eq!(result.rows.len(), 6);
    }
}
