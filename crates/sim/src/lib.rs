//! Experiment harness regenerating **every table and figure** of
//! *Stratification in P2P Networks — Application to BitTorrent*.
//!
//! Each paper artifact has a module under [`experiments`] producing an
//! [`runner::ExperimentResult`]: a labeled numeric table (the figure's
//! series / the table's rows) plus machine-checked **shape criteria** — the
//! qualitative claims the paper makes about that artifact. The
//! `experiments` binary runs them all, writes CSVs, renders ASCII plots and
//! reports a PASS/FAIL summary; EXPERIMENTS.md records paper-vs-measured.
//!
//! Every experiment is **scenario-driven**: its setting is a declarative
//! `strat_scenario::Scenario` preset ([`runner::ExperimentEntry::preset`])
//! and its kernel ([`runner::ExperimentEntry::run_scenario`]) measures an
//! arbitrary scenario — `experiments --scenario file.json` reruns a figure
//! from JSON bit-identically, and `experiments scenarios --dump` writes
//! the named presets (canonical copies in `results/scenarios/`).
//!
//! Independent experiments fan out across worker threads
//! ([`runner::run_parallel`], CLI flag `--jobs`). Every experiment derives
//! its RNG streams from the scenario seed alone, so results are identical
//! for any job count — the workspace-wide `strat_par` determinism
//! contract.
//!
//! | id | artifact |
//! |----|----------|
//! | `fig1` | convergence from `C∅` |
//! | `fig2` | single-peer removal |
//! | `fig3` | continuous churn |
//! | `fig45` | constant-b clusters + extra connection |
//! | `table1` | cluster size & MMO, constant vs `N(b̄, 0.2²)` |
//! | `fig6` | σ phase transition |
//! | `fig7` | exact vs independence error (n = 3) |
//! | `fig8` | mate-distribution regimes (n = 5000) |
//! | `fig9` | Algorithm 3 vs Monte Carlo |
//! | `fig10` | bandwidth CDF |
//! | `fig11` | D/U efficiency curve |
//! | `bt1` | protocol-level swarm validation |
//! | `fluid` | Conjecture 1 fluid limit |
//! | `mmo` | MMO closed form |
//!
//! # Example
//!
//! ```
//! use strat_sim::runner::{self, ExperimentContext};
//!
//! let entry = runner::find("fig7").expect("registered");
//! let result = (entry.run)(&ExperimentContext { quick: true, seed: 1 });
//! assert!(result.all_passed());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// Index-coupled loops are the domain idiom here: experiment kernels mirror the paper's loop structure over (config, time) grids.
#![allow(clippy::needless_range_loop)]

pub mod experiments;
pub mod output;
pub mod runner;
