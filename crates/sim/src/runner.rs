//! Experiment runner scaffolding: results, shape checks, registry.

use serde::{Deserialize, Serialize};

/// Shared knobs for every experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentContext {
    /// Reduced sizes/realizations for CI-speed runs.
    pub quick: bool,
    /// Base RNG seed (experiments derive their own streams).
    pub seed: u64,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        Self {
            quick: false,
            seed: 2007,
        }
    }
}

/// A machine-checked "shape criterion": the qualitative property of a paper
/// figure/table that the reproduction must exhibit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Check {
    /// Short name of the criterion.
    pub name: String,
    /// Whether the measured data satisfied it.
    pub passed: bool,
    /// Measured values backing the verdict.
    pub detail: String,
}

impl Check {
    /// Builds a check result.
    pub fn new(name: impl Into<String>, passed: bool, detail: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            passed,
            detail: detail.into(),
        }
    }
}

/// The output of one experiment: a column-labeled numeric table plus the
/// shape checks and free-form notes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`fig1`, `table1`, …) as used in DESIGN.md.
    pub id: String,
    /// Human title (paper artifact).
    pub title: String,
    /// Parameter summary.
    pub params: String,
    /// Column headers of `rows`.
    pub columns: Vec<String>,
    /// Numeric data rows.
    pub rows: Vec<Vec<f64>>,
    /// Shape criteria verdicts.
    pub checks: Vec<Check>,
    /// Additional commentary (paper-vs-measured notes).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Creates an empty result shell.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        params: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            params: params.into(),
            columns,
            rows: Vec::new(),
            checks: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the column count.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.columns.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Appends a shape check.
    pub fn check(&mut self, name: impl Into<String>, passed: bool, detail: impl Into<String>) {
        self.checks.push(Check::new(name, passed, detail));
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Whether every shape check passed.
    #[must_use]
    pub fn all_passed(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }
}

/// An experiment entry point.
pub type ExperimentFn = fn(&ExperimentContext) -> ExperimentResult;

/// The named declarative scenario of a paper figure.
pub type PresetFn = fn(&ExperimentContext) -> strat_scenario::Scenario;

/// A measurement kernel driven by an explicit scenario.
pub type ScenarioRunFn = fn(&ExperimentContext, &strat_scenario::Scenario) -> ExperimentResult;

/// One registry entry.
#[derive(Clone, Copy)]
pub struct ExperimentEntry {
    /// Experiment id.
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Entry point on the entry's own preset (`run_scenario ∘ preset`).
    pub run: ExperimentFn,
    /// The figure's named scenario preset.
    pub preset: PresetFn,
    /// The measurement kernel for an arbitrary (e.g. file-loaded) scenario.
    pub run_scenario: ScenarioRunFn,
}

macro_rules! entry {
    ($id:literal, $module:ident, $description:literal) => {
        ExperimentEntry {
            id: $id,
            description: $description,
            run: crate::experiments::$module::run,
            preset: crate::experiments::$module::preset,
            run_scenario: crate::experiments::$module::run_scenario,
        }
    };
}

/// All experiments, in paper order.
#[must_use]
pub fn registry() -> Vec<ExperimentEntry> {
    vec![
        entry!(
            "fig1",
            fig1,
            "Convergence from the empty configuration (Figure 1)"
        ),
        entry!(
            "fig2",
            fig2,
            "Peer-removal perturbation and reconvergence (Figure 2)"
        ),
        entry!("fig3", fig3, "Disorder under continuous churn (Figure 3)"),
        entry!(
            "fig45",
            fig45,
            "Clusters of constant b-matching; one extra connection (Figures 4-5)"
        ),
        entry!(
            "table1",
            table1,
            "Clustering and stratification on complete graphs (Table 1)"
        ),
        entry!(
            "fig6",
            fig6,
            "Phase transition in sigma for N(6, sigma^2) capacities (Figure 6)"
        ),
        entry!(
            "fig7",
            fig7,
            "Exact vs independent-model error for n = 3 (Figure 7)"
        ),
        entry!(
            "fig8",
            fig8,
            "Mate distributions of peers 200/2500/4800, n = 5000 (Figure 8)"
        ),
        entry!(
            "fig9",
            fig9,
            "Algorithm 3 vs Monte-Carlo simulation, 2-matching (Figure 9)"
        ),
        entry!(
            "fig10",
            fig10,
            "Upstream bandwidth CDF, Saroiu-style synthetic (Figure 10)"
        ),
        entry!(
            "fig11",
            fig11,
            "Expected D/U ratio vs upload bandwidth per slot (Figure 11)"
        ),
        entry!(
            "bt1",
            bt1,
            "BitTorrent swarm stratification and share ratios (section 6 claims)"
        ),
        entry!(
            "btflash",
            btflash,
            "Flash crowd: completion wave of a cold 10k-leecher swarm (parallel rounds)"
        ),
        entry!(
            "btfree",
            btfree,
            "Free-rider share sweep over the BehaviorMix (TFT incentive structure)"
        ),
        entry!(
            "btchurn",
            btchurn,
            "Open swarm: arrival x seed-leave sweep vs the fluid model (session subsystem)"
        ),
        entry!(
            "btevent",
            btevent,
            "Event engine: speed-heterogeneity sweep vs the multi-class fluid model (event core)"
        ),
        entry!(
            "btfault",
            btfault,
            "Fault plane: crash/loss/outage/partition degradation and recovery (fault subsystem)"
        ),
        entry!(
            "btcluster",
            btcluster,
            "TFT unchokes cluster by bandwidth class, Legout et al. (observer layer)"
        ),
        entry!(
            "btoverlay",
            btoverlay,
            "Peer-list cap shapes the live overlay, Al-Hamra et al. (observer layer)"
        ),
        entry!(
            "btmulti",
            btmulti,
            "Multi-swarm universe: shared population vs per-torrent fluid oracle (universe subsystem)"
        ),
        entry!(
            "ext1",
            ext1,
            "Combined utilities: rank stratification vs latency clustering (section 7)"
        ),
        entry!(
            "ext2",
            ext2,
            "Gossip-estimated ranks: stratification robustness (section 1 ref [8])"
        ),
        entry!(
            "latstrat",
            latstrat,
            "Latency-cluster formation vs rank stratification on the generic engine (section 7)"
        ),
        entry!(
            "fluid",
            fluid,
            "Fluid-limit convergence n*D(1,.) -> d*exp(-beta*d) (Conjecture 1)"
        ),
        entry!(
            "mmo",
            mmo,
            "Mean Max Offset closed form and 3b/4 limit (section 4.2)"
        ),
    ]
}

/// Looks up an experiment by id.
#[must_use]
pub fn find(id: &str) -> Option<ExperimentEntry> {
    registry().into_iter().find(|e| e.id == id)
}

/// Runs `entries` across up to `jobs` threads, returning results (paired
/// with per-experiment wall-clock seconds) in input order.
///
/// Independent experiment runs are the outermost embarrassingly-parallel
/// layer of the harness. Every experiment derives its RNG streams from
/// `ctx.seed` alone (see `experiments::common::rng`), so results are
/// identical for any `jobs` — the `strat_par` determinism contract.
#[must_use]
pub fn run_parallel(
    entries: &[ExperimentEntry],
    ctx: &ExperimentContext,
    jobs: usize,
) -> Vec<(ExperimentResult, f64)> {
    strat_par::par_map(entries, jobs, |_, entry| {
        let start = std::time::Instant::now();
        let result = (entry.run)(ctx);
        (result, start.elapsed().as_secs_f64())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_findable() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate experiment ids");
        assert!(find("fig1").is_some());
        assert!(find("nope").is_none());
    }

    #[test]
    fn result_row_width_checked() {
        let mut r = ExperimentResult::new("x", "t", "p", vec!["a".into(), "b".into()]);
        r.push_row(vec![1.0, 2.0]);
        assert_eq!(r.rows.len(), 1);
        assert!(r.all_passed());
        r.check("c", false, "d");
        assert!(!r.all_passed());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_panics() {
        let mut r = ExperimentResult::new("x", "t", "p", vec!["a".into()]);
        r.push_row(vec![1.0, 2.0]);
    }

    #[test]
    fn run_parallel_is_deterministic_and_ordered() {
        // Two cheap experiments, quick profile: parallel execution must
        // return the same results as sequential, in registry order.
        let ctx = ExperimentContext {
            quick: true,
            seed: 5,
        };
        let entries: Vec<ExperimentEntry> = ["mmo", "fig7"]
            .iter()
            .map(|id| find(id).expect("registered"))
            .collect();
        let sequential: Vec<ExperimentResult> = entries.iter().map(|e| (e.run)(&ctx)).collect();
        for jobs in [1usize, 2, 8] {
            let parallel = run_parallel(&entries, &ctx, jobs);
            assert_eq!(parallel.len(), sequential.len());
            for ((got, _), want) in parallel.iter().zip(&sequential) {
                assert_eq!(got, want, "jobs = {jobs}");
            }
        }
    }
}
