//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [IDS...] [--quick] [--seed N] [--out DIR] [--jobs N] [--list] [--plot]
//! ```
//!
//! Without ids, runs the full registry. Independent experiments run across
//! `--jobs` threads (default: all cores; results are identical for any job
//! count). Writes one CSV per experiment into `--out` (default
//! `results/`), prints each data table, shape-check verdicts and (with
//! `--plot`) an ASCII rendering of the figure.

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use strat_sim::output;
use strat_sim::runner::{self, ExperimentContext, ExperimentResult};

struct Args {
    ids: Vec<String>,
    quick: bool,
    seed: u64,
    out: PathBuf,
    jobs: usize,
    list: bool,
    plot: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        quick: false,
        seed: 2007,
        out: PathBuf::from("results"),
        jobs: strat_par::default_threads(),
        list: false,
        plot: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--plot" => args.plot = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed {v}: {e}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                args.out = PathBuf::from(v);
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count {v}: {e}"))?
                    .max(1);
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [IDS...] [--quick] [--seed N] [--out DIR] [--jobs N] \
                     [--list] [--plot]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            id => args.ids.push(id.to_string()),
        }
    }
    Ok(args)
}

fn print_result(result: &ExperimentResult, plot: bool) {
    println!("\n=== {} — {}", result.id, result.title);
    println!("    params: {}", result.params);
    println!("{}", output::to_ascii_table(result, 12));
    if plot && result.columns.len() >= 2 && !result.rows.is_empty() {
        let ycols: Vec<usize> = (1..result.columns.len().min(5)).collect();
        println!("{}", output::ascii_plot(result, 0, &ycols, 64, 16));
    }
    for check in &result.checks {
        let mark = if check.passed { "PASS" } else { "FAIL" };
        println!("  [{mark}] {} — {}", check.name, check.detail);
    }
    for note in &result.notes {
        println!("  note: {note}");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let registry = runner::registry();
    if args.list {
        for entry in &registry {
            println!("{:8} {}", entry.id, entry.description);
        }
        return;
    }
    let selected: Vec<_> = if args.ids.is_empty() {
        registry
    } else {
        args.ids
            .iter()
            .map(|id| {
                runner::find(id).unwrap_or_else(|| {
                    eprintln!("error: unknown experiment id `{id}` (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    std::fs::create_dir_all(&args.out).expect("create output directory");
    let ctx = ExperimentContext {
        quick: args.quick,
        seed: args.seed,
    };
    let wall = Instant::now();
    // Fan the independent experiments out across worker threads; results
    // come back in registry order regardless of the job count.
    let results = runner::run_parallel(&selected, &ctx, args.jobs);
    let wall_elapsed = wall.elapsed();
    let mut failures = 0usize;
    let mut summary = Vec::new();
    for (result, seconds) in results {
        print_result(&result, args.plot);
        println!("  ({seconds:.2}s)");

        let csv_path = args.out.join(format!("{}.csv", result.id));
        std::fs::write(&csv_path, output::to_csv(&result)).expect("write csv");
        let json_path = args.out.join(format!("{}.json", result.id));
        let mut f = std::fs::File::create(&json_path).expect("create json");
        serde_json::to_writer_pretty(&mut f, &result).expect("serialize result");
        f.write_all(b"\n").expect("finish json");

        failures += result.checks.iter().filter(|c| !c.passed).count();
        summary.push((
            result.id.clone(),
            result.checks.len(),
            result.checks.iter().filter(|c| c.passed).count(),
            seconds,
        ));
    }

    println!("\n==== summary ====");
    for (id, total, passed, seconds) in &summary {
        println!("{id:8} {passed}/{total} checks passed ({seconds:.2}s)");
    }
    println!(
        "total wall clock: {wall_elapsed:.2?} across {} experiment(s) with {} job(s)",
        summary.len(),
        args.jobs
    );
    if failures > 0 {
        eprintln!("{failures} shape check(s) FAILED");
        std::process::exit(1);
    }
    println!("all shape checks passed");
}
