//! CLI for regenerating the paper's tables and figures.
//!
//! ```text
//! experiments [IDS...] [--quick] [--seed N] [--out DIR] [--jobs N] [--list] [--plot]
//! experiments --scenario FILE.json [--quick] [--out DIR] [--plot]
//! experiments scenarios [--dump] [--quick] [--seed N] [--out DIR]
//! ```
//!
//! Without ids, runs the full registry. Independent experiments run across
//! `--jobs` threads (default: all cores; results are identical for any job
//! count). Writes one CSV per experiment into `--out` (default
//! `results/`), prints each data table, shape-check verdicts and (with
//! `--plot`) an ASCII rendering of the figure.
//!
//! `--scenario FILE.json` loads a declarative scenario (see
//! `strat-scenario`), dispatches on its `experiment` binding and runs that
//! kernel on it — the scenario's own seed drives all randomness, so a
//! dumped preset reproduces its figure bit-identically.
//!
//! The `scenarios` subcommand lists the named presets of every paper
//! figure, or (with `--dump`) writes them as pretty-printed JSON into
//! `--out` (default `results/scenarios/`).

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use strat_sim::output;
use strat_sim::runner::{self, ExperimentContext, ExperimentResult};

struct Args {
    ids: Vec<String>,
    quick: bool,
    seed: u64,
    out: Option<PathBuf>,
    jobs: usize,
    list: bool,
    plot: bool,
    scenario: Option<PathBuf>,
    dump: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        quick: false,
        seed: 2007,
        out: None,
        jobs: strat_par::default_threads(),
        list: false,
        plot: false,
        scenario: None,
        dump: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--list" => args.list = true,
            "--plot" => args.plot = true,
            "--dump" => args.dump = true,
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("bad seed {v}: {e}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                args.out = Some(PathBuf::from(v));
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                args.jobs = v
                    .parse::<usize>()
                    .map_err(|e| format!("bad job count {v}: {e}"))?
                    .max(1);
            }
            "--scenario" => {
                let v = it.next().ok_or("--scenario needs a file path")?;
                args.scenario = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [IDS...] [--quick] [--seed N] [--out DIR] [--jobs N] \
                     [--list] [--plot]\n\
                     \x20      experiments --scenario FILE.json [--quick] [--out DIR] [--plot]\n\
                     \x20      experiments scenarios [--dump] [--quick] [--seed N] [--out DIR]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}"));
            }
            id => args.ids.push(id.to_string()),
        }
    }
    Ok(args)
}

fn print_result(result: &ExperimentResult, plot: bool) {
    println!("\n=== {} — {}", result.id, result.title);
    println!("    params: {}", result.params);
    println!("{}", output::to_ascii_table(result, 12));
    if plot && result.columns.len() >= 2 && !result.rows.is_empty() {
        let ycols: Vec<usize> = (1..result.columns.len().min(5)).collect();
        println!("{}", output::ascii_plot(result, 0, &ycols, 64, 16));
    }
    for check in &result.checks {
        let mark = if check.passed { "PASS" } else { "FAIL" };
        println!("  [{mark}] {} — {}", check.name, check.detail);
    }
    for note in &result.notes {
        println!("  note: {note}");
    }
}

fn write_outputs(out: &PathBuf, result: &ExperimentResult) {
    std::fs::create_dir_all(out).expect("create output directory");
    let csv_path = out.join(format!("{}.csv", result.id));
    std::fs::write(&csv_path, output::to_csv(result)).expect("write csv");
    let json_path = out.join(format!("{}.json", result.id));
    let mut f = std::fs::File::create(&json_path).expect("create json");
    serde_json::to_writer_pretty(&mut f, result).expect("serialize result");
    f.write_all(b"\n").expect("finish json");
}

/// `experiments scenarios [--dump]`: list or dump the named presets.
fn scenarios_command(args: &Args) -> i32 {
    let ctx = ExperimentContext {
        quick: args.quick,
        seed: args.seed,
    };
    let out = args
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results/scenarios"));
    if args.dump {
        std::fs::create_dir_all(&out).expect("create scenario directory");
    }
    for entry in runner::registry() {
        let scenario = (entry.preset)(&ctx);
        if args.dump {
            let path = out.join(format!("{}.json", scenario.name));
            std::fs::write(&path, scenario.to_json_pretty() + "\n").expect("write scenario");
            println!("wrote {}", path.display());
        } else {
            println!(
                "{:8} peers={:<7} capacity={:<30} topology={:<38} churn={:?}",
                scenario.name,
                scenario.peers,
                format!("{:?}", scenario.capacity),
                format!("{:?}", scenario.topology),
                scenario.churn,
            );
        }
    }
    0
}

/// `experiments --scenario FILE`: run one scenario file through its
/// experiment kernel.
fn scenario_command(args: &Args, path: &PathBuf) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return 2;
        }
    };
    let scenario = match strat_scenario::Scenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            return 2;
        }
    };
    let Some(entry) = runner::find(&scenario.experiment) else {
        eprintln!(
            "error: scenario `{}` binds to unknown experiment `{}` (try --list)",
            scenario.name, scenario.experiment
        );
        return 2;
    };
    // The scenario's own seed drives every stream; ctx carries the profile.
    let ctx = ExperimentContext {
        quick: args.quick,
        seed: scenario.seed,
    };
    println!(
        "scenario `{}` -> experiment `{}` (seed {})",
        scenario.name, scenario.experiment, scenario.seed
    );
    let start = Instant::now();
    let result = (entry.run_scenario)(&ctx, &scenario);
    print_result(&result, args.plot);
    println!("  ({:.2}s)", start.elapsed().as_secs_f64());
    if let Some(out) = &args.out {
        write_outputs(out, &result);
    }
    let failures = result.checks.iter().filter(|c| !c.passed).count();
    if failures > 0 {
        eprintln!("{failures} shape check(s) FAILED");
        return 1;
    }
    println!("all shape checks passed");
    0
}

fn main() {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.ids.first().map(String::as_str) == Some("scenarios") {
        args.ids.remove(0);
        if !args.ids.is_empty() {
            eprintln!("error: `scenarios` takes no experiment ids");
            std::process::exit(2);
        }
        std::process::exit(scenarios_command(&args));
    }
    if let Some(path) = args.scenario.clone() {
        if !args.ids.is_empty() {
            eprintln!("error: --scenario cannot be combined with experiment ids");
            std::process::exit(2);
        }
        std::process::exit(scenario_command(&args, &path));
    }
    let registry = runner::registry();
    if args.list {
        for entry in &registry {
            println!("{:8} {}", entry.id, entry.description);
        }
        return;
    }
    let selected: Vec<_> = if args.ids.is_empty() {
        registry
    } else {
        args.ids
            .iter()
            .map(|id| {
                runner::find(id).unwrap_or_else(|| {
                    eprintln!("error: unknown experiment id `{id}` (try --list)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    let out = args.out.clone().unwrap_or_else(|| PathBuf::from("results"));
    let ctx = ExperimentContext {
        quick: args.quick,
        seed: args.seed,
    };
    let wall = Instant::now();
    // Fan the independent experiments out across worker threads; results
    // come back in registry order regardless of the job count.
    let results = runner::run_parallel(&selected, &ctx, args.jobs);
    let wall_elapsed = wall.elapsed();
    let mut failures = 0usize;
    let mut summary = Vec::new();
    for (result, seconds) in results {
        print_result(&result, args.plot);
        println!("  ({seconds:.2}s)");
        write_outputs(&out, &result);
        failures += result.checks.iter().filter(|c| !c.passed).count();
        summary.push((
            result.id.clone(),
            result.checks.len(),
            result.checks.iter().filter(|c| c.passed).count(),
            seconds,
        ));
    }

    println!("\n==== summary ====");
    for (id, total, passed, seconds) in &summary {
        println!("{id:8} {passed}/{total} checks passed ({seconds:.2}s)");
    }
    println!(
        "total wall clock: {wall_elapsed:.2?} across {} experiment(s) with {} job(s)",
        summary.len(),
        args.jobs
    );
    if failures > 0 {
        eprintln!("{failures} shape check(s) FAILED");
        std::process::exit(1);
    }
    println!("all shape checks passed");
}
