//! Differential properties: the data-oriented hot paths (CSR acceptance,
//! arena matching, threshold + clean/dirty caches) must be observationally
//! identical to the seed-faithful implementations in
//! `strat_core::reference` — same stable configuration, and the same
//! [`InitiativeOutcome`] stream for a fixed seed, including under peer
//! removal and re-insertion.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use strat_core::reference::{RefAcceptance, RefDynamics};
use strat_core::{
    reference, stable_configuration, Capacities, Dynamics, GlobalRanking, InitiativeOutcome,
    InitiativeStrategy, RankedAcceptance,
};
use strat_graph::{Graph, NodeId};

/// Raw instance material: `(n, edge list, rank permutation, capacities)`.
type RawInstance = (usize, Vec<(usize, usize)>, Vec<usize>, Vec<u32>);

fn instance(max_n: usize) -> impl Strategy<Value = RawInstance> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(4 * n));
        let perm = Just((0..n).collect::<Vec<_>>()).prop_shuffle();
        let caps = proptest::collection::vec(0u32..5, n);
        (Just(n), edges, perm, caps)
    })
}

/// Builds the optimized and the seed-faithful acceptance structures from
/// the same raw material.
fn build_both(
    n: usize,
    raw_edges: &[(usize, usize)],
    perm: &[usize],
    caps: &[u32],
) -> (RankedAcceptance, RefAcceptance, Capacities) {
    let mut builder = Graph::builder(n);
    for &(u, v) in raw_edges {
        if u != v {
            builder
                .add_edge(NodeId::new(u), NodeId::new(v))
                .expect("endpoints in range");
        }
    }
    let graph = builder.build();
    let ranking = GlobalRanking::from_permutation(perm.iter().map(|&v| NodeId::new(v)).collect())
        .expect("shuffled identity is a permutation");
    let acc = RankedAcceptance::new(graph.clone(), ranking.clone()).expect("sizes match");
    let ref_acc = RefAcceptance::new(graph, ranking);
    (acc, ref_acc, Capacities::from_values(caps.to_vec()))
}

fn assert_same_matching(
    optimized: &strat_core::Matching,
    seed_style: &reference::RefMatching,
) -> Result<(), String> {
    if optimized.node_count() != seed_style.node_count()
        || optimized.edge_count() != seed_style.edge_count()
    {
        return Err(format!(
            "size/edge mismatch: {}/{} vs {}/{}",
            optimized.node_count(),
            optimized.edge_count(),
            seed_style.node_count(),
            seed_style.edge_count()
        ));
    }
    for v in 0..optimized.node_count() {
        let v = NodeId::new(v);
        if optimized.mates(v) != seed_style.mates(v) {
            return Err(format!(
                "peer {v}: {:?} vs {:?}",
                optimized.mates(v),
                seed_style.mates(v)
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Algorithm 1: the CSR + arena + bitset fast path computes exactly the
    /// configuration the seed implementation computes.
    #[test]
    fn stable_configuration_matches_reference((n, edges, perm, caps) in instance(120)) {
        let (acc, ref_acc, caps) = build_both(n, &edges, &perm, &caps);
        let fast = stable_configuration(&acc, &caps).expect("sizes match");
        let slow = reference::stable_configuration(&ref_acc, &caps);
        assert_same_matching(&fast, &slow)?;
        prop_assert!(fast.check_invariants(acc.ranking(), &caps));
    }

    /// Every initiative strategy produces the *same outcome stream* as the
    /// seed driver for a fixed seed — including when peers are removed and
    /// re-inserted mid-run — so the caches are pure accelerators.
    #[test]
    fn dynamics_outcome_stream_matches_reference(
        (n, edges, perm, caps) in instance(60),
        seed in any::<u64>(),
    ) {
        for strategy in [
            InitiativeStrategy::BestMate,
            InitiativeStrategy::Decremental,
            InitiativeStrategy::Random,
        ] {
            let (acc, ref_acc, caps) = build_both(n, &edges, &perm, &caps);
            let mut fast = Dynamics::new(acc, caps.clone(), strategy).expect("sizes match");
            let mut slow = RefDynamics::new(ref_acc, caps, strategy);
            let mut rng_fast = ChaCha8Rng::seed_from_u64(seed);
            let mut rng_slow = ChaCha8Rng::seed_from_u64(seed);
            for step in 0..6 * n {
                // Interleave churn-like perturbations on both drivers.
                if step % 11 == 5 {
                    let v = NodeId::new(step % n);
                    fast.remove_peer(v);
                    slow.remove_peer(v);
                }
                if step % 17 == 9 {
                    let v = NodeId::new((step * 3) % n);
                    fast.insert_peer(v);
                    slow.insert_peer(v);
                }
                let a: InitiativeOutcome = fast.step(&mut rng_fast);
                let b: InitiativeOutcome = slow.step(&mut rng_slow);
                prop_assert_eq!(a, b, "{:?} diverged at step {}", strategy, step);
            }
            if let Err(msg) = assert_same_matching(fast.matching(), slow.matching()) {
                return Err(format!("{strategy:?}: {msg}"));
            }
        }
    }
}
