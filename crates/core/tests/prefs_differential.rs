//! Differential properties of the generalized-preference path: the
//! dirty-set engine behind `prefs::best_mate_dynamics` (and
//! `GeneralDynamics`) must be observationally identical to the retained
//! full-scan implementation `reference::best_mate_dynamics` — same stable
//! configurations (mate-set equality), same step counts, and the same
//! acyclicity-failure (oscillation) reports — across latency, banded,
//! lexicographic, gossip-estimated and explicit preference systems.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use strat_core::prefs::{
    best_mate_dynamics, odd_cycle_instance, BandedRankPrefs, ExplicitPrefs, GlobalPrefs,
    LatencyPrefs, LexicographicPrefs, PrefDynamicsOutcome, PrefMatching, PreferenceSystem,
};
use strat_core::{gossip, reference, Capacities, GlobalRanking};
use strat_graph::{Graph, NodeId};

/// Raw instance material: `(n, edge list, positions, capacities)`.
type RawInstance = (usize, Vec<(usize, usize)>, Vec<u32>, Vec<u32>);

fn instance(max_n: usize) -> impl Strategy<Value = RawInstance> {
    (3..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(5 * n));
        // Integer position material keeps latency ties exercising the
        // deterministic id tie-break.
        let positions = proptest::collection::vec(0u32..64, n);
        let caps = proptest::collection::vec(0u32..4, n);
        (Just(n), edges, positions, caps)
    })
}

fn build_graph(n: usize, raw_edges: &[(usize, usize)]) -> Graph {
    let mut builder = Graph::builder(n);
    for &(u, v) in raw_edges {
        if u != v {
            builder
                .add_edge(NodeId::new(u), NodeId::new(v))
                .expect("endpoints in range");
        }
    }
    builder.build()
}

/// Both implementations must agree outcome-for-outcome: stable vs
/// oscillating, identical mate rows (the engine path replays its events
/// into the same `PrefMatching` representation), identical step counts.
fn assert_identical<P: PreferenceSystem>(graph: &Graph, prefs: &P, caps: &Capacities) {
    let fast = best_mate_dynamics(graph, prefs, caps);
    let slow = reference::best_mate_dynamics(graph, prefs, caps);
    match (&fast, &slow) {
        (PrefDynamicsOutcome::Stable(a), PrefDynamicsOutcome::Stable(b)) => {
            assert_rows_equal(a, b);
        }
        (
            PrefDynamicsOutcome::Oscillating { at: a, steps: sa },
            PrefDynamicsOutcome::Oscillating { at: b, steps: sb },
        ) => {
            assert_eq!(sa, sb, "oscillation detected after different step counts");
            assert_rows_equal(a, b);
        }
        _ => panic!("outcome kind diverged: {fast:?} vs {slow:?}"),
    }
}

/// Row-exact equality (not just set equality): the engine path rebuilds
/// the reference's exact vector layout, which is what keeps downstream
/// float accumulations (ext1 golden rows) bit-identical.
fn assert_rows_equal(a: &PrefMatching, b: &PrefMatching) {
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.edge_count(), b.edge_count());
    for v in 0..a.node_count() {
        let v = NodeId::new(v);
        assert_eq!(a.mates(v), b.mates(v), "peer {v}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn latency_systems_agree((n, edges, positions, caps) in instance(40)) {
        let graph = build_graph(n, &edges);
        let prefs = LatencyPrefs::new(positions.iter().map(|&p| f64::from(p)).collect());
        let caps = Capacities::from_values(caps);
        assert_identical(&graph, &prefs, &caps);
    }

    #[test]
    fn banded_lexicographic_systems_agree(
        (n, edges, positions, caps) in instance(40),
        class_width in 1usize..8,
    ) {
        let graph = build_graph(n, &edges);
        let prefs = LexicographicPrefs::new(
            BandedRankPrefs::new(GlobalRanking::identity(n), class_width),
            LatencyPrefs::new(positions.iter().map(|&p| f64::from(p)).collect()),
        );
        let caps = Capacities::from_values(caps);
        assert_identical(&graph, &prefs, &caps);
    }

    #[test]
    fn gossip_estimated_systems_agree(
        (n, edges, _, caps) in instance(40),
        seed in 0u64..1000,
        sample_size in 1usize..20,
    ) {
        let graph = build_graph(n, &edges);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let estimated =
            gossip::estimate_ranking(&GlobalRanking::identity(n), sample_size, &mut rng);
        let prefs = GlobalPrefs::new(estimated);
        let caps = Capacities::from_values(caps);
        assert_identical(&graph, &prefs, &caps);
    }

    #[test]
    fn explicit_systems_agree_including_oscillations(
        (n, edges, orders_seed, caps) in instance(16),
    ) {
        // Explicit per-peer orders derived from hashing material: this is
        // the class where odd preference cycles actually occur, so both
        // the stable and the oscillating arm get exercised.
        let graph = build_graph(n, &edges);
        let orders: Vec<Vec<NodeId>> = (0..n)
            .map(|p| {
                let mut order: Vec<NodeId> = (0..n).filter(|&q| q != p).map(NodeId::new).collect();
                let key = orders_seed[p % orders_seed.len()] as usize;
                let len = order.len().max(1);
                order.rotate_left(key % len);
                if key % 2 == 1 {
                    order.reverse();
                }
                order
            })
            .collect();
        let prefs = ExplicitPrefs::new(orders);
        let caps = Capacities::from_values(caps);
        assert_identical(&graph, &prefs, &caps);
    }
}

#[test]
fn odd_cycle_oscillation_reports_agree() {
    let (graph, prefs) = odd_cycle_instance();
    let caps = Capacities::constant(3, 1);
    let fast = best_mate_dynamics(&graph, &prefs, &caps);
    let slow = reference::best_mate_dynamics(&graph, &prefs, &caps);
    let PrefDynamicsOutcome::Oscillating { at: a, steps: sa } = fast else {
        panic!("engine path missed the odd cycle");
    };
    let PrefDynamicsOutcome::Oscillating { at: b, steps: sb } = slow else {
        panic!("reference path missed the odd cycle");
    };
    assert_eq!(sa, sb);
    assert_rows_equal(&a, &b);
}
