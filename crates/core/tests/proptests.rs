//! Property-based tests for the core stable-matching model.
//!
//! These encode the paper's theorems as machine-checked properties:
//! existence + stability of Algorithm 1's output, uniqueness of the stable
//! configuration (any active-initiative sequence converges to it), and the
//! axioms of the disorder metric.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use strat_core::{
    blocking, distance, stable_configuration, stable_configuration_complete, Capacities, Dynamics,
    GlobalRanking, InitiativeStrategy, Matching, RankedAcceptance,
};
use strat_graph::{generators, Graph, NodeId};

/// Raw instance material: `(n, edge list, rank permutation, capacities)`.
type RawInstance = (usize, Vec<(usize, usize)>, Vec<usize>, Vec<u32>);

/// Strategy: a random model instance (graph + ranking + capacities).
fn instance(max_n: usize) -> impl Strategy<Value = RawInstance> {
    (2..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..(4 * n));
        let perm = Just((0..n).collect::<Vec<_>>()).prop_shuffle();
        let caps = proptest::collection::vec(0u32..5, n);
        (Just(n), edges, perm, caps)
    })
}

fn build_instance(
    n: usize,
    raw_edges: &[(usize, usize)],
    perm: &[usize],
    caps: &[u32],
) -> (RankedAcceptance, Capacities) {
    let mut builder = Graph::builder(n);
    for &(u, v) in raw_edges {
        if u != v {
            builder
                .add_edge(NodeId::new(u), NodeId::new(v))
                .expect("valid endpoints");
        }
    }
    let ranking = GlobalRanking::from_permutation(perm.iter().map(|&i| NodeId::new(i)).collect())
        .expect("permutation strategy yields bijections");
    let acc = RankedAcceptance::new(builder.build(), ranking).expect("sizes match");
    (acc, Capacities::from_values(caps.to_vec()))
}

proptest! {
    /// Algorithm 1 always produces a valid, stable configuration
    /// (existence half of the Tan-based §3 theorem).
    #[test]
    fn algorithm1_output_is_stable((n, edges, perm, caps) in instance(40)) {
        let (acc, caps) = build_instance(n, &edges, &perm, &caps);
        let m = stable_configuration(&acc, &caps).expect("sizes match");
        prop_assert!(m.check_invariants(acc.ranking(), &caps));
        prop_assert!(
            blocking::is_stable(&acc, &caps, &m),
            "blocking pair: {:?}",
            blocking::first_blocking_pair(&acc, &caps, &m)
        );
    }

    /// Uniqueness (Theorem 1): any sequence of active initiatives — here a
    /// random-scheduler best-mate run from the empty configuration — ends in
    /// exactly the configuration Algorithm 1 computes.
    #[test]
    fn initiative_dynamics_reach_algorithm1_fixpoint(
        (n, edges, perm, caps) in instance(24),
        seed in any::<u64>(),
    ) {
        let (acc, caps) = build_instance(n, &edges, &perm, &caps);
        let reference = stable_configuration(&acc, &caps).expect("sizes match");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dynamics =
            Dynamics::new(acc, caps, InitiativeStrategy::BestMate).expect("sizes match");
        // Theorem 1 guarantees termination; bound the scheduler generously.
        for _ in 0..20_000 {
            dynamics.step(&mut rng);
        }
        prop_assert!(dynamics.is_stable(), "dynamics not settled after bound");
        prop_assert_eq!(dynamics.matching(), &reference);
    }

    /// Every single initiative preserves the matching invariants, active or
    /// not, for each of the three strategies.
    #[test]
    fn initiatives_preserve_invariants(
        (n, edges, perm, caps) in instance(24),
        seed in any::<u64>(),
        strategy_idx in 0usize..3,
    ) {
        let strategy = [
            InitiativeStrategy::BestMate,
            InitiativeStrategy::Decremental,
            InitiativeStrategy::Random,
        ][strategy_idx];
        let (acc, caps) = build_instance(n, &edges, &perm, &caps);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dynamics = Dynamics::new(acc, caps, strategy).expect("sizes match");
        for _ in 0..200 {
            dynamics.step(&mut rng);
            prop_assert!(dynamics
                .matching()
                .check_invariants(dynamics.acceptance().ranking(), dynamics.capacities()));
        }
    }

    /// The complete-graph specialization agrees with the generic algorithm.
    #[test]
    fn complete_specialization_matches(
        n in 1usize..40,
        perm_seed in any::<u64>(),
        caps in proptest::collection::vec(0u32..6, 40),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(perm_seed);
        let ranking = GlobalRanking::random(n, &mut rng);
        let caps = Capacities::from_values(caps[..n].to_vec());
        let acc = RankedAcceptance::new(generators::complete(n), ranking.clone())
            .expect("sizes match");
        let generic = stable_configuration(&acc, &caps).expect("sizes match");
        let fast = stable_configuration_complete(&ranking, &caps).expect("sizes match");
        prop_assert_eq!(generic, fast);
    }

    /// Disorder metric axioms: identity, symmetry, and the [0, 1] range for
    /// 1-matchings, plus the exact normalization against C∅.
    #[test]
    fn disorder_metric_axioms(
        n in 2usize..30,
        pairs_seed in any::<u64>(),
    ) {
        let ranking = GlobalRanking::identity(n);
        let caps = Capacities::constant(n, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(pairs_seed);
        // Two random partial 1-matchings via random stable problems.
        let mk = |rng: &mut ChaCha8Rng| {
            let g = generators::erdos_renyi(n, 0.4, rng);
            let acc = RankedAcceptance::new(g, ranking.clone()).expect("sizes match");
            stable_configuration(&acc, &caps).expect("sizes match")
        };
        let a = mk(&mut rng);
        let b = mk(&mut rng);
        let empty = Matching::new(n);

        prop_assert_eq!(distance::disorder(&ranking, &a, &a), 0.0);
        prop_assert_eq!(
            distance::disorder(&ranking, &a, &b),
            distance::disorder(&ranking, &b, &a)
        );
        // The paper's normalization calibrates perfect-vs-empty to 1; the
        // distance between two arbitrary partial matchings can slightly
        // exceed 1 (e.g. n = 3, {(0,1)} vs {(0,2)} gives 7/6) but is always
        // below 2.
        let d = distance::disorder(&ranking, &a, &b);
        prop_assert!((0.0..2.0).contains(&d));
        prop_assert!(distance::disorder(&ranking, &a, &empty) <= 1.0 + 1e-12);
        // Triangle inequality through the empty configuration.
        let da = distance::disorder(&ranking, &a, &empty);
        let db = distance::disorder(&ranking, &b, &empty);
        prop_assert!(d <= da + db + 1e-12);
    }

    /// Peer removal never leaves dangling references and reconvergence
    /// reaches the masked stable configuration.
    #[test]
    fn removal_reconverges_to_masked_stable(
        (n, edges, perm, caps) in instance(20),
        removed in 0usize..20,
        seed in any::<u64>(),
    ) {
        let removed = removed % n;
        let (acc, caps) = build_instance(n, &edges, &perm, &caps);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate)
            .expect("sizes match");
        for _ in 0..5_000 {
            dynamics.step(&mut rng);
        }
        dynamics.remove_peer(NodeId::new(removed));
        for _ in 0..5_000 {
            dynamics.step(&mut rng);
        }
        prop_assert!(dynamics.is_stable());
        prop_assert_eq!(dynamics.matching(), &dynamics.instant_stable());
        prop_assert_eq!(dynamics.matching().degree(NodeId::new(removed)), 0);
    }
}
