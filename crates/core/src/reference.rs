//! Seed-faithful reference implementations of the matching hot paths.
//!
//! These are the pre-data-oriented versions of the algorithms: mate lists
//! as plain `Vec<Vec<NodeId>>` with every rank comparison going through
//! [`GlobalRanking::rank_of`], blocking-pair checks re-deriving saturation
//! and worst-mate rank on each probe, and Algorithm 1 re-scanning (and
//! rank-filtering) the full adjacency of every peer.
//!
//! They exist for two reasons and are **not** meant for production use:
//!
//! 1. **Differential testing** — property tests assert the optimized
//!    CSR/cached paths are observationally identical to these (same stable
//!    configuration, same [`InitiativeOutcome`] stream for a fixed seed);
//! 2. **Benchmarking** — `crates/bench` measures the optimized paths
//!    against these to keep the speedup a number, not a claim.
//!
//! RNG discipline: [`RefDynamics`] consumes randomness in exactly the same
//! order and quantity as [`crate::Dynamics`] (same peer draws, same probe
//! draws), so both drivers stay in lockstep on a shared seed for their
//! entire run.

use std::collections::HashSet;

use rand::Rng;
use strat_graph::{Graph, NodeId};

use crate::prefs::{PrefDynamicsOutcome, PrefMatching, PreferenceSystem};
use crate::{
    Capacities, GlobalRanking, InitiativeOutcome, InitiativeStrategy, ModelError, RankedAcceptance,
};

/// Seed-style acceptance structure: rank-sorted adjacency stored as one
/// separately-allocated `Vec<NodeId>` per peer (the pointer-chasing layout
/// the CSR [`RankedAcceptance`] replaced), membership via the graph's
/// binary search by node id.
#[derive(Debug, Clone)]
pub struct RefAcceptance {
    graph: Graph,
    ranking: GlobalRanking,
    /// `by_rank[v]` = neighbours of `v` sorted best-rank-first.
    by_rank: Vec<Vec<NodeId>>,
}

impl RefAcceptance {
    /// Combines an acceptance graph and a ranking (sizes must match).
    #[must_use]
    pub fn new(graph: Graph, ranking: GlobalRanking) -> Self {
        assert_eq!(graph.node_count(), ranking.len(), "size mismatch");
        let by_rank = graph
            .nodes()
            .map(|v| {
                let mut neigh = graph.neighbors(v).to_vec();
                neigh.sort_by_key(|&w| ranking.rank_of(w));
                neigh
            })
            .collect();
        Self {
            graph,
            ranking,
            by_rank,
        }
    }

    /// Rebuilds the seed layout from an optimized acceptance structure
    /// (same graph, same ranking, same per-row order).
    #[must_use]
    pub fn from_optimized(acc: &RankedAcceptance) -> Self {
        Self::new(acc.graph().clone(), acc.ranking().clone())
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying acceptance graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The global ranking.
    #[must_use]
    pub fn ranking(&self) -> &GlobalRanking {
        &self.ranking
    }

    /// Acceptable peers of `v`, best-rank-first.
    #[must_use]
    pub fn neighbors_best_first(&self, v: NodeId) -> &[NodeId] {
        &self.by_rank[v.index()]
    }

    /// Whether `u` accepts `v` (symmetric).
    #[must_use]
    pub fn accepts(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.has_edge(u, v)
    }
}

/// Reference b-matching configuration: per-peer `Vec<NodeId>` mate lists
/// sorted best-rank-first, ranks re-derived from the ranking on each use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefMatching {
    mates: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl RefMatching {
    /// Empty configuration over `n` peers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            mates: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.mates.len()
    }

    /// Number of collaboration links.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Mates of `v`, best-rank-first.
    #[must_use]
    pub fn mates(&self, v: NodeId) -> &[NodeId] {
        &self.mates[v.index()]
    }

    /// Current number of mates of `v`.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.mates[v.index()].len()
    }

    /// Worst (lowest-ranked) current mate of `v`, if any.
    #[must_use]
    pub fn worst_mate(&self, v: NodeId) -> Option<NodeId> {
        self.mates[v.index()].last().copied()
    }

    /// Whether `u` and `v` are currently matched together.
    #[must_use]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.mates[a.index()].contains(&b)
    }

    /// Whether `v` uses all its slots under `caps`.
    #[must_use]
    pub fn is_saturated(&self, caps: &Capacities, v: NodeId) -> bool {
        self.degree(v) >= caps.of(v) as usize
    }

    /// Seed-style acceptance check: recomputes the worst mate's rank via
    /// the ranking on every call.
    #[must_use]
    pub fn would_accept(
        &self,
        ranking: &GlobalRanking,
        caps: &Capacities,
        v: NodeId,
        candidate: NodeId,
    ) -> bool {
        if v == candidate || caps.of(v) == 0 || self.contains(v, candidate) {
            return false;
        }
        if !self.is_saturated(caps, v) {
            return true;
        }
        let worst = self
            .worst_mate(v)
            .expect("saturated peer with capacity > 0 has a mate");
        ranking.prefers(candidate, worst)
    }

    /// Connects `u` and `v` with the seed's validity checks (invalid pair,
    /// capacity), exactly as the seed `Matching::connect` did.
    pub fn connect(
        &mut self,
        ranking: &GlobalRanking,
        caps: &Capacities,
        u: NodeId,
        v: NodeId,
    ) -> Result<(), ModelError> {
        if u == v || self.contains(u, v) {
            return Err(ModelError::InvalidPair { a: u, b: v });
        }
        for w in [u, v] {
            if self.is_saturated(caps, w) {
                return Err(ModelError::CapacityExceeded {
                    node: w,
                    capacity: caps.of(w),
                });
            }
        }
        self.insert_sorted(ranking, u, v);
        self.insert_sorted(ranking, v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the link between `u` and `v` (caller guarantees it exists).
    pub fn disconnect(&mut self, u: NodeId, v: NodeId) {
        let pu = self.mates[u.index()]
            .iter()
            .position(|&w| w == v)
            .expect("matched");
        let pv = self.mates[v.index()]
            .iter()
            .position(|&w| w == u)
            .expect("matched");
        self.mates[u.index()].remove(pu);
        self.mates[v.index()].remove(pv);
        self.edge_count -= 1;
    }

    /// Drops all links of `v`. Returns the former mates.
    pub fn isolate(&mut self, v: NodeId) -> Vec<NodeId> {
        let mates = core::mem::take(&mut self.mates[v.index()]);
        for &m in &mates {
            let pos = self.mates[m.index()]
                .iter()
                .position(|&w| w == v)
                .expect("matching is symmetric");
            self.mates[m.index()].remove(pos);
        }
        self.edge_count -= mates.len();
        mates
    }

    fn insert_sorted(&mut self, ranking: &GlobalRanking, owner: NodeId, mate: NodeId) {
        let list = &mut self.mates[owner.index()];
        let rank = ranking.rank_of(mate);
        let pos = list.partition_point(|&w| ranking.rank_of(w).is_better_than(rank));
        list.insert(pos, mate);
    }
}

/// Seed-style blocking-pair test (per-probe `rank_of` lookups and
/// membership scans).
#[must_use]
pub fn is_blocking_pair(
    acc: &RefAcceptance,
    caps: &Capacities,
    matching: &RefMatching,
    p: NodeId,
    q: NodeId,
) -> bool {
    p != q
        && acc.accepts(p, q)
        && !matching.contains(p, q)
        && matching.would_accept(acc.ranking(), caps, p, q)
        && matching.would_accept(acc.ranking(), caps, q, p)
}

/// Seed-style best-blocking-mate scan: early exit on the initiator's worst
/// mate, but with `rank_of` lookups and a `would_accept` membership scan
/// per candidate.
#[must_use]
pub fn best_blocking_mate<F>(
    acc: &RefAcceptance,
    caps: &Capacities,
    matching: &RefMatching,
    p: NodeId,
    present: F,
) -> Option<NodeId>
where
    F: Fn(NodeId) -> bool,
{
    let ranking = acc.ranking();
    if caps.of(p) == 0 {
        return None;
    }
    let saturated = matching.is_saturated(caps, p);
    let worst_rank = matching.worst_mate(p).map(|w| ranking.rank_of(w));
    for &q in acc.neighbors_best_first(p) {
        if saturated {
            let worst = worst_rank.expect("saturated peer with positive capacity has mates");
            if !ranking.rank_of(q).is_better_than(worst) {
                return None;
            }
        }
        if present(q) && !matching.contains(p, q) && matching.would_accept(ranking, caps, q, p) {
            return Some(q);
        }
    }
    None
}

/// Seed-style Algorithm 1: scans every neighbour of every peer, filtering
/// out better-ranked ones with per-edge `rank_of` comparisons, and inserts
/// every link through the sorted-insert path.
#[must_use]
pub fn stable_configuration(acc: &RefAcceptance, caps: &Capacities) -> RefMatching {
    let n = acc.node_count();
    let ranking = acc.ranking();
    let mut remaining: Vec<u32> = (0..n).map(|v| caps.of(NodeId::new(v))).collect();
    let mut matching = RefMatching::new(n);
    for i in ranking.nodes_best_first() {
        if remaining[i.index()] == 0 {
            continue;
        }
        let my_rank = ranking.rank_of(i);
        for &j in acc.neighbors_best_first(i) {
            if ranking.rank_of(j).is_better_than(my_rank) {
                continue;
            }
            if remaining[j.index()] == 0 {
                continue;
            }
            matching
                .connect(ranking, caps, i, j)
                .expect("greedy respects capacities and never duplicates a pair");
            remaining[i.index()] -= 1;
            remaining[j.index()] -= 1;
            if remaining[i.index()] == 0 {
                break;
            }
        }
    }
    matching
}

/// Seed-faithful initiative driver over [`RefMatching`].
///
/// Mirrors [`crate::Dynamics`] operation for operation (including RNG
/// consumption) without any cached state.
#[derive(Debug, Clone)]
pub struct RefDynamics {
    acc: RefAcceptance,
    caps: Capacities,
    matching: RefMatching,
    strategy: InitiativeStrategy,
    cursors: Vec<usize>,
    present: Vec<bool>,
    present_count: usize,
}

impl RefDynamics {
    /// Creates a driver starting from the empty configuration.
    #[must_use]
    pub fn new(acc: RefAcceptance, caps: Capacities, strategy: InitiativeStrategy) -> Self {
        let n = acc.node_count();
        assert_eq!(caps.len(), n, "capacity size mismatch");
        Self {
            acc,
            caps,
            matching: RefMatching::new(n),
            strategy,
            cursors: vec![0; n],
            present: vec![true; n],
            present_count: n,
        }
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.acc.node_count()
    }

    /// Current configuration.
    #[must_use]
    pub fn matching(&self) -> &RefMatching {
        &self.matching
    }

    /// Removes a peer (drops its collaborations). No-op if absent.
    pub fn remove_peer(&mut self, v: NodeId) {
        if !self.present[v.index()] {
            return;
        }
        self.present[v.index()] = false;
        self.present_count -= 1;
        self.matching.isolate(v);
    }

    /// Re-inserts an absent peer. No-op if present.
    pub fn insert_peer(&mut self, v: NodeId) {
        if self.present[v.index()] {
            return;
        }
        self.present[v.index()] = true;
        self.present_count += 1;
    }

    /// One initiative by a uniformly random present peer.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        if self.present_count == 0 {
            return InitiativeOutcome::Inactive;
        }
        let n = self.node_count();
        let p = if self.present_count == n {
            NodeId::new(rng.gen_range(0..n))
        } else {
            loop {
                let v = NodeId::new(rng.gen_range(0..n));
                if self.present[v.index()] {
                    break v;
                }
            }
        };
        self.initiative(p, rng)
    }

    /// Runs `n` initiatives. Returns the number of active ones.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let n = self.node_count();
        (0..n).filter(|_| self.step(rng).is_active()).count()
    }

    /// One initiative by `p` with the configured strategy.
    pub fn initiative<R: Rng + ?Sized>(&mut self, p: NodeId, rng: &mut R) -> InitiativeOutcome {
        if !self.present[p.index()] {
            return InitiativeOutcome::Inactive;
        }
        let mate = match self.strategy {
            InitiativeStrategy::BestMate => {
                best_blocking_mate(&self.acc, &self.caps, &self.matching, p, |q| {
                    self.present[q.index()]
                })
            }
            InitiativeStrategy::Decremental => self.decremental_scan(p),
            InitiativeStrategy::Random => self.random_probe(p, rng),
        };
        match mate {
            Some(q) => self.execute(p, q),
            None => InitiativeOutcome::Inactive,
        }
    }

    fn decremental_scan(&mut self, p: NodeId) -> Option<NodeId> {
        let neigh = self.acc.neighbors_best_first(p);
        let len = neigh.len();
        if len == 0 {
            return None;
        }
        let start = self.cursors[p.index()] % len;
        for k in 0..len {
            let idx = (start + k) % len;
            let q = neigh[idx];
            if self.present[q.index()]
                && is_blocking_pair(&self.acc, &self.caps, &self.matching, p, q)
            {
                self.cursors[p.index()] = (idx + 1) % len;
                return Some(q);
            }
        }
        self.cursors[p.index()] = start;
        None
    }

    fn random_probe<R: Rng + ?Sized>(&self, p: NodeId, rng: &mut R) -> Option<NodeId> {
        let neigh = self.acc.neighbors_best_first(p);
        if neigh.is_empty() {
            return None;
        }
        let q = neigh[rng.gen_range(0..neigh.len())];
        (self.present[q.index()] && is_blocking_pair(&self.acc, &self.caps, &self.matching, p, q))
            .then_some(q)
    }

    fn execute(&mut self, p: NodeId, q: NodeId) -> InitiativeOutcome {
        let ranking = self.acc.ranking();
        let mut dropped_by_peer = None;
        let mut dropped_by_mate = None;
        if self.matching.is_saturated(&self.caps, p) {
            let worst = self
                .matching
                .worst_mate(p)
                .expect("saturated implies mates");
            self.matching.disconnect(p, worst);
            dropped_by_peer = Some(worst);
        }
        if self.matching.is_saturated(&self.caps, q) {
            let worst = self
                .matching
                .worst_mate(q)
                .expect("saturated implies mates");
            self.matching.disconnect(q, worst);
            dropped_by_mate = Some(worst);
        }
        self.matching
            .connect(ranking, &self.caps, p, q)
            .expect("slots were freed");
        InitiativeOutcome::Active {
            peer: p,
            mate: q,
            dropped_by_peer,
            dropped_by_mate,
        }
    }
}

/// The historical full-scan implementation of
/// [`crate::prefs::best_mate_dynamics`] (pre-engine-unification): every
/// sweep re-scans every peer's entire neighborhood with live
/// [`PreferenceSystem`] comparisons and re-derives saturation and worst
/// mates per probe — no thresholds, no clean/dirty memo.
///
/// Retained as the differential reference and benchmark baseline for the
/// dirty-set path: both must produce identical configurations, step counts
/// and oscillation reports on every instance.
///
/// # Panics
///
/// Panics if sizes of `graph`, `prefs` and `caps` disagree.
pub fn best_mate_dynamics<P: PreferenceSystem>(
    graph: &Graph,
    prefs: &P,
    caps: &Capacities,
) -> PrefDynamicsOutcome {
    let n = graph.node_count();
    assert_eq!(prefs.n(), n, "preference system size mismatch");
    caps.check_len(n).expect("capacity size mismatch");
    let mut matching = PrefMatching::new(n);
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(matching.fingerprint());
    let mut steps = 0u64;
    loop {
        let active = best_mate_sweep(graph, prefs, caps, &mut matching);
        steps += active;
        if active == 0 {
            return PrefDynamicsOutcome::Stable(matching);
        }
        if !seen.insert(matching.fingerprint()) {
            return PrefDynamicsOutcome::Oscillating {
                at: matching,
                steps,
            };
        }
    }
}

/// One full-scan sweep of [`best_mate_dynamics`]: every peer re-scans its
/// entire neighborhood for its best acceptable blocking mate and matches
/// with it. Returns the number of active initiatives.
///
/// Exposed so benchmarks can measure the per-sweep cost directly (against
/// the engine's dirty-set sweeps, which skip provably clean peers).
pub fn best_mate_sweep<P: PreferenceSystem>(
    graph: &Graph,
    prefs: &P,
    caps: &Capacities,
    matching: &mut PrefMatching,
) -> u64 {
    let mut active = 0u64;
    for p in graph.nodes() {
        // Best blocking mate of p under prefs: single streaming pass,
        // no candidate buffer (this sweep dominates the runtime on
        // dense instances).
        let mut best: Option<NodeId> = None;
        for &q in graph.neighbors(p) {
            if best.is_none_or(|b| prefs.prefers(p, q, b))
                && matching.would_accept(prefs, caps, p, q)
                && matching.would_accept(prefs, caps, q, p)
            {
                best = Some(q);
            }
        }
        let Some(q) = best else {
            continue;
        };
        // Evict worst mates if saturated, then connect.
        for v in [p, q] {
            if matching.mates(v).len() >= caps.of(v) as usize {
                let worst = prefs
                    .worst_of(v, matching.mates(v))
                    .expect("saturated has mates");
                matching.disconnect(v, worst);
            }
        }
        matching.connect(p, q);
        active += 1;
    }
    active
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use super::*;

    #[test]
    fn reference_stable_configuration_is_stable() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::erdos_renyi(50, 0.12, &mut rng);
        let acc = RefAcceptance::new(g, GlobalRanking::random(50, &mut rng));
        let caps = Capacities::constant(50, 2);
        let m = stable_configuration(&acc, &caps);
        for (u, v) in acc.graph().edges() {
            assert!(
                !is_blocking_pair(&acc, &caps, &m, u, v),
                "({u}, {v}) blocks"
            );
        }
    }

    #[test]
    fn reference_dynamics_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::erdos_renyi_mean_degree(40, 8.0, &mut rng);
        let acc = RefAcceptance::new(g, GlobalRanking::identity(40));
        let caps = Capacities::constant(40, 1);
        let stable = stable_configuration(&acc, &caps);
        let mut dynamics = RefDynamics::new(acc, caps, InitiativeStrategy::BestMate);
        for _ in 0..200 {
            dynamics.run_base_unit(&mut rng);
            if dynamics.matching() == &stable {
                break;
            }
        }
        assert_eq!(dynamics.matching(), &stable);
    }
}
