//! b-matching configurations.
//!
//! A *configuration* (the paper also says *matching*) is a subgraph of the
//! acceptance graph in which each peer `p` has degree at most `b(p)`. This
//! module provides the mutable configuration type on which both Algorithm 1
//! and the initiative dynamics operate.

use serde::Serialize;
use strat_graph::{Graph, GraphBuilder, NodeId, UnionFind};

use crate::{Capacities, GlobalRanking, ModelError, Rank};

/// A b-matching configuration: symmetric collaboration links between peers.
///
/// # Data layout
///
/// Mate lists live in a **flat arena**: two parallel arrays (`ids`,
/// `ranks`) sliced per peer through offset/length tables — the whole
/// configuration is five allocations regardless of peer count, and a peer's
/// mates with their ranks are two contiguous slices. Each row is kept
/// **sorted best-rank-first** with the mate's rank cached next to its id,
/// so the worst mate (the one a blocking pair would evict) and its rank are
/// `O(1)` reads and no scan ever calls [`GlobalRanking::rank_of`] per
/// element.
///
/// [`Matching::with_capacities`] sizes every row to its peer's capacity
/// upfront (the fast path used by Algorithm 1 and [`crate::Dynamics`]);
/// [`Matching::new`] starts rows at zero and grows them by relocating to
/// the arena tail on demand.
///
/// The type does not own ranking or capacities; callers pass them to the
/// operations that need them. All mutating operations preserve symmetry.
///
/// # Examples
///
/// ```
/// use strat_core::{Capacities, GlobalRanking, Matching};
/// use strat_graph::NodeId;
///
/// let ranking = GlobalRanking::identity(4);
/// let caps = Capacities::constant(4, 1);
/// let mut m = Matching::new(4);
/// m.connect(&ranking, &caps, NodeId::new(0), NodeId::new(2))?;
/// assert!(m.contains(NodeId::new(2), NodeId::new(0)));
/// assert_eq!(m.degree(NodeId::new(0)), 1);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Matching {
    /// Per-peer row metadata, packed so one row touch is one cache line.
    rows: Vec<RowMeta>,
    /// Arena of mate ids; peer `v`'s row is `ids[slot..slot + len]`.
    ids: Vec<NodeId>,
    /// Arena of mate ranks, parallel to `ids`.
    ranks: Vec<Rank>,
    edge_count: usize,
}

/// Arena row descriptor: start offset, allocated slots, used slots.
#[derive(Debug, Clone, Copy)]
struct RowMeta {
    slot: u32,
    cap: u32,
    len: u32,
}

impl Matching {
    /// The empty configuration `C∅` over `n` peers (zero-capacity rows that
    /// grow on demand).
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            rows: vec![
                RowMeta {
                    slot: 0,
                    cap: 0,
                    len: 0
                };
                n
            ],
            ids: Vec::new(),
            ranks: Vec::new(),
            edge_count: 0,
        }
    }

    /// The empty configuration with every row preallocated to its peer's
    /// capacity: two arena allocations total, and no growth relocations on
    /// any fill pattern Algorithm 1 or the dynamics can produce.
    #[must_use]
    pub fn with_capacities(caps: &Capacities) -> Self {
        let n = caps.len();
        let mut rows = Vec::with_capacity(n);
        let mut total = 0u64;
        for &b in caps.as_slice() {
            let slot = u32::try_from(total).expect("arena exceeds u32 slots");
            rows.push(RowMeta {
                slot,
                cap: b,
                len: 0,
            });
            total += u64::from(b);
        }
        let total = usize::try_from(total).expect("arena fits in memory");
        assert!(total <= u32::MAX as usize, "arena exceeds u32 slots");
        Self {
            rows,
            ids: vec![NodeId::new(0); total],
            ranks: vec![Rank::new(0); total],
            edge_count: 0,
        }
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of collaboration links.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Row bounds of `v`.
    #[inline]
    fn row(&self, v: NodeId) -> (usize, usize) {
        let row = self.rows[v.index()];
        (row.slot as usize, (row.slot + row.len) as usize)
    }

    /// Current number of mates of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.rows[v.index()].len as usize
    }

    /// Free slots in `v`'s arena row (`row capacity - degree`).
    ///
    /// Only meaningful on a [`Matching::with_capacities`] configuration,
    /// where row capacities equal the model capacities `b(v)` — Algorithm 1
    /// reads this instead of maintaining a separate remaining-slots array,
    /// since the append path already touches the row's metadata cache line.
    #[inline]
    pub(crate) fn free_slots(&self, v: NodeId) -> u32 {
        let row = self.rows[v.index()];
        row.cap - row.len
    }

    /// Mates of `v`, best-rank-first.
    #[inline]
    #[must_use]
    pub fn mates(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = self.row(v);
        &self.ids[lo..hi]
    }

    /// Ranks of the mates of `v`, parallel to [`mates`](Self::mates) (so
    /// ascending).
    #[inline]
    #[must_use]
    pub fn mate_ranks(&self, v: NodeId) -> &[Rank] {
        let (lo, hi) = self.row(v);
        &self.ranks[lo..hi]
    }

    /// The single mate of `v` for 1-matchings (`None` if unmated).
    ///
    /// This is the paper's `σ(C, i)` accessor; see
    /// [`crate::distance::disorder`].
    #[must_use]
    pub fn mate_of(&self, v: NodeId) -> Option<NodeId> {
        debug_assert!(self.degree(v) <= 1, "mate_of used on a non-1-matching");
        self.mates(v).first().copied()
    }

    /// Worst (lowest-ranked) current mate of `v`, if any.
    #[inline]
    #[must_use]
    pub fn worst_mate(&self, v: NodeId) -> Option<NodeId> {
        self.mates(v).last().copied()
    }

    /// Rank of the worst current mate of `v`, if any — `O(1)`, no ranking
    /// lookup.
    #[inline]
    #[must_use]
    pub fn worst_rank(&self, v: NodeId) -> Option<Rank> {
        self.mate_ranks(v).last().copied()
    }

    /// Whether `u` and `v` are currently matched together.
    #[must_use]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        // Mate lists are tiny (b(p) slots); linear scan of the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.mates(a).contains(&b)
    }

    /// Whether `v` uses all its slots under `caps`.
    #[inline]
    #[must_use]
    pub fn is_saturated(&self, caps: &Capacities, v: NodeId) -> bool {
        self.degree(v) >= caps.of(v) as usize
    }

    /// Whether `v` would welcome a **new** (non-mate, non-self) candidate of
    /// rank `candidate_rank`: either a slot is free, or the candidate
    /// outranks `v`'s worst current mate.
    ///
    /// This is the rank-only core of [`would_accept`](Self::would_accept);
    /// callers on the hot path (which already know the candidate is not `v`
    /// or a current mate) use it to skip the duplicate checks.
    #[inline]
    #[must_use]
    pub fn would_accept_rank(&self, caps: &Capacities, v: NodeId, candidate_rank: Rank) -> bool {
        let cap = caps.of(v) as usize;
        if self.degree(v) < cap {
            return cap > 0;
        }
        match self.worst_rank(v) {
            Some(worst) => candidate_rank.is_better_than(worst),
            None => false, // cap == 0
        }
    }

    /// Whether `v` would welcome `candidate` as a new mate: either a slot is
    /// free, or `candidate` outranks `v`'s worst current mate.
    ///
    /// This is one half of the blocking-pair condition (§2); it does **not**
    /// check the acceptance graph or the reciprocal condition.
    #[must_use]
    pub fn would_accept(
        &self,
        ranking: &GlobalRanking,
        caps: &Capacities,
        v: NodeId,
        candidate: NodeId,
    ) -> bool {
        if v == candidate || self.contains(v, candidate) {
            return false;
        }
        self.would_accept_rank(caps, v, ranking.rank_of(candidate))
    }

    /// Connects `u` and `v`, keeping both mate lists rank-sorted.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidPair`] if `u == v` or already matched;
    /// * [`ModelError::CapacityExceeded`] if either endpoint is saturated.
    pub fn connect(
        &mut self,
        ranking: &GlobalRanking,
        caps: &Capacities,
        u: NodeId,
        v: NodeId,
    ) -> Result<(), ModelError> {
        if u == v || self.contains(u, v) {
            return Err(ModelError::InvalidPair { a: u, b: v });
        }
        for w in [u, v] {
            if self.is_saturated(caps, w) {
                return Err(ModelError::CapacityExceeded {
                    node: w,
                    capacity: caps.of(w),
                });
            }
        }
        self.insert_sorted(u, v, ranking.rank_of(v));
        self.insert_sorted(v, u, ranking.rank_of(u));
        self.edge_count += 1;
        Ok(())
    }

    /// Connects `u` and `v` with explicit per-owner mate keys: `u`'s row
    /// caches `key_of_v` and `v`'s row caches `key_of_u`, each kept sorted
    /// by its owner's keys. This is the generalized-preference form of
    /// [`connect`](Self::connect) — the generic engine supplies each side's
    /// precomputed preference key instead of a shared global rank (with
    /// global ranks as keys the two are identical).
    ///
    /// # Errors
    ///
    /// Same contract as [`connect`](Self::connect).
    pub(crate) fn connect_keyed(
        &mut self,
        caps: &Capacities,
        u: NodeId,
        v: NodeId,
        key_of_v: Rank,
        key_of_u: Rank,
    ) -> Result<(), ModelError> {
        if u == v || self.contains(u, v) {
            return Err(ModelError::InvalidPair { a: u, b: v });
        }
        for w in [u, v] {
            if self.is_saturated(caps, w) {
                return Err(ModelError::CapacityExceeded {
                    node: w,
                    capacity: caps.of(w),
                });
            }
        }
        self.insert_sorted(u, v, key_of_v);
        self.insert_sorted(v, u, key_of_u);
        self.edge_count += 1;
        Ok(())
    }

    /// Connects `u` (rank `u_rank`) and `v` (rank `v_rank`) by **appending**
    /// to both rows, skipping every validity check.
    ///
    /// Only for construction loops that add mates in ascending-rank order on
    /// both sides — Algorithm 1 does (each peer receives mates best-first) —
    /// which debug builds assert.
    pub(crate) fn push_pair_append(&mut self, u: NodeId, v: NodeId, u_rank: Rank, v_rank: Rank) {
        debug_assert_ne!(u, v);
        debug_assert!(self.worst_rank(u).is_none_or(|r| r.is_better_than(v_rank)));
        debug_assert!(self.worst_rank(v).is_none_or(|r| r.is_better_than(u_rank)));
        self.append_one(u, v, v_rank);
        self.append_one(v, u, u_rank);
        self.edge_count += 1;
    }

    #[inline]
    fn append_one(&mut self, owner: NodeId, mate: NodeId, mate_rank: Rank) {
        let o = owner.index();
        if self.rows[o].len == self.rows[o].cap {
            self.grow_row(owner);
        }
        let row = self.rows[o];
        let at = (row.slot + row.len) as usize;
        self.ids[at] = mate;
        self.ranks[at] = mate_rank;
        self.rows[o].len += 1;
    }

    /// Relocates `owner`'s row to the arena tail with doubled capacity.
    ///
    /// Only the growth path of [`Matching::new`] rows ever runs this; rows
    /// from [`Matching::with_capacities`] are born at full size. The old
    /// row becomes a hole — acceptable for the small ad-hoc configurations
    /// built through `new`.
    #[cold]
    fn grow_row(&mut self, owner: NodeId) {
        let o = owner.index();
        let old = self.rows[o];
        let new_cap = (old.cap * 2).max(2) as usize;
        let new_slot = self.ids.len();
        assert!(
            new_slot + new_cap <= u32::MAX as usize,
            "arena exceeds u32 slots"
        );
        for k in 0..old.len as usize {
            self.ids.push(self.ids[old.slot as usize + k]);
            self.ranks.push(self.ranks[old.slot as usize + k]);
        }
        for _ in old.len as usize..new_cap {
            self.ids.push(NodeId::new(0));
            self.ranks.push(Rank::new(0));
        }
        self.rows[o] = RowMeta {
            slot: new_slot as u32,
            cap: new_cap as u32,
            len: old.len,
        };
    }

    /// Removes the link between `u` and `v`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotMatched`] if they are not matched together.
    pub fn disconnect(&mut self, u: NodeId, v: NodeId) -> Result<(), ModelError> {
        let pos_u = self.mates(u).iter().position(|&w| w == v);
        let pos_v = self.mates(v).iter().position(|&w| w == u);
        match (pos_u, pos_v) {
            (Some(pu), Some(pv)) => {
                self.remove_at(u, pu);
                self.remove_at(v, pv);
                self.edge_count -= 1;
                Ok(())
            }
            _ => Err(ModelError::NotMatched { a: u, b: v }),
        }
    }

    /// Drops all links of `v` (peer departure). Returns the former mates.
    pub fn isolate(&mut self, v: NodeId) -> Vec<NodeId> {
        let mates = self.mates(v).to_vec();
        for &m in &mates {
            let pos = self
                .mates(m)
                .iter()
                .position(|&w| w == v)
                .expect("matching is symmetric");
            self.remove_at(m, pos);
        }
        self.rows[v.index()].len = 0;
        self.edge_count -= mates.len();
        mates
    }

    /// Exports the collaboration graph for structural analysis.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut builder = GraphBuilder::new(self.node_count());
        for u in 0..self.node_count() {
            let u = NodeId::new(u);
            for &v in self.mates(u) {
                if u < v {
                    builder
                        .add_edge(u, v)
                        .expect("matching links are valid edges");
                }
            }
        }
        builder.build()
    }

    /// Union-find over the collaboration links (for cluster statistics
    /// without materializing a graph).
    #[must_use]
    pub fn to_union_find(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.node_count());
        for u in 0..self.node_count() {
            for &v in self.mates(NodeId::new(u)) {
                uf.union(u, v.index());
            }
        }
        uf
    }

    /// Checks all structural invariants: symmetry, looplessness, capacity
    /// bounds, rank-sorted rows with ranks consistent with `ranking`,
    /// consistent edge count.
    #[must_use]
    pub fn check_invariants(&self, ranking: &GlobalRanking, caps: &Capacities) -> bool {
        let mut half_edges = 0usize;
        for u in 0..self.node_count() {
            let u = NodeId::new(u);
            let (mates, mate_ranks) = (self.mates(u), self.mate_ranks(u));
            if mates.len() > caps.of(u) as usize {
                return false;
            }
            if mate_ranks.windows(2).any(|w| !w[0].is_better_than(w[1])) {
                return false; // not strictly best-first (also catches duplicates)
            }
            for (&v, &r) in mates.iter().zip(mate_ranks) {
                if v == u || ranking.rank_of(v) != r || !self.mates(v).contains(&u) {
                    return false;
                }
            }
            half_edges += mates.len();
        }
        half_edges == 2 * self.edge_count
    }

    fn insert_sorted(&mut self, owner: NodeId, mate: NodeId, rank: Rank) {
        let o = owner.index();
        if self.rows[o].len == self.rows[o].cap {
            self.grow_row(owner);
        }
        let row = self.rows[o];
        let (slot, len) = (row.slot as usize, row.len as usize);
        let pos = self.ranks[slot..slot + len].partition_point(|&r| r.is_better_than(rank));
        // Shift the tail right one slot inside the row (rows are tiny).
        self.ids.copy_within(slot + pos..slot + len, slot + pos + 1);
        self.ranks
            .copy_within(slot + pos..slot + len, slot + pos + 1);
        self.ids[slot + pos] = mate;
        self.ranks[slot + pos] = rank;
        self.rows[o].len += 1;
    }

    fn remove_at(&mut self, owner: NodeId, pos: usize) {
        let o = owner.index();
        let row = self.rows[o];
        let (slot, len) = (row.slot as usize, row.len as usize);
        self.ids.copy_within(slot + pos + 1..slot + len, slot + pos);
        self.ranks
            .copy_within(slot + pos + 1..slot + len, slot + pos);
        self.rows[o].len -= 1;
    }
}

/// Logical equality: same peers with the same mate rows (arena layout —
/// offsets, holes, spare capacity — is ignored).
impl PartialEq for Matching {
    fn eq(&self, other: &Self) -> bool {
        if self.node_count() != other.node_count() || self.edge_count != other.edge_count {
            return false;
        }
        (0..self.node_count()).all(|v| {
            let v = NodeId::new(v);
            self.mates(v) == other.mates(v) && self.mate_ranks(v) == other.mate_ranks(v)
        })
    }
}

impl Eq for Matching {}

/// Serializes the logical view: `{"mates": [[ids of peer 0], ...]}`.
impl Serialize for Matching {
    fn serialize_json_into(&self, out: &mut String) {
        out.push_str("{\"mates\":[");
        for v in 0..self.node_count() {
            if v > 0 {
                out.push(',');
            }
            let row: Vec<u32> = self.mates(NodeId::new(v)).iter().map(|m| m.raw()).collect();
            row.serialize_json_into(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn setup(count: usize, b0: u32) -> (GlobalRanking, Capacities, Matching) {
        (
            GlobalRanking::identity(count),
            Capacities::constant(count, b0),
            Matching::new(count),
        )
    }

    #[test]
    fn empty_configuration() {
        let m = Matching::new(3);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.degree(n(0)), 0);
        assert_eq!(m.mate_of(n(1)), None);
        assert_eq!(m.worst_mate(n(2)), None);
        assert_eq!(m.worst_rank(n(2)), None);
    }

    #[test]
    fn connect_is_symmetric_and_sorted() {
        let (ranking, caps, mut m) = setup(5, 3);
        m.connect(&ranking, &caps, n(2), n(4)).unwrap();
        m.connect(&ranking, &caps, n(2), n(0)).unwrap();
        m.connect(&ranking, &caps, n(2), n(3)).unwrap();
        assert_eq!(m.mates(n(2)), &[n(0), n(3), n(4)]); // best-first
        assert_eq!(
            m.mate_ranks(n(2)),
            &[Rank::new(0), Rank::new(3), Rank::new(4)]
        );
        assert_eq!(m.worst_mate(n(2)), Some(n(4)));
        assert_eq!(m.worst_rank(n(2)), Some(Rank::new(4)));
        assert!(m.contains(n(4), n(2)));
        assert_eq!(m.edge_count(), 3);
        assert!(m.check_invariants(&ranking, &caps));
    }

    #[test]
    fn connect_rejects_self_and_duplicate() {
        let (ranking, caps, mut m) = setup(3, 2);
        assert!(matches!(
            m.connect(&ranking, &caps, n(1), n(1)),
            Err(ModelError::InvalidPair { .. })
        ));
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        assert!(matches!(
            m.connect(&ranking, &caps, n(1), n(0)),
            Err(ModelError::InvalidPair { .. })
        ));
    }

    #[test]
    fn connect_respects_capacity() {
        let (ranking, caps, mut m) = setup(4, 1);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        let err = m.connect(&ranking, &caps, n(0), n(2)).unwrap_err();
        assert_eq!(
            err,
            ModelError::CapacityExceeded {
                node: n(0),
                capacity: 1
            }
        );
    }

    #[test]
    fn disconnect_and_isolate() {
        let (ranking, caps, mut m) = setup(4, 3);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        m.connect(&ranking, &caps, n(0), n(2)).unwrap();
        m.connect(&ranking, &caps, n(0), n(3)).unwrap();
        m.disconnect(n(0), n(2)).unwrap();
        assert!(!m.contains(n(0), n(2)));
        assert_eq!(m.edge_count(), 2);
        assert!(matches!(
            m.disconnect(n(0), n(2)),
            Err(ModelError::NotMatched { .. })
        ));

        let dropped = m.isolate(n(0));
        assert_eq!(dropped, vec![n(1), n(3)]);
        assert_eq!(m.edge_count(), 0);
        assert!(m.check_invariants(&ranking, &caps));
    }

    #[test]
    fn would_accept_logic() {
        let (ranking, caps, mut m) = setup(4, 1);
        // Free slot: accepts anyone acceptable.
        assert!(m.would_accept(&ranking, &caps, n(2), n(3)));
        assert!(!m.would_accept(&ranking, &caps, n(2), n(2))); // self
        m.connect(&ranking, &caps, n(2), n(3)).unwrap();
        // Saturated with mate 3: accepts better peer 0, rejects worse-or-same.
        assert!(m.would_accept(&ranking, &caps, n(2), n(0)));
        assert!(!m.would_accept(&ranking, &caps, n(2), n(3))); // already mates
        assert!(!m.would_accept(&ranking, &caps, n(3), n(2))); // already mates
    }

    #[test]
    fn would_accept_rank_matches_would_accept_for_non_mates() {
        let (ranking, caps, mut m) = setup(6, 2);
        m.connect(&ranking, &caps, n(3), n(1)).unwrap();
        m.connect(&ranking, &caps, n(3), n(4)).unwrap();
        for cand in [0usize, 2, 5] {
            assert_eq!(
                m.would_accept_rank(&caps, n(3), ranking.rank_of(n(cand))),
                m.would_accept(&ranking, &caps, n(3), n(cand)),
                "candidate {cand}"
            );
        }
    }

    #[test]
    fn zero_capacity_never_accepts() {
        let ranking = GlobalRanking::identity(2);
        let caps = Capacities::constant(2, 0);
        let m = Matching::new(2);
        assert!(!m.would_accept(&ranking, &caps, n(0), n(1)));
        assert!(!m.would_accept_rank(&caps, n(0), Rank::new(1)));
    }

    #[test]
    fn to_graph_round_trip() {
        let (ranking, caps, mut m) = setup(4, 2);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        m.connect(&ranking, &caps, n(2), n(1)).unwrap();
        let g = m.to_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(n(1), n(2)));
        let mut uf = m.to_union_find();
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn invariants_catch_capacity_violation() {
        let (ranking, _caps, mut m) = setup(3, 2);
        let big = Capacities::constant(3, 2);
        m.connect(&ranking, &big, n(0), n(1)).unwrap();
        m.connect(&ranking, &big, n(0), n(2)).unwrap();
        let small = Capacities::constant(3, 1);
        assert!(!m.check_invariants(&ranking, &small));
        assert!(m.check_invariants(&ranking, &big));
    }

    #[test]
    fn mate_lists_sorted_under_nonidentity_ranking() {
        // Node 2 best, node 0 middle, node 1 worst.
        let ranking = GlobalRanking::from_permutation(vec![n(2), n(0), n(1)]).unwrap();
        let caps = Capacities::constant(3, 2);
        let mut m = Matching::new(3);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        m.connect(&ranking, &caps, n(0), n(2)).unwrap();
        assert_eq!(m.mates(n(0)), &[n(2), n(1)]);
        assert!(m.check_invariants(&ranking, &caps));
    }

    #[test]
    fn push_pair_append_matches_connect() {
        let (ranking, caps, mut slow) = setup(6, 2);
        let mut fast = Matching::with_capacities(&caps);
        // Ascending-rank appends on both sides.
        for (u, v) in [(0usize, 1usize), (0, 2), (1, 3), (2, 4)] {
            slow.connect(&ranking, &caps, n(u), n(v)).unwrap();
            fast.push_pair_append(n(u), n(v), ranking.rank_of(n(u)), ranking.rank_of(n(v)));
        }
        assert_eq!(slow, fast);
        assert!(fast.check_invariants(&ranking, &caps));
    }

    #[test]
    fn grown_rows_equal_preallocated_rows() {
        // `new` (grow-on-demand) and `with_capacities` (preallocated) must
        // be logically equal after the same operations, despite different
        // arena layouts.
        let ranking = GlobalRanking::identity(8);
        let caps = Capacities::constant(8, 3);
        let mut grown = Matching::new(8);
        let mut flat = Matching::with_capacities(&caps);
        let ops = [(0usize, 5usize), (0, 3), (1, 2), (0, 6), (4, 7), (3, 6)];
        for &(u, v) in &ops {
            grown.connect(&ranking, &caps, n(u), n(v)).unwrap();
            flat.connect(&ranking, &caps, n(u), n(v)).unwrap();
        }
        grown.disconnect(n(0), n(3)).unwrap();
        flat.disconnect(n(0), n(3)).unwrap();
        assert_eq!(grown, flat);
        assert!(grown.check_invariants(&ranking, &caps));
        assert!(flat.check_invariants(&ranking, &caps));
        // Serialization reflects the logical view for both layouts.
        assert_eq!(grown.to_json(), flat.to_json());
    }

    #[test]
    fn serialize_shape() {
        let (ranking, caps, mut m) = setup(3, 1);
        m.connect(&ranking, &caps, n(0), n(2)).unwrap();
        assert_eq!(m.to_json(), "{\"mates\":[[2],[],[0]]}");
    }
}
