//! b-matching configurations.
//!
//! A *configuration* (the paper also says *matching*) is a subgraph of the
//! acceptance graph in which each peer `p` has degree at most `b(p)`. This
//! module provides the mutable configuration type on which both Algorithm 1
//! and the initiative dynamics operate.

use serde::{Deserialize, Serialize};
use strat_graph::{Graph, GraphBuilder, NodeId, UnionFind};

use crate::{Capacities, GlobalRanking, ModelError};

/// A b-matching configuration: symmetric collaboration links between peers.
///
/// Each peer's mate list is kept **sorted best-rank-first** with respect to
/// the [`GlobalRanking`] passed to [`connect`](Matching::connect), so the
/// worst mate (the one a blocking pair would evict) is always the last entry.
///
/// The type does not own ranking or capacities; callers pass them to the
/// operations that need them. All mutating operations preserve symmetry.
///
/// # Examples
///
/// ```
/// use strat_core::{Capacities, GlobalRanking, Matching};
/// use strat_graph::NodeId;
///
/// let ranking = GlobalRanking::identity(4);
/// let caps = Capacities::constant(4, 1);
/// let mut m = Matching::new(4);
/// m.connect(&ranking, &caps, NodeId::new(0), NodeId::new(2))?;
/// assert!(m.contains(NodeId::new(2), NodeId::new(0)));
/// assert_eq!(m.degree(NodeId::new(0)), 1);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Matching {
    /// `mates[v]` = mates of `v`, sorted best-rank-first.
    mates: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Matching {
    /// The empty configuration `C∅` over `n` peers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self { mates: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.mates.len()
    }

    /// Number of collaboration links.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Current number of mates of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        self.mates[v.index()].len()
    }

    /// Mates of `v`, best-rank-first.
    #[inline]
    #[must_use]
    pub fn mates(&self, v: NodeId) -> &[NodeId] {
        &self.mates[v.index()]
    }

    /// The single mate of `v` for 1-matchings (`None` if unmated).
    ///
    /// This is the paper's `σ(C, i)` accessor; see
    /// [`crate::distance::disorder`].
    #[must_use]
    pub fn mate_of(&self, v: NodeId) -> Option<NodeId> {
        debug_assert!(self.degree(v) <= 1, "mate_of used on a non-1-matching");
        self.mates[v.index()].first().copied()
    }

    /// Worst (lowest-ranked) current mate of `v`, if any.
    #[inline]
    #[must_use]
    pub fn worst_mate(&self, v: NodeId) -> Option<NodeId> {
        self.mates[v.index()].last().copied()
    }

    /// Whether `u` and `v` are currently matched together.
    #[must_use]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        // Mate lists are tiny (b(p) slots); linear scan of the shorter list.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.mates[a.index()].contains(&b)
    }

    /// Whether `v` uses all its slots under `caps`.
    #[inline]
    #[must_use]
    pub fn is_saturated(&self, caps: &Capacities, v: NodeId) -> bool {
        self.degree(v) >= caps.of(v) as usize
    }

    /// Whether `v` would welcome `candidate` as a new mate: either a slot is
    /// free, or `candidate` outranks `v`'s worst current mate.
    ///
    /// This is one half of the blocking-pair condition (§2); it does **not**
    /// check the acceptance graph or the reciprocal condition.
    #[must_use]
    pub fn would_accept(
        &self,
        ranking: &GlobalRanking,
        caps: &Capacities,
        v: NodeId,
        candidate: NodeId,
    ) -> bool {
        if v == candidate || caps.of(v) == 0 || self.contains(v, candidate) {
            return false;
        }
        if !self.is_saturated(caps, v) {
            return true;
        }
        let worst = self.worst_mate(v).expect("saturated peer with capacity > 0 has a mate");
        ranking.prefers(candidate, worst)
    }

    /// Connects `u` and `v`, keeping both mate lists rank-sorted.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidPair`] if `u == v` or already matched;
    /// * [`ModelError::CapacityExceeded`] if either endpoint is saturated.
    pub fn connect(
        &mut self,
        ranking: &GlobalRanking,
        caps: &Capacities,
        u: NodeId,
        v: NodeId,
    ) -> Result<(), ModelError> {
        if u == v || self.contains(u, v) {
            return Err(ModelError::InvalidPair { a: u, b: v });
        }
        for w in [u, v] {
            if self.is_saturated(caps, w) {
                return Err(ModelError::CapacityExceeded { node: w, capacity: caps.of(w) });
            }
        }
        self.insert_sorted(ranking, u, v);
        self.insert_sorted(ranking, v, u);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the link between `u` and `v`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotMatched`] if they are not matched together.
    pub fn disconnect(&mut self, u: NodeId, v: NodeId) -> Result<(), ModelError> {
        let pos_u = self.mates[u.index()].iter().position(|&w| w == v);
        let pos_v = self.mates[v.index()].iter().position(|&w| w == u);
        match (pos_u, pos_v) {
            (Some(pu), Some(pv)) => {
                self.mates[u.index()].remove(pu);
                self.mates[v.index()].remove(pv);
                self.edge_count -= 1;
                Ok(())
            }
            _ => Err(ModelError::NotMatched { a: u, b: v }),
        }
    }

    /// Drops all links of `v` (peer departure). Returns the former mates.
    pub fn isolate(&mut self, v: NodeId) -> Vec<NodeId> {
        let mates = core::mem::take(&mut self.mates[v.index()]);
        for &m in &mates {
            let pos = self.mates[m.index()]
                .iter()
                .position(|&w| w == v)
                .expect("matching is symmetric");
            self.mates[m.index()].remove(pos);
        }
        self.edge_count -= mates.len();
        mates
    }

    /// Exports the collaboration graph for structural analysis.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut builder = GraphBuilder::new(self.node_count());
        for (u, mates) in self.mates.iter().enumerate() {
            let u = NodeId::new(u);
            for &v in mates {
                if u < v {
                    builder.add_edge(u, v).expect("matching links are valid edges");
                }
            }
        }
        builder.build()
    }

    /// Union-find over the collaboration links (for cluster statistics
    /// without materializing a graph).
    #[must_use]
    pub fn to_union_find(&self) -> UnionFind {
        let mut uf = UnionFind::new(self.node_count());
        for (u, mates) in self.mates.iter().enumerate() {
            for &v in mates {
                uf.union(u, v.index());
            }
        }
        uf
    }

    /// Checks all structural invariants: symmetry, looplessness, capacity
    /// bounds, rank-sorted mate lists, consistent edge count.
    #[must_use]
    pub fn check_invariants(&self, ranking: &GlobalRanking, caps: &Capacities) -> bool {
        let mut half_edges = 0usize;
        for (u, mates) in self.mates.iter().enumerate() {
            let u = NodeId::new(u);
            if mates.len() > caps.of(u) as usize {
                return false;
            }
            if mates.windows(2).any(|w| !ranking.prefers(w[0], w[1])) {
                return false; // not strictly best-first (also catches duplicates)
            }
            for &v in mates {
                if v == u || !self.mates[v.index()].contains(&u) {
                    return false;
                }
            }
            half_edges += mates.len();
        }
        half_edges == 2 * self.edge_count
    }

    fn insert_sorted(&mut self, ranking: &GlobalRanking, owner: NodeId, mate: NodeId) {
        let list = &mut self.mates[owner.index()];
        let rank = ranking.rank_of(mate);
        let pos = list.partition_point(|&w| ranking.rank_of(w).is_better_than(rank));
        list.insert(pos, mate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn setup(count: usize, b0: u32) -> (GlobalRanking, Capacities, Matching) {
        (GlobalRanking::identity(count), Capacities::constant(count, b0), Matching::new(count))
    }

    #[test]
    fn empty_configuration() {
        let m = Matching::new(3);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.degree(n(0)), 0);
        assert_eq!(m.mate_of(n(1)), None);
        assert_eq!(m.worst_mate(n(2)), None);
    }

    #[test]
    fn connect_is_symmetric_and_sorted() {
        let (ranking, caps, mut m) = setup(5, 3);
        m.connect(&ranking, &caps, n(2), n(4)).unwrap();
        m.connect(&ranking, &caps, n(2), n(0)).unwrap();
        m.connect(&ranking, &caps, n(2), n(3)).unwrap();
        assert_eq!(m.mates(n(2)), &[n(0), n(3), n(4)]); // best-first
        assert_eq!(m.worst_mate(n(2)), Some(n(4)));
        assert!(m.contains(n(4), n(2)));
        assert_eq!(m.edge_count(), 3);
        assert!(m.check_invariants(&ranking, &caps));
    }

    #[test]
    fn connect_rejects_self_and_duplicate() {
        let (ranking, caps, mut m) = setup(3, 2);
        assert!(matches!(
            m.connect(&ranking, &caps, n(1), n(1)),
            Err(ModelError::InvalidPair { .. })
        ));
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        assert!(matches!(
            m.connect(&ranking, &caps, n(1), n(0)),
            Err(ModelError::InvalidPair { .. })
        ));
    }

    #[test]
    fn connect_respects_capacity() {
        let (ranking, caps, mut m) = setup(4, 1);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        let err = m.connect(&ranking, &caps, n(0), n(2)).unwrap_err();
        assert_eq!(err, ModelError::CapacityExceeded { node: n(0), capacity: 1 });
    }

    #[test]
    fn disconnect_and_isolate() {
        let (ranking, caps, mut m) = setup(4, 3);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        m.connect(&ranking, &caps, n(0), n(2)).unwrap();
        m.connect(&ranking, &caps, n(0), n(3)).unwrap();
        m.disconnect(n(0), n(2)).unwrap();
        assert!(!m.contains(n(0), n(2)));
        assert_eq!(m.edge_count(), 2);
        assert!(matches!(m.disconnect(n(0), n(2)), Err(ModelError::NotMatched { .. })));

        let dropped = m.isolate(n(0));
        assert_eq!(dropped, vec![n(1), n(3)]);
        assert_eq!(m.edge_count(), 0);
        assert!(m.check_invariants(&ranking, &caps));
    }

    #[test]
    fn would_accept_logic() {
        let (ranking, caps, mut m) = setup(4, 1);
        // Free slot: accepts anyone acceptable.
        assert!(m.would_accept(&ranking, &caps, n(2), n(3)));
        assert!(!m.would_accept(&ranking, &caps, n(2), n(2))); // self
        m.connect(&ranking, &caps, n(2), n(3)).unwrap();
        // Saturated with mate 3: accepts better peer 0, rejects worse-or-same.
        assert!(m.would_accept(&ranking, &caps, n(2), n(0)));
        assert!(!m.would_accept(&ranking, &caps, n(2), n(3))); // already mates
        assert!(!m.would_accept(&ranking, &caps, n(3), n(2))); // already mates
    }

    #[test]
    fn zero_capacity_never_accepts() {
        let ranking = GlobalRanking::identity(2);
        let caps = Capacities::constant(2, 0);
        let m = Matching::new(2);
        assert!(!m.would_accept(&ranking, &caps, n(0), n(1)));
    }

    #[test]
    fn to_graph_round_trip() {
        let (ranking, caps, mut m) = setup(4, 2);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        m.connect(&ranking, &caps, n(2), n(1)).unwrap();
        let g = m.to_graph();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(n(1), n(2)));
        let mut uf = m.to_union_find();
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn invariants_catch_capacity_violation() {
        let (ranking, _caps, mut m) = setup(3, 2);
        let big = Capacities::constant(3, 2);
        m.connect(&ranking, &big, n(0), n(1)).unwrap();
        m.connect(&ranking, &big, n(0), n(2)).unwrap();
        let small = Capacities::constant(3, 1);
        assert!(!m.check_invariants(&ranking, &small));
        assert!(m.check_invariants(&ranking, &big));
    }

    #[test]
    fn mate_lists_sorted_under_nonidentity_ranking() {
        // Node 2 best, node 0 middle, node 1 worst.
        let ranking =
            GlobalRanking::from_permutation(vec![n(2), n(0), n(1)]).unwrap();
        let caps = Capacities::constant(3, 2);
        let mut m = Matching::new(3);
        m.connect(&ranking, &caps, n(0), n(1)).unwrap();
        m.connect(&ranking, &caps, n(0), n(2)).unwrap();
        assert_eq!(m.mates(n(0)), &[n(2), n(1)]);
        assert!(m.check_invariants(&ranking, &caps));
    }
}
