//! Blocking pairs and stability (§2 of the paper).
//!
//! A **blocking pair** for configuration `C` is an acceptable pair `(p, q)`
//! not matched together such that both would welcome the other — each has a
//! free slot or prefers the other to its worst current mate. A configuration
//! without blocking pairs is **stable** (a Nash equilibrium).

use strat_graph::NodeId;

use crate::{Capacities, Matching, RankedAcceptance};

/// Whether `(p, q)` is a blocking pair of `matching`.
///
/// Checks acceptability, non-matched-ness, and the two reciprocal
/// "would accept" conditions.
///
/// # Examples
///
/// ```
/// use strat_core::{blocking, Capacities, GlobalRanking, Matching, RankedAcceptance};
/// use strat_graph::{generators, NodeId};
///
/// let acc = RankedAcceptance::new(generators::complete(2), GlobalRanking::identity(2))?;
/// let caps = Capacities::constant(2, 1);
/// let empty = Matching::new(2);
/// // Two unmated acceptable peers always block the empty configuration.
/// assert!(blocking::is_blocking_pair(&acc, &caps, &empty, NodeId::new(0), NodeId::new(1)));
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[must_use]
pub fn is_blocking_pair(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
    p: NodeId,
    q: NodeId,
) -> bool {
    p != q
        && acc.accepts(p, q)
        && !matching.contains(p, q)
        && matching.would_accept(acc.ranking(), caps, p, q)
        && matching.would_accept(acc.ranking(), caps, q, p)
}

/// Finds the **best** blocking mate for `p` (the *best mate* initiative):
/// the highest-ranked `q` such that `(p, q)` blocks `matching`, restricted
/// to peers for which `present` returns `true`.
///
/// Exploits the best-first ordering of the acceptance lists for early exit:
/// once a candidate is no longer attractive to `p`, no later one is.
#[must_use]
pub fn best_blocking_mate<F>(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
    p: NodeId,
    present: F,
) -> Option<NodeId>
where
    F: Fn(NodeId) -> bool,
{
    let ranking = acc.ranking();
    if caps.of(p) == 0 {
        return None;
    }
    let saturated = matching.is_saturated(caps, p);
    let worst_rank = matching.worst_mate(p).map(|w| ranking.rank_of(w));
    for &q in acc.neighbors_best_first(p) {
        if saturated {
            // Once q no longer improves on p's worst mate, stop: the list is
            // best-first, so nobody later improves either.
            let worst =
                worst_rank.expect("saturated peer with positive capacity has mates");
            if !ranking.rank_of(q).is_better_than(worst) {
                return None;
            }
        }
        if present(q)
            && !matching.contains(p, q)
            && matching.would_accept(ranking, caps, q, p)
        {
            // `q` is attractive to p here: either p has a free slot, or the
            // saturated check above guaranteed q outranks p's worst mate.
            return Some(q);
        }
    }
    None
}

/// Whether `matching` is stable: no blocking pair over all acceptance edges.
///
/// `O(m · b)`; meant for verification, tests, and experiment assertions.
#[must_use]
pub fn is_stable(acc: &RankedAcceptance, caps: &Capacities, matching: &Matching) -> bool {
    first_blocking_pair(acc, caps, matching).is_none()
}

/// Returns some blocking pair if one exists (for diagnostics).
#[must_use]
pub fn first_blocking_pair(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
) -> Option<(NodeId, NodeId)> {
    acc.graph().edges().find(|&(u, v)| is_blocking_pair(acc, caps, matching, u, v))
}

/// All blocking pairs (canonical `u < v` order). Test/diagnostic helper.
#[must_use]
pub fn blocking_pairs(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
) -> Vec<(NodeId, NodeId)> {
    acc.graph()
        .edges()
        .filter(|&(u, v)| is_blocking_pair(acc, caps, matching, u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use strat_graph::generators;

    use crate::GlobalRanking;

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn complete_setup(count: usize, b0: u32) -> (RankedAcceptance, Capacities) {
        let acc =
            RankedAcceptance::new(generators::complete(count), GlobalRanking::identity(count))
                .unwrap();
        (acc, Capacities::constant(count, b0))
    }

    #[test]
    fn empty_config_blocks_everywhere() {
        let (acc, caps) = complete_setup(4, 1);
        let m = Matching::new(4);
        assert!(!is_stable(&acc, &caps, &m));
        assert_eq!(blocking_pairs(&acc, &caps, &m).len(), 6);
    }

    #[test]
    fn stable_pairs_do_not_block() {
        let (acc, caps) = complete_setup(4, 1);
        let mut m = Matching::new(4);
        // Stable 1-matching on complete K4 with identity ranking: (0,1), (2,3).
        m.connect(acc.ranking(), &caps, n(0), n(1)).unwrap();
        m.connect(acc.ranking(), &caps, n(2), n(3)).unwrap();
        assert!(is_stable(&acc, &caps, &m));
        assert_eq!(first_blocking_pair(&acc, &caps, &m), None);
    }

    #[test]
    fn unstable_cross_pairing_detected() {
        let (acc, caps) = complete_setup(4, 1);
        let mut m = Matching::new(4);
        // (0,2), (1,3) is blocked by (0,1): both prefer each other.
        m.connect(acc.ranking(), &caps, n(0), n(2)).unwrap();
        m.connect(acc.ranking(), &caps, n(1), n(3)).unwrap();
        assert!(is_blocking_pair(&acc, &caps, &m, n(0), n(1)));
        assert_eq!(blocking_pairs(&acc, &caps, &m), vec![(n(0), n(1))]);
    }

    #[test]
    fn best_blocking_mate_returns_best() {
        let (acc, caps) = complete_setup(5, 1);
        let mut m = Matching::new(5);
        m.connect(acc.ranking(), &caps, n(3), n(4)).unwrap();
        // Peer 3 is mated to 4 but peers 0, 1, 2 are free: best is 0... but a
        // free better peer must also accept; 0 is free so yes.
        assert_eq!(best_blocking_mate(&acc, &caps, &m, n(3), |_| true), Some(n(0)));
    }

    #[test]
    fn best_blocking_mate_early_exit_when_saturated() {
        let (acc, caps) = complete_setup(4, 1);
        let mut m = Matching::new(4);
        m.connect(acc.ranking(), &caps, n(0), n(1)).unwrap();
        m.connect(acc.ranking(), &caps, n(2), n(3)).unwrap();
        // Stable: nobody has a blocking mate.
        for v in 0..4 {
            assert_eq!(best_blocking_mate(&acc, &caps, &m, n(v), |_| true), None);
        }
    }

    #[test]
    fn present_mask_excludes_peers() {
        let (acc, caps) = complete_setup(3, 1);
        let m = Matching::new(3);
        // Without mask peer 1's best blocking mate is 0; with 0 absent, it is 2.
        assert_eq!(best_blocking_mate(&acc, &caps, &m, n(1), |_| true), Some(n(0)));
        assert_eq!(best_blocking_mate(&acc, &caps, &m, n(1), |q| q != n(0)), Some(n(2)));
    }

    #[test]
    fn zero_capacity_peer_never_blocks() {
        let acc =
            RankedAcceptance::new(generators::complete(3), GlobalRanking::identity(3)).unwrap();
        let caps = Capacities::from_values(vec![0, 1, 1]);
        let m = Matching::new(3);
        assert!(!is_blocking_pair(&acc, &caps, &m, n(0), n(1)));
        assert_eq!(best_blocking_mate(&acc, &caps, &m, n(0), |_| true), None);
        assert_eq!(best_blocking_mate(&acc, &caps, &m, n(1), |_| true), Some(n(2)));
    }
}
