//! Blocking pairs and stability (§2 of the paper).
//!
//! A **blocking pair** for configuration `C` is an acceptable pair `(p, q)`
//! not matched together such that both would welcome the other — each has a
//! free slot or prefers the other to its worst current mate. A configuration
//! without blocking pairs is **stable** (a Nash equilibrium).
//!
//! The scans here are the innermost loops of every initiative and of every
//! stability check, so they run entirely on precomputed ranks: candidates
//! come from the CSR rows of [`RankedAcceptance`] (ids + ranks side by
//! side), current mates are skipped by a sorted two-pointer merge against
//! the candidate row, and the reciprocal "would accept" test is a single
//! rank comparison against the contacted peer's cached worst-mate rank.
//! No `rank_of` lookups and no membership scans happen per candidate.

use strat_graph::NodeId;

use crate::{Capacities, Matching, Rank, RankedAcceptance};

/// Whether `(p, q)` is a blocking pair of `matching`.
///
/// Checks acceptability, non-matched-ness, and the two reciprocal
/// "would accept" conditions.
///
/// # Examples
///
/// ```
/// use strat_core::{blocking, Capacities, GlobalRanking, Matching, RankedAcceptance};
/// use strat_graph::{generators, NodeId};
///
/// let acc = RankedAcceptance::new(generators::complete(2), GlobalRanking::identity(2))?;
/// let caps = Capacities::constant(2, 1);
/// let empty = Matching::new(2);
/// // Two unmated acceptable peers always block the empty configuration.
/// assert!(blocking::is_blocking_pair(&acc, &caps, &empty, NodeId::new(0), NodeId::new(1)));
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[must_use]
pub fn is_blocking_pair(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
    p: NodeId,
    q: NodeId,
) -> bool {
    if p == q || !acc.accepts(p, q) || matching.contains(p, q) {
        return false;
    }
    let ranking = acc.ranking();
    matching.would_accept_rank(caps, p, ranking.rank_of(q))
        && matching.would_accept_rank(caps, q, ranking.rank_of(p))
}

/// Finds the **best** blocking mate for `p` (the *best mate* initiative):
/// the highest-ranked `q` such that `(p, q)` blocks `matching`, restricted
/// to peers for which `present` returns `true`.
///
/// Exploits the best-first ordering of the acceptance lists for early exit:
/// once a candidate is no longer attractive to `p`, no later one is.
#[must_use]
pub fn best_blocking_mate<F>(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
    p: NodeId,
    present: F,
) -> Option<NodeId>
where
    F: Fn(NodeId) -> bool,
{
    // `p` stops being interested at its worst mate's rank once saturated;
    // an unsaturated peer is interested in its whole acceptance row.
    let attractive_below = accept_threshold(matching, caps, p);
    let p_rank = acc.ranking().rank_of(p);
    best_blocking_mate_below(acc, matching, p, p_rank, attractive_below, present, |q| {
        accept_threshold(matching, caps, q)
    })
}

/// Rank bound below which `v` welcomes a new candidate: the worst mate's
/// rank when saturated, "everything" when a slot is free, "nothing" when
/// `b(v) = 0`. Encoded as a raw rank position for branch-free comparisons.
#[inline]
pub(crate) fn accept_threshold(matching: &Matching, caps: &Capacities, v: NodeId) -> u32 {
    let cap = caps.of(v) as usize;
    if matching.degree(v) < cap {
        u32::MAX
    } else {
        // cap == 0 (threshold 0: accept nobody) or saturated (worst rank).
        matching.worst_rank(v).map_or(0, |r| r.position() as u32)
    }
}

/// Core of [`best_blocking_mate`]: scans `p`'s acceptance row best-first,
/// stopping at `attractive_below` (a raw rank position; `u32::MAX` means no
/// bound). The contacted side's acceptance test reads `threshold_of(q)` —
/// either computed on the fly (public entry point) or served from the
/// incrementally-maintained cache inside [`crate::Dynamics`].
pub(crate) fn best_blocking_mate_below<F, G>(
    acc: &RankedAcceptance,
    matching: &Matching,
    p: NodeId,
    p_rank: Rank,
    attractive_below: u32,
    present: F,
    threshold_of: G,
) -> Option<NodeId>
where
    F: Fn(NodeId) -> bool,
    G: Fn(NodeId) -> u32,
{
    if attractive_below == 0 {
        return None; // b(p) = 0, or saturated with the best possible mates
    }
    let p_pos = p_rank.position() as u32;
    let (ids, ranks) = acc.neighbors_with_ranks(p);
    let mate_ranks = matching.mate_ranks(p);
    let mut mate_ptr = 0usize;
    for (&q, &q_rank) in ids.iter().zip(ranks) {
        if q_rank.position() as u32 >= attractive_below {
            // Best-first row: nobody later is attractive to p either.
            return None;
        }
        // Sorted two-pointer merge: skip candidates already mated to p.
        // Ranks are globally unique, so equal rank means the same peer.
        while mate_ptr < mate_ranks.len() && mate_ranks[mate_ptr].is_better_than(q_rank) {
            mate_ptr += 1;
        }
        if mate_ptr < mate_ranks.len() && mate_ranks[mate_ptr] == q_rank {
            mate_ptr += 1;
            continue;
        }
        if present(q) && p_pos < threshold_of(q) {
            // `q` is attractive to p here (checked above) and welcomes p.
            return Some(q);
        }
    }
    None
}

/// Whether `matching` is stable: no blocking pair over all acceptance edges.
///
/// `O(m · b)`; meant for verification, tests, and experiment assertions.
#[must_use]
pub fn is_stable(acc: &RankedAcceptance, caps: &Capacities, matching: &Matching) -> bool {
    first_blocking_pair(acc, caps, matching).is_none()
}

/// Returns some blocking pair if one exists (for diagnostics).
#[must_use]
pub fn first_blocking_pair(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
) -> Option<(NodeId, NodeId)> {
    acc.graph()
        .edges()
        .find(|&(u, v)| is_blocking_pair(acc, caps, matching, u, v))
}

/// All blocking pairs (canonical `u < v` order). Test/diagnostic helper.
#[must_use]
pub fn blocking_pairs(
    acc: &RankedAcceptance,
    caps: &Capacities,
    matching: &Matching,
) -> Vec<(NodeId, NodeId)> {
    acc.graph()
        .edges()
        .filter(|&(u, v)| is_blocking_pair(acc, caps, matching, u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use strat_graph::generators;

    use crate::GlobalRanking;

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn complete_setup(count: usize, b0: u32) -> (RankedAcceptance, Capacities) {
        let acc =
            RankedAcceptance::new(generators::complete(count), GlobalRanking::identity(count))
                .unwrap();
        (acc, Capacities::constant(count, b0))
    }

    #[test]
    fn empty_config_blocks_everywhere() {
        let (acc, caps) = complete_setup(4, 1);
        let m = Matching::new(4);
        assert!(!is_stable(&acc, &caps, &m));
        assert_eq!(blocking_pairs(&acc, &caps, &m).len(), 6);
    }

    #[test]
    fn stable_pairs_do_not_block() {
        let (acc, caps) = complete_setup(4, 1);
        let mut m = Matching::new(4);
        // Stable 1-matching on complete K4 with identity ranking: (0,1), (2,3).
        m.connect(acc.ranking(), &caps, n(0), n(1)).unwrap();
        m.connect(acc.ranking(), &caps, n(2), n(3)).unwrap();
        assert!(is_stable(&acc, &caps, &m));
        assert_eq!(first_blocking_pair(&acc, &caps, &m), None);
    }

    #[test]
    fn unstable_cross_pairing_detected() {
        let (acc, caps) = complete_setup(4, 1);
        let mut m = Matching::new(4);
        // (0,2), (1,3) is blocked by (0,1): both prefer each other.
        m.connect(acc.ranking(), &caps, n(0), n(2)).unwrap();
        m.connect(acc.ranking(), &caps, n(1), n(3)).unwrap();
        assert!(is_blocking_pair(&acc, &caps, &m, n(0), n(1)));
        assert_eq!(blocking_pairs(&acc, &caps, &m), vec![(n(0), n(1))]);
    }

    #[test]
    fn best_blocking_mate_returns_best() {
        let (acc, caps) = complete_setup(5, 1);
        let mut m = Matching::new(5);
        m.connect(acc.ranking(), &caps, n(3), n(4)).unwrap();
        // Peer 3 is mated to 4 but peers 0, 1, 2 are free: best is 0... but a
        // free better peer must also accept; 0 is free so yes.
        assert_eq!(
            best_blocking_mate(&acc, &caps, &m, n(3), |_| true),
            Some(n(0))
        );
    }

    #[test]
    fn best_blocking_mate_early_exit_when_saturated() {
        let (acc, caps) = complete_setup(4, 1);
        let mut m = Matching::new(4);
        m.connect(acc.ranking(), &caps, n(0), n(1)).unwrap();
        m.connect(acc.ranking(), &caps, n(2), n(3)).unwrap();
        // Stable: nobody has a blocking mate.
        for v in 0..4 {
            assert_eq!(best_blocking_mate(&acc, &caps, &m, n(v), |_| true), None);
        }
    }

    #[test]
    fn present_mask_excludes_peers() {
        let (acc, caps) = complete_setup(3, 1);
        let m = Matching::new(3);
        // Without mask peer 1's best blocking mate is 0; with 0 absent, it is 2.
        assert_eq!(
            best_blocking_mate(&acc, &caps, &m, n(1), |_| true),
            Some(n(0))
        );
        assert_eq!(
            best_blocking_mate(&acc, &caps, &m, n(1), |q| q != n(0)),
            Some(n(2))
        );
    }

    #[test]
    fn zero_capacity_peer_never_blocks() {
        let acc =
            RankedAcceptance::new(generators::complete(3), GlobalRanking::identity(3)).unwrap();
        let caps = Capacities::from_values(vec![0, 1, 1]);
        let m = Matching::new(3);
        assert!(!is_blocking_pair(&acc, &caps, &m, n(0), n(1)));
        assert_eq!(best_blocking_mate(&acc, &caps, &m, n(0), |_| true), None);
        assert_eq!(
            best_blocking_mate(&acc, &caps, &m, n(1), |_| true),
            Some(n(2))
        );
    }

    #[test]
    fn mate_skip_handles_interleaved_mates() {
        // Peer 5's mates sit in the middle of its acceptance row; the merge
        // pointer must skip exactly those and nothing else.
        let (acc, caps) = complete_setup(6, 3);
        let mut m = Matching::new(6);
        m.connect(acc.ranking(), &caps, n(5), n(1)).unwrap();
        m.connect(acc.ranking(), &caps, n(5), n(3)).unwrap();
        // Free slot left, best non-mate is 0.
        assert_eq!(
            best_blocking_mate(&acc, &caps, &m, n(5), |_| true),
            Some(n(0))
        );
        // 0 absent: next non-mates are 2 (free) then 4.
        assert_eq!(
            best_blocking_mate(&acc, &caps, &m, n(5), |q| q != n(0)),
            Some(n(2))
        );
    }
}
