//! Generalized preference systems (§2 framework, §7 future work).
//!
//! The paper's analysis targets the *global ranking* utility class, but its
//! model — stable b-matching driven by per-peer preferences — is generic,
//! and the conclusion explicitly proposes richer utilities: *"Such a
//! combination can, for instance, be achieved by introducing a second type
//! of collaborations depending on a different global ranking or depending
//! on a symmetric ranking such as latency."* This module implements that
//! program:
//!
//! * [`PreferenceSystem`] — the abstract mate-comparison interface;
//! * [`GlobalPrefs`] — the paper's global ranking (no preference cycles;
//!   unique stable configuration);
//! * [`LatencyPrefs`] — a *symmetric* utility: peers prefer nearby peers
//!   (e.g. RTT). Symmetric utilities are also cycle-free (they derive from
//!   a potential on edges), so stability is still guaranteed — but the
//!   stable configuration clusters by *distance*, not rank;
//! * [`LexicographicPrefs`] — combination of two systems (primary, then
//!   secondary tie-break);
//! * [`PrefMatching`] + [`best_mate_dynamics`] — blocking-pair dynamics
//!   under arbitrary preferences, with oscillation detection. General
//!   roommates instances may have **no** stable configuration (Tan's odd
//!   preference cycles); [`best_mate_dynamics`] reports that instead of
//!   spinning forever, and [`odd_cycle_instance`] constructs the classic
//!   witness.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use strat_graph::{Graph, NodeId};

use crate::{Capacities, GlobalRanking};

/// A per-peer preference order over potential mates.
///
/// Implementations must be *strict* (no ties) for the dynamics to be
/// well-defined; use deterministic tie-breaks (e.g. node id) when the
/// underlying utility can collide.
pub trait PreferenceSystem {
    /// Number of peers.
    fn n(&self) -> usize;

    /// Whether peer `p` strictly prefers `a` to `b` as a mate.
    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool;

    /// The most preferred element of `candidates` for `p`, if any.
    fn best_of(&self, p: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        let mut best: Option<NodeId> = None;
        for &c in candidates {
            if best.is_none_or(|b| self.prefers(p, c, b)) {
                best = Some(c);
            }
        }
        best
    }

    /// The least preferred element of `candidates` for `p`, if any.
    fn worst_of(&self, p: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        let mut worst: Option<NodeId> = None;
        for &c in candidates {
            if worst.is_none_or(|w| self.prefers(p, w, c)) {
                worst = Some(c);
            }
        }
        worst
    }
}

/// The paper's global-ranking utility: everyone prefers better-ranked
/// peers. Cycle-free ⇒ unique stable configuration (§3).
#[derive(Debug, Clone)]
pub struct GlobalPrefs {
    ranking: GlobalRanking,
}

impl GlobalPrefs {
    /// Wraps a global ranking.
    #[must_use]
    pub fn new(ranking: GlobalRanking) -> Self {
        Self { ranking }
    }

    /// The wrapped ranking.
    #[must_use]
    pub fn ranking(&self) -> &GlobalRanking {
        &self.ranking
    }
}

impl PreferenceSystem for GlobalPrefs {
    fn n(&self) -> usize {
        self.ranking.len()
    }

    fn prefers(&self, _p: NodeId, a: NodeId, b: NodeId) -> bool {
        self.ranking.prefers(a, b)
    }
}

/// A symmetric, distance-based utility: peer `p` prefers mates with
/// smaller `|position(p) − position(a)|` (think RTT in a latency space).
///
/// Symmetric utilities admit no preference cycle either — along any cycle
/// `p₁ … p_k` where each prefers its successor to its predecessor, the
/// edge distances must strictly decrease around the cycle, which is
/// impossible — so a stable configuration exists; the induced clustering
/// is by *distance* rather than by rank (the paper's §7 streaming
/// trade-off).
#[derive(Debug, Clone)]
pub struct LatencyPrefs {
    positions: Vec<f64>,
}

impl LatencyPrefs {
    /// Builds from per-peer coordinates in a 1-D latency space.
    ///
    /// # Panics
    ///
    /// Panics if a position is not finite.
    #[must_use]
    pub fn new(positions: Vec<f64>) -> Self {
        assert!(
            positions.iter().all(|x| x.is_finite()),
            "positions must be finite"
        );
        Self { positions }
    }

    /// Distance between two peers.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        (self.positions[a.index()] - self.positions[b.index()]).abs()
    }
}

impl PreferenceSystem for LatencyPrefs {
    fn n(&self) -> usize {
        self.positions.len()
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        let da = self.distance(p, a);
        let db = self.distance(p, b);
        // Deterministic tie-break on node id keeps preferences strict.
        da < db || (da == db && a < b)
    }
}

/// Lexicographic combination: compare with `primary`; on a primary tie
/// (neither preferred), fall back to `secondary`.
///
/// With a strict primary this degenerates to the primary alone; it shines
/// when the primary is a *coarsened* utility (e.g. bandwidth classes) and
/// the secondary refines within classes (e.g. latency) — the paper's
/// "combining different utility functions".
#[derive(Debug, Clone)]
pub struct LexicographicPrefs<P, S> {
    primary: P,
    secondary: S,
}

impl<P: PreferenceSystem, S: PreferenceSystem> LexicographicPrefs<P, S> {
    /// Combines two systems.
    ///
    /// # Panics
    ///
    /// Panics if the systems cover different peer counts.
    #[must_use]
    pub fn new(primary: P, secondary: S) -> Self {
        assert_eq!(primary.n(), secondary.n(), "peer counts must agree");
        Self { primary, secondary }
    }
}

impl<P: PreferenceSystem, S: PreferenceSystem> PreferenceSystem for LexicographicPrefs<P, S> {
    fn n(&self) -> usize {
        self.primary.n()
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        if self.primary.prefers(p, a, b) {
            return true;
        }
        if self.primary.prefers(p, b, a) {
            return false;
        }
        self.secondary.prefers(p, a, b)
    }
}

/// A coarsened global ranking: peers are compared by `rank / class_width`
/// (banded classes), leaving intra-class comparisons to a secondary
/// system.
#[derive(Debug, Clone)]
pub struct BandedRankPrefs {
    ranking: GlobalRanking,
    class_width: usize,
}

impl BandedRankPrefs {
    /// Bands the ranking into classes of `class_width` consecutive ranks.
    ///
    /// # Panics
    ///
    /// Panics if `class_width == 0`.
    #[must_use]
    pub fn new(ranking: GlobalRanking, class_width: usize) -> Self {
        assert!(class_width > 0, "class width must be positive");
        Self {
            ranking,
            class_width,
        }
    }

    fn class(&self, v: NodeId) -> usize {
        self.ranking.rank_of(v).position() / self.class_width
    }
}

impl PreferenceSystem for BandedRankPrefs {
    fn n(&self) -> usize {
        self.ranking.len()
    }

    fn prefers(&self, _p: NodeId, a: NodeId, b: NodeId) -> bool {
        self.class(a) < self.class(b)
    }
}

/// A b-matching configuration under arbitrary preferences (mate lists
/// unsorted; worst-mate queries go through the preference system).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefMatching {
    mates: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl PrefMatching {
    /// Empty configuration.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            mates: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.mates.len()
    }

    /// Number of collaborations.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Mates of `v` (unordered).
    #[must_use]
    pub fn mates(&self, v: NodeId) -> &[NodeId] {
        &self.mates[v.index()]
    }

    /// Whether `u` and `v` are matched together.
    #[must_use]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.mates[u.index()].contains(&v)
    }

    fn connect(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u != v && !self.contains(u, v));
        self.mates[u.index()].push(v);
        self.mates[v.index()].push(u);
        self.edge_count += 1;
    }

    fn disconnect(&mut self, u: NodeId, v: NodeId) {
        let pu = self.mates[u.index()]
            .iter()
            .position(|&w| w == v)
            .expect("matched");
        let pv = self.mates[v.index()]
            .iter()
            .position(|&w| w == u)
            .expect("matched");
        self.mates[u.index()].swap_remove(pu);
        self.mates[v.index()].swap_remove(pv);
        self.edge_count -= 1;
    }

    /// Whether `v` would welcome `candidate` under `prefs`.
    #[must_use]
    pub fn would_accept<P: PreferenceSystem>(
        &self,
        prefs: &P,
        caps: &Capacities,
        v: NodeId,
        candidate: NodeId,
    ) -> bool {
        if v == candidate || caps.of(v) == 0 || self.contains(v, candidate) {
            return false;
        }
        if self.mates[v.index()].len() < caps.of(v) as usize {
            return true;
        }
        let worst = prefs
            .worst_of(v, &self.mates[v.index()])
            .expect("saturated peer has mates");
        prefs.prefers(v, candidate, worst)
    }

    /// Order-insensitive fingerprint of the configuration (for cycle
    /// detection in the dynamics).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.edge_count);
        for (u, mates) in self.mates.iter().enumerate() {
            for &v in mates {
                if u < v.index() {
                    edges.push((u as u32, v.raw()));
                }
            }
        }
        edges.sort_unstable();
        let mut hasher = DefaultHasher::new();
        edges.hash(&mut hasher);
        hasher.finish()
    }
}

/// Outcome of the generalized best-mate dynamics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefDynamicsOutcome {
    /// A stable configuration was reached.
    Stable(PrefMatching),
    /// The dynamics revisited a configuration: a preference cycle exists on
    /// this instance (Tan's condition fails) and no run of active
    /// initiatives can settle from here.
    Oscillating {
        /// The configuration at which the revisit was detected.
        at: PrefMatching,
        /// Active initiatives performed before detection.
        steps: u64,
    },
}

/// Runs deterministic round-robin best-mate dynamics under arbitrary
/// preferences until stability or a configuration revisit.
///
/// Each sweep gives every peer one initiative: find the best acceptable
/// blocking mate and match with it (evicting worst mates as needed). For
/// cycle-free systems — any [`GlobalPrefs`], [`LatencyPrefs`], or
/// lexicographic combination of them — this terminates in a stable
/// configuration (the argument of the paper's Theorem 1 applies verbatim:
/// a revisit would extract a preference cycle).
///
/// # Panics
///
/// Panics if sizes of `graph`, `prefs` and `caps` disagree.
pub fn best_mate_dynamics<P: PreferenceSystem>(
    graph: &Graph,
    prefs: &P,
    caps: &Capacities,
) -> PrefDynamicsOutcome {
    let n = graph.node_count();
    assert_eq!(prefs.n(), n, "preference system size mismatch");
    caps.check_len(n).expect("capacity size mismatch");
    let mut matching = PrefMatching::new(n);
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(matching.fingerprint());
    let mut steps = 0u64;
    loop {
        let mut any_active = false;
        for p in graph.nodes() {
            // Best blocking mate of p under prefs: single streaming pass,
            // no candidate buffer (this sweep dominates the runtime on
            // dense instances).
            let mut best: Option<NodeId> = None;
            for &q in graph.neighbors(p) {
                if best.is_none_or(|b| prefs.prefers(p, q, b))
                    && matching.would_accept(prefs, caps, p, q)
                    && matching.would_accept(prefs, caps, q, p)
                {
                    best = Some(q);
                }
            }
            let Some(q) = best else {
                continue;
            };
            // Evict worst mates if saturated, then connect.
            for v in [p, q] {
                if matching.mates(v).len() >= caps.of(v) as usize {
                    let worst = prefs
                        .worst_of(v, matching.mates(v))
                        .expect("saturated has mates");
                    matching.disconnect(v, worst);
                }
            }
            matching.connect(p, q);
            steps += 1;
            any_active = true;
        }
        if !any_active {
            return PrefDynamicsOutcome::Stable(matching);
        }
        if !seen.insert(matching.fingerprint()) {
            return PrefDynamicsOutcome::Oscillating {
                at: matching,
                steps,
            };
        }
    }
}

/// The classic stable-roommates instance **without** a stable matching:
/// three peers in an odd preference cycle (each prefers its successor)
/// plus an isolated option-less fourth. Returns `(graph, prefs)` where
/// prefs are encoded as explicit per-peer orders.
///
/// Used to demonstrate that general utilities lose the paper's
/// existence/uniqueness guarantees — exactly why the global-ranking class
/// matters.
#[must_use]
pub fn odd_cycle_instance() -> (Graph, ExplicitPrefs) {
    let n = |i: usize| NodeId::new(i);
    // Complete graph on 3 peers.
    let graph =
        Graph::from_edges(3, [(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]).expect("valid triangle");
    // 0 prefers 1 over 2; 1 prefers 2 over 0; 2 prefers 0 over 1.
    let orders = vec![vec![n(1), n(2)], vec![n(2), n(0)], vec![n(0), n(1)]];
    (graph, ExplicitPrefs::new(orders))
}

/// Preferences given as explicit per-peer orders (most preferred first).
/// Peers absent from an order are less preferred than all listed ones,
/// compared by node id among themselves.
#[derive(Debug, Clone)]
pub struct ExplicitPrefs {
    orders: Vec<Vec<NodeId>>,
}

impl ExplicitPrefs {
    /// Builds from explicit orders.
    #[must_use]
    pub fn new(orders: Vec<Vec<NodeId>>) -> Self {
        Self { orders }
    }

    fn position(&self, p: NodeId, a: NodeId) -> usize {
        self.orders[p.index()]
            .iter()
            .position(|&x| x == a)
            .unwrap_or(usize::MAX - a.index())
    }
}

impl PreferenceSystem for ExplicitPrefs {
    fn n(&self) -> usize {
        self.orders.len()
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        self.position(p, a) < self.position(p, b)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use crate::{stable_configuration, RankedAcceptance};

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn global_prefs_match_ranking() {
        let prefs = GlobalPrefs::new(GlobalRanking::identity(4));
        assert!(prefs.prefers(n(3), n(0), n(1)));
        assert!(!prefs.prefers(n(3), n(2), n(1)));
        assert_eq!(prefs.best_of(n(0), &[n(2), n(1), n(3)]), Some(n(1)));
        assert_eq!(prefs.worst_of(n(0), &[n(2), n(1), n(3)]), Some(n(3)));
    }

    #[test]
    fn latency_prefs_prefer_nearby() {
        let prefs = LatencyPrefs::new(vec![0.0, 1.0, 5.0, 5.5]);
        assert!(prefs.prefers(n(0), n(1), n(2)));
        assert!(prefs.prefers(n(2), n(3), n(1)));
        assert_eq!(prefs.distance(n(2), n(3)), 0.5);
    }

    #[test]
    fn lexicographic_falls_back_to_secondary() {
        let primary = BandedRankPrefs::new(GlobalRanking::identity(6), 3);
        let secondary = LatencyPrefs::new(vec![0.0, 9.0, 1.0, 2.0, 8.0, 7.0]);
        let prefs = LexicographicPrefs::new(primary, secondary);
        // 1 and 2 share the top class {0,1,2}: latency decides for peer 0.
        assert!(prefs.prefers(n(0), n(2), n(1)));
        // Across classes, the band wins regardless of latency.
        assert!(prefs.prefers(n(0), n(1), n(3)));
    }

    #[test]
    fn global_prefs_dynamics_agree_with_algorithm1() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            let graph = generators::erdos_renyi_mean_degree(40, 8.0, &mut rng);
            let ranking = GlobalRanking::random(40, &mut rng);
            let caps = Capacities::constant(40, 2);
            let prefs = GlobalPrefs::new(ranking.clone());
            let outcome = best_mate_dynamics(&graph, &prefs, &caps);
            let PrefDynamicsOutcome::Stable(m) = outcome else {
                panic!("global ranking oscillated");
            };
            let acc = RankedAcceptance::new(graph, ranking).unwrap();
            let reference = stable_configuration(&acc, &caps).unwrap();
            // Same edge sets.
            for v in 0..40 {
                let mut a: Vec<_> = m.mates(n(v)).to_vec();
                let mut b: Vec<_> = reference.mates(n(v)).to_vec();
                a.sort();
                b.sort();
                assert_eq!(a, b, "peer {v}");
            }
        }
    }

    #[test]
    fn latency_prefs_reach_stability_and_cluster_by_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n_peers = 60;
        let positions: Vec<f64> = (0..n_peers).map(|i| (i * 37 % n_peers) as f64).collect();
        let graph = generators::erdos_renyi_mean_degree(n_peers, 12.0, &mut rng);
        let prefs = LatencyPrefs::new(positions.clone());
        let caps = Capacities::constant(n_peers, 2);
        let outcome = best_mate_dynamics(&graph, &prefs, &caps);
        let PrefDynamicsOutcome::Stable(m) = outcome else {
            panic!("symmetric utility oscillated");
        };
        // Mates are nearby in latency on average: compare against random
        // acceptable pairs.
        let mut mate_dist = 0.0;
        let mut mate_count = 0.0;
        for v in 0..n_peers {
            for &w in m.mates(NodeId::new(v)) {
                mate_dist += (positions[v] - positions[w.index()]).abs();
                mate_count += 1.0;
            }
        }
        let mate_mean = mate_dist / mate_count;
        let mut edge_dist = 0.0;
        let mut edge_count = 0.0;
        for (u, w) in graph.edges() {
            edge_dist += (positions[u.index()] - positions[w.index()]).abs();
            edge_count += 1.0;
        }
        let edge_mean = edge_dist / edge_count;
        assert!(
            mate_mean < 0.5 * edge_mean,
            "latency clustering absent: mates {mate_mean:.1} vs acceptable {edge_mean:.1}"
        );
    }

    #[test]
    fn odd_cycle_has_no_stable_matching() {
        let (graph, prefs) = odd_cycle_instance();
        let caps = Capacities::constant(3, 1);
        match best_mate_dynamics(&graph, &prefs, &caps) {
            PrefDynamicsOutcome::Oscillating { steps, .. } => {
                assert!(steps > 0);
            }
            PrefDynamicsOutcome::Stable(m) => {
                panic!("odd preference cycle produced a 'stable' matching: {m:?}")
            }
        }
    }

    #[test]
    fn explicit_prefs_unlisted_peers_rank_last() {
        let prefs = ExplicitPrefs::new(vec![vec![n(2)], vec![], vec![]]);
        assert!(prefs.prefers(n(0), n(2), n(1)));
        // Among unlisted peers, larger index is preferred (usize::MAX - id).
        assert!(prefs.prefers(n(0), n(2), n(1)));
    }

    #[test]
    fn pref_matching_basics() {
        let mut m = PrefMatching::new(3);
        m.connect(n(0), n(2));
        assert!(m.contains(n(2), n(0)));
        assert_eq!(m.edge_count(), 1);
        let f1 = m.fingerprint();
        m.disconnect(n(0), n(2));
        assert_eq!(m.edge_count(), 0);
        m.connect(n(2), n(0));
        assert_eq!(m.fingerprint(), f1, "fingerprint must be order-insensitive");
    }

    #[test]
    fn banded_prefs_group_ranks() {
        let prefs = BandedRankPrefs::new(GlobalRanking::identity(9), 3);
        assert!(!prefs.prefers(n(8), n(1), n(2))); // same class
        assert!(prefs.prefers(n(8), n(2), n(3))); // class 0 vs class 1
    }
}
