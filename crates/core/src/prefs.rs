//! Generalized preference systems (§2 framework, §7 future work).
//!
//! The paper's analysis targets the *global ranking* utility class, but its
//! model — stable b-matching driven by per-peer preferences — is generic,
//! and the conclusion explicitly proposes richer utilities: *"Such a
//! combination can, for instance, be achieved by introducing a second type
//! of collaborations depending on a different global ranking or depending
//! on a symmetric ranking such as latency."* This module implements that
//! program:
//!
//! * [`PreferenceSystem`] — the abstract mate-comparison interface;
//! * [`GlobalPrefs`] — the paper's global ranking (no preference cycles;
//!   unique stable configuration);
//! * [`LatencyPrefs`] — a *symmetric* utility: peers prefer nearby peers
//!   (e.g. RTT). Symmetric utilities are also cycle-free (they derive from
//!   a potential on edges), so stability is still guaranteed — but the
//!   stable configuration clusters by *distance*, not rank;
//! * [`LexicographicPrefs`] — combination of two systems (primary, then
//!   secondary tie-break);
//! * [`PrefAcceptance`] — the precomputed per-neighborhood key table
//!   ([`PreferenceKeys`]) that lets the generic incremental engine
//!   ([`crate::engine::Engine`]) run *any* preference system at the ranked
//!   path's speed: rows sorted best-first by the owner's preference, with
//!   reciprocal keys materialized per slot;
//! * [`GeneralDynamics`] — the initiative-process driver over arbitrary
//!   preferences (the generalized sibling of [`crate::Dynamics`]), with
//!   churn support and a keyed disorder metric;
//! * [`PrefMatching`] + [`best_mate_dynamics`] — blocking-pair dynamics
//!   under arbitrary preferences, with oscillation detection. General
//!   roommates instances may have **no** stable configuration (Tan's odd
//!   preference cycles); [`best_mate_dynamics`] reports that instead of
//!   spinning forever, and [`odd_cycle_instance`] constructs the classic
//!   witness. Since the engine unification, `best_mate_dynamics` runs on
//!   the dirty-set path (clean peers skip their scans); the historical
//!   full-scan implementation survives as
//!   [`crate::reference::best_mate_dynamics`] for differential testing
//!   and benchmarking.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use rand::Rng;
use strat_graph::{Graph, NodeId};

use crate::{
    distance, Capacities, DynamicsDriver, Engine, GlobalRanking, InitiativeOutcome,
    InitiativeStrategy, Matching, ModelError, PreferenceKeys, Rank,
};

/// A per-peer preference order over potential mates.
///
/// Implementations must be *strict* (no ties) for the dynamics to be
/// well-defined; use deterministic tie-breaks (e.g. node id) when the
/// underlying utility can collide.
pub trait PreferenceSystem {
    /// Number of peers.
    fn n(&self) -> usize;

    /// Whether peer `p` strictly prefers `a` to `b` as a mate.
    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool;

    /// An optional scalar **sort key** for `candidate` in `p`'s eyes:
    /// when every member of a neighborhood reports `Some`, ordering the
    /// row by ascending `(key, id)` must reproduce exactly the order of
    /// pairwise [`prefers`](Self::prefers) comparisons with the id
    /// tie-break — the contract [`PrefAcceptance::build`] relies on to
    /// replace `O(deg log deg)` *indirect preference comparisons* per row
    /// with `deg` key evaluations and a plain scalar sort (the cold-start
    /// cost of the generalized engine is dominated by table
    /// construction).
    ///
    /// Return `None` (the default) when no such scalar exists (e.g.
    /// lexicographic combinations); builders fall back to the comparator
    /// path.
    fn sort_key(&self, _p: NodeId, _candidate: NodeId) -> Option<f64> {
        None
    }

    /// The most preferred element of `candidates` for `p`, if any.
    fn best_of(&self, p: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        let mut best: Option<NodeId> = None;
        for &c in candidates {
            if best.is_none_or(|b| self.prefers(p, c, b)) {
                best = Some(c);
            }
        }
        best
    }

    /// The least preferred element of `candidates` for `p`, if any.
    fn worst_of(&self, p: NodeId, candidates: &[NodeId]) -> Option<NodeId> {
        let mut worst: Option<NodeId> = None;
        for &c in candidates {
            if worst.is_none_or(|w| self.prefers(p, w, c)) {
                worst = Some(c);
            }
        }
        worst
    }
}

/// The paper's global-ranking utility: everyone prefers better-ranked
/// peers. Cycle-free ⇒ unique stable configuration (§3).
#[derive(Debug, Clone)]
pub struct GlobalPrefs {
    ranking: GlobalRanking,
}

impl GlobalPrefs {
    /// Wraps a global ranking.
    #[must_use]
    pub fn new(ranking: GlobalRanking) -> Self {
        Self { ranking }
    }

    /// The wrapped ranking.
    #[must_use]
    pub fn ranking(&self) -> &GlobalRanking {
        &self.ranking
    }
}

impl PreferenceSystem for GlobalPrefs {
    fn n(&self) -> usize {
        self.ranking.len()
    }

    fn prefers(&self, _p: NodeId, a: NodeId, b: NodeId) -> bool {
        self.ranking.prefers(a, b)
    }

    fn sort_key(&self, _p: NodeId, candidate: NodeId) -> Option<f64> {
        // Rank positions are < 2^32, exactly representable in f64.
        Some(self.ranking.rank_of(candidate).position() as f64)
    }
}

/// A symmetric, distance-based utility: peer `p` prefers mates with
/// smaller `|position(p) − position(a)|` (think RTT in a latency space).
///
/// Symmetric utilities admit no preference cycle either — along any cycle
/// `p₁ … p_k` where each prefers its successor to its predecessor, the
/// edge distances must strictly decrease around the cycle, which is
/// impossible — so a stable configuration exists; the induced clustering
/// is by *distance* rather than by rank (the paper's §7 streaming
/// trade-off).
#[derive(Debug, Clone)]
pub struct LatencyPrefs {
    positions: Vec<f64>,
}

impl LatencyPrefs {
    /// Builds from per-peer coordinates in a 1-D latency space.
    ///
    /// # Panics
    ///
    /// Panics if a position is not finite.
    #[must_use]
    pub fn new(positions: Vec<f64>) -> Self {
        assert!(
            positions.iter().all(|x| x.is_finite()),
            "positions must be finite"
        );
        Self { positions }
    }

    /// Distance between two peers.
    #[must_use]
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        (self.positions[a.index()] - self.positions[b.index()]).abs()
    }
}

impl PreferenceSystem for LatencyPrefs {
    fn n(&self) -> usize {
        self.positions.len()
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        let da = self.distance(p, a);
        let db = self.distance(p, b);
        // Deterministic tie-break on node id keeps preferences strict.
        da < db || (da == db && a < b)
    }

    fn sort_key(&self, p: NodeId, candidate: NodeId) -> Option<f64> {
        // `prefers` is exactly "(distance, id) ascending" (positions are
        // finite, so distances never collide as NaN).
        Some(self.distance(p, candidate))
    }
}

/// Lexicographic combination: compare with `primary`; on a primary tie
/// (neither preferred), fall back to `secondary`.
///
/// With a strict primary this degenerates to the primary alone; it shines
/// when the primary is a *coarsened* utility (e.g. bandwidth classes) and
/// the secondary refines within classes (e.g. latency) — the paper's
/// "combining different utility functions".
#[derive(Debug, Clone)]
pub struct LexicographicPrefs<P, S> {
    primary: P,
    secondary: S,
}

impl<P: PreferenceSystem, S: PreferenceSystem> LexicographicPrefs<P, S> {
    /// Combines two systems.
    ///
    /// # Panics
    ///
    /// Panics if the systems cover different peer counts.
    #[must_use]
    pub fn new(primary: P, secondary: S) -> Self {
        assert_eq!(primary.n(), secondary.n(), "peer counts must agree");
        Self { primary, secondary }
    }
}

impl<P: PreferenceSystem, S: PreferenceSystem> PreferenceSystem for LexicographicPrefs<P, S> {
    fn n(&self) -> usize {
        self.primary.n()
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        if self.primary.prefers(p, a, b) {
            return true;
        }
        if self.primary.prefers(p, b, a) {
            return false;
        }
        self.secondary.prefers(p, a, b)
    }
}

/// A coarsened global ranking: peers are compared by `rank / class_width`
/// (banded classes), leaving intra-class comparisons to a secondary
/// system.
#[derive(Debug, Clone)]
pub struct BandedRankPrefs {
    ranking: GlobalRanking,
    class_width: usize,
}

impl BandedRankPrefs {
    /// Bands the ranking into classes of `class_width` consecutive ranks.
    ///
    /// # Panics
    ///
    /// Panics if `class_width == 0`.
    #[must_use]
    pub fn new(ranking: GlobalRanking, class_width: usize) -> Self {
        assert!(class_width > 0, "class width must be positive");
        Self {
            ranking,
            class_width,
        }
    }

    fn class(&self, v: NodeId) -> usize {
        self.ranking.rank_of(v).position() / self.class_width
    }
}

impl PreferenceSystem for BandedRankPrefs {
    fn n(&self) -> usize {
        self.ranking.len()
    }

    fn prefers(&self, _p: NodeId, a: NodeId, b: NodeId) -> bool {
        self.class(a) < self.class(b)
    }

    fn sort_key(&self, _p: NodeId, candidate: NodeId) -> Option<f64> {
        // Intra-class ties resolve to ascending id under `(key, id)` —
        // the same deterministic strictness the comparator path imposes.
        Some(self.class(candidate) as f64)
    }
}

/// A b-matching configuration under arbitrary preferences (mate lists
/// unsorted; worst-mate queries go through the preference system).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefMatching {
    mates: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl PrefMatching {
    /// Empty configuration.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            mates: vec![Vec::new(); n],
            edge_count: 0,
        }
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.mates.len()
    }

    /// Number of collaborations.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Mates of `v` (unordered).
    #[must_use]
    pub fn mates(&self, v: NodeId) -> &[NodeId] {
        &self.mates[v.index()]
    }

    /// Whether `u` and `v` are matched together.
    #[must_use]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.mates[u.index()].contains(&v)
    }

    pub(crate) fn connect(&mut self, u: NodeId, v: NodeId) {
        debug_assert!(u != v && !self.contains(u, v));
        self.mates[u.index()].push(v);
        self.mates[v.index()].push(u);
        self.edge_count += 1;
    }

    pub(crate) fn disconnect(&mut self, u: NodeId, v: NodeId) {
        let pu = self.mates[u.index()]
            .iter()
            .position(|&w| w == v)
            .expect("matched");
        let pv = self.mates[v.index()]
            .iter()
            .position(|&w| w == u)
            .expect("matched");
        self.mates[u.index()].swap_remove(pu);
        self.mates[v.index()].swap_remove(pv);
        self.edge_count -= 1;
    }

    /// Whether `v` would welcome `candidate` under `prefs`.
    #[must_use]
    pub fn would_accept<P: PreferenceSystem>(
        &self,
        prefs: &P,
        caps: &Capacities,
        v: NodeId,
        candidate: NodeId,
    ) -> bool {
        if v == candidate || caps.of(v) == 0 || self.contains(v, candidate) {
            return false;
        }
        if self.mates[v.index()].len() < caps.of(v) as usize {
            return true;
        }
        let worst = prefs
            .worst_of(v, &self.mates[v.index()])
            .expect("saturated peer has mates");
        prefs.prefers(v, candidate, worst)
    }

    /// Order-insensitive fingerprint of the configuration (for cycle
    /// detection in the dynamics).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.edge_count);
        for (u, mates) in self.mates.iter().enumerate() {
            for &v in mates {
                if u < v.index() {
                    edges.push((u as u32, v.raw()));
                }
            }
        }
        edges.sort_unstable();
        let mut hasher = DefaultHasher::new();
        edges.hash(&mut hasher);
        hasher.finish()
    }
}

/// Outcome of the generalized best-mate dynamics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefDynamicsOutcome {
    /// A stable configuration was reached.
    Stable(PrefMatching),
    /// The dynamics revisited a configuration: a preference cycle exists on
    /// this instance (Tan's condition fails) and no run of active
    /// initiatives can settle from here.
    Oscillating {
        /// The configuration at which the revisit was detected.
        at: PrefMatching,
        /// Active initiatives performed before detection.
        steps: u64,
    },
}

/// Runs deterministic round-robin best-mate dynamics under arbitrary
/// preferences until stability or a configuration revisit.
///
/// Each sweep gives every peer one initiative: find the best acceptable
/// blocking mate and match with it (evicting worst mates as needed). For
/// cycle-free systems — any [`GlobalPrefs`], [`LatencyPrefs`], or
/// lexicographic combination of them — this terminates in a stable
/// configuration (the argument of the paper's Theorem 1 applies verbatim:
/// a revisit would extract a preference cycle).
///
/// Internally the sweeps run on the generic incremental engine over a
/// [`PrefAcceptance`] key table: a peer whose last scan found no blocking
/// mate is *clean* and skips its scan entirely until an event in its
/// neighborhood can re-create one (the dirty-set memo of
/// [`crate::engine::Engine`]). A clean peer's scan would have returned
/// `None` anyway, so the sequence of active initiatives — and therefore
/// every intermediate and final configuration, including the reported
/// `steps` and oscillation point — is identical to the historical full-scan
/// implementation retained as [`crate::reference::best_mate_dynamics`]
/// (which differential tests assert).
///
/// # Panics
///
/// Panics if sizes of `graph`, `prefs` and `caps` disagree.
pub fn best_mate_dynamics<P: PreferenceSystem>(
    graph: &Graph,
    prefs: &P,
    caps: &Capacities,
) -> PrefDynamicsOutcome {
    let n = graph.node_count();
    assert_eq!(prefs.n(), n, "preference system size mismatch");
    caps.check_len(n).expect("capacity size mismatch");
    let keys = PrefAcceptance::build(graph, prefs);
    let mut engine =
        Engine::new(keys, caps.clone(), InitiativeStrategy::BestMate).expect("sizes checked above");
    // The engine's arena matching caches preference keys; the public
    // outcome keeps the historical `PrefMatching` representation, rebuilt
    // by replaying the engine's own connect/evict events in order (cheap:
    // O(b) per active initiative, off the scan hot path).
    let mut shadow = PrefMatching::new(n);
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(shadow.fingerprint());
    let mut steps = 0u64;
    loop {
        let mut any_active = false;
        for p in graph.nodes() {
            if let InitiativeOutcome::Active {
                peer,
                mate,
                dropped_by_peer,
                dropped_by_mate,
            } = engine.best_mate_initiative(p)
            {
                if let Some(w) = dropped_by_peer {
                    shadow.disconnect(peer, w);
                }
                if let Some(w) = dropped_by_mate {
                    shadow.disconnect(mate, w);
                }
                shadow.connect(peer, mate);
                steps += 1;
                any_active = true;
            }
        }
        if !any_active {
            return PrefDynamicsOutcome::Stable(shadow);
        }
        if !seen.insert(shadow.fingerprint()) {
            return PrefDynamicsOutcome::Oscillating { at: shadow, steps };
        }
    }
}

/// Precomputed preference-key table over an acceptance graph: the
/// [`PreferenceKeys`] instantiation for arbitrary [`PreferenceSystem`]s,
/// built once per topology (the generalized analogue of
/// [`crate::RankedAcceptance`]'s rank-sorted CSR rows).
///
/// Layout: one CSR arena holding, per peer, its acceptance row sorted
/// **best-first by the owner's preference**, a parallel key slice (key of
/// slot `k` is simply `k` — the owner's local preference position), and a
/// parallel **reciprocal key** slice (`rev_keys[k]` = the position the
/// `k`-th neighbour gives the owner in *its* row). The reciprocal half of
/// every blocking-pair test thus becomes a single contiguous array read —
/// no preference comparison runs after construction.
///
/// Construction is `O(Σ deg · log deg)` comparisons for the per-row sorts
/// plus two `O(Σ deg)` counting passes for the reciprocal keys (the same
/// cursor scatter the swarm overlay uses: the underlying adjacency rows
/// ascend by id, so the slots pointing at a fixed target are visited in
/// exactly that target's row order).
#[derive(Debug, Clone)]
pub struct PrefAcceptance {
    /// CSR row boundaries: row `v` is `adj[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<u32>,
    /// Flattened adjacency, each row sorted best-first by owner preference.
    adj: Vec<NodeId>,
    /// `adj_keys[offsets[v] + k] == Rank::new(k)` — materialized so engine
    /// scans consume one contiguous slice per row.
    adj_keys: Vec<Rank>,
    /// `rev_keys[offsets[v] + k]` = key that `adj[offsets[v] + k]` assigns
    /// to `v` in its own row.
    rev_keys: Vec<Rank>,
}

impl PrefAcceptance {
    /// Builds the key table for `graph` under `prefs`.
    ///
    /// # Panics
    ///
    /// Panics if `graph` and `prefs` cover different peer counts.
    #[must_use]
    pub fn build<P: PreferenceSystem>(graph: &Graph, prefs: &P) -> Self {
        let n = graph.node_count();
        assert_eq!(prefs.n(), n, "preference system size mismatch");
        let total: usize = graph.nodes().map(|v| graph.degree(v)).sum();
        assert!(
            total <= u32::MAX as usize,
            "acceptance graph too large for CSR offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut running = 0usize;
        for v in graph.nodes() {
            running += graph.degree(v);
            offsets.push(running as u32);
        }

        // Pass 1: preference position of every id-ordered slot. Strict
        // preferences (the trait contract) decide every comparison with one
        // `prefers` call; should an implementation still tie (e.g. a bare
        // [`BandedRankPrefs`] outside a lexicographic wrapper), the node-id
        // fallback keeps the comparator a total order — the table then
        // *imposes* the strictness the contract asks for, deterministically,
        // instead of handing `sort_unstable_by` an inconsistent comparator.
        //
        // When the system provides scalar sort keys
        // ([`PreferenceSystem::sort_key`]), each row sorts by its cached
        // `(key, id)` pairs instead: `deg` key evaluations + a scalar sort
        // replace `O(deg log deg)` indirect `prefers` calls. The key
        // contract makes the two paths produce the identical order, so the
        // table — and everything downstream — is bit-identical either way
        // (this is what seeds the generalized engine's cold start the way
        // Algorithm 1's precomputed ranks seed the ranked path).
        let mut pref_pos = vec![0u32; total];
        let mut order: Vec<u32> = Vec::new();
        let mut keys: Vec<f64> = Vec::new();
        for v in graph.nodes() {
            let row = graph.neighbors(v);
            let base = offsets[v.index()] as usize;
            order.clear();
            order.extend(0..row.len() as u32);
            keys.clear();
            let mut keyed = true;
            for &q in row {
                match prefs.sort_key(v, q) {
                    Some(key) => keys.push(key),
                    None => {
                        keyed = false;
                        break;
                    }
                }
            }
            if keyed {
                order.sort_unstable_by(|&a, &b| {
                    keys[a as usize]
                        .total_cmp(&keys[b as usize])
                        .then_with(|| row[a as usize].cmp(&row[b as usize]))
                });
            } else {
                order.sort_unstable_by(|&a, &b| {
                    let (qa, qb) = (row[a as usize], row[b as usize]);
                    if prefs.prefers(v, qa, qb) {
                        Ordering::Less
                    } else if prefs.prefers(v, qb, qa) {
                        Ordering::Greater
                    } else {
                        qa.cmp(&qb)
                    }
                });
            }
            for (pos, &slot) in order.iter().enumerate() {
                pref_pos[base + slot as usize] = pos as u32;
            }
        }

        // Pass 2: reverse slot of every id-ordered slot via cursor
        // counting — adjacency rows ascend by id, so for a fixed target
        // `q` the slots `(v → q)` are visited in exactly the order of
        // `q`'s own row.
        let mut rev_slot = vec![0u32; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for v in graph.nodes() {
            let base = offsets[v.index()] as usize;
            for (k, &q) in graph.neighbors(v).iter().enumerate() {
                rev_slot[base + k] = cursor[q.index()];
                cursor[q.index()] += 1;
            }
        }

        // Pass 3: scatter into the preference-sorted layout.
        let mut adj = vec![NodeId::new(0); total];
        let mut adj_keys = vec![Rank::new(0); total];
        let mut rev_keys = vec![Rank::new(0); total];
        for v in graph.nodes() {
            let base = offsets[v.index()] as usize;
            for (k, &q) in graph.neighbors(v).iter().enumerate() {
                let pos = pref_pos[base + k] as usize;
                adj[base + pos] = q;
                adj_keys[base + pos] = Rank::new(pos);
                rev_keys[base + pos] = Rank::new(pref_pos[rev_slot[base + k] as usize] as usize);
            }
        }
        Self {
            offsets,
            adj,
            adj_keys,
            rev_keys,
        }
    }

    /// CSR row bounds of `v`.
    #[inline]
    fn bounds(&self, v: NodeId) -> (usize, usize) {
        (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        )
    }

    /// Number of acceptable peers of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        let (lo, hi) = self.bounds(v);
        hi - lo
    }

    /// Acceptable peers of `v`, most preferred first.
    #[inline]
    #[must_use]
    pub fn neighbors_best_first(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = self.bounds(v);
        &self.adj[lo..hi]
    }
}

impl PreferenceKeys for PrefAcceptance {
    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    #[inline]
    fn row(&self, v: NodeId) -> (&[NodeId], &[Rank]) {
        let (lo, hi) = self.bounds(v);
        (&self.adj[lo..hi], &self.adj_keys[lo..hi])
    }

    #[inline]
    fn rev_key(&self, v: NodeId, k: usize) -> Rank {
        self.rev_keys[self.offsets[v.index()] as usize + k]
    }
}

/// Order-insensitive fingerprint of an arena configuration (the
/// [`PrefMatching::fingerprint`] analogue for [`Matching`], used by the
/// engine-side revisit detection).
fn matching_fingerprint(m: &Matching) -> u64 {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m.edge_count());
    for u in 0..m.node_count() {
        let u_id = NodeId::new(u);
        for &v in m.mates(u_id) {
            if u < v.index() {
                edges.push((u as u32, v.raw()));
            }
        }
    }
    edges.sort_unstable();
    let mut hasher = DefaultHasher::new();
    edges.hash(&mut hasher);
    hasher.finish()
}

/// Runs deterministic round-robin best-mate sweeps on `engine` until
/// stability, returning the number of active initiatives performed.
///
/// # Errors
///
/// Returns [`ModelError::NoStableConfiguration`] when a configuration is
/// revisited (odd preference cycle).
fn settle_engine<K: PreferenceKeys>(engine: &mut Engine<K>) -> Result<u64, ModelError> {
    let n = engine.node_count();
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(matching_fingerprint(engine.matching()));
    let mut steps = 0u64;
    loop {
        let mut any_active = false;
        for p in 0..n {
            if engine.best_mate_initiative(NodeId::new(p)).is_active() {
                steps += 1;
                any_active = true;
            }
        }
        if !any_active {
            return Ok(steps);
        }
        if !seen.insert(matching_fingerprint(engine.matching())) {
            return Err(ModelError::NoStableConfiguration);
        }
    }
}

/// Initiative-process driver under an **arbitrary preference system** — the
/// generalized sibling of [`crate::Dynamics`], running on the same
/// incremental engine (thresholds, clean/dirty memo, presence versioning)
/// over a [`PrefAcceptance`] key table.
///
/// Differences from the ranked driver, all consequences of dropping the
/// global ranking:
///
/// * the *instant stable configuration* is no longer computable by
///   Algorithm 1 (and need not be unique); this driver uses the
///   deterministic round-robin best-mate fixpoint from `C∅` over the
///   present peers, which is a canonical stable configuration for any
///   cycle-free system — memoized per presence version exactly like the
///   ranked driver's;
/// * [`disorder`](Self::disorder) measures against that baseline with the
///   key-space metric [`distance::distance_keyed`];
/// * instances with odd preference cycles have no stable configuration:
///   [`settle`](Self::settle) reports that as
///   [`ModelError::NoStableConfiguration`], and the metric reads panic if
///   asked for a baseline that does not exist.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use strat_core::prefs::{GeneralDynamics, LatencyPrefs};
/// use strat_core::{Capacities, InitiativeStrategy};
/// use strat_graph::generators;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let graph = generators::erdos_renyi_mean_degree(60, 10.0, &mut rng);
/// let prefs = LatencyPrefs::new((0..60).map(|i| (i * 37 % 60) as f64).collect());
/// let caps = Capacities::constant(60, 2);
/// let mut dynamics =
///     GeneralDynamics::new(&graph, &prefs, caps, InitiativeStrategy::BestMate)?;
/// dynamics.settle()?; // deterministic sweeps reach the canonical fixpoint
/// assert!(dynamics.is_stable());
/// assert_eq!(dynamics.disorder(), 0.0);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GeneralDynamics {
    engine: Engine<PrefAcceptance>,
    /// Memoized [`disorder`](Self::disorder) value.
    disorder_memo: crate::engine::VersionMemo,
}

impl GeneralDynamics {
    /// Creates a driver from the empty configuration, building the key
    /// table from `graph` and `prefs`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics if `graph` and `prefs` cover different peer counts.
    pub fn new<P: PreferenceSystem>(
        graph: &Graph,
        prefs: &P,
        caps: Capacities,
        strategy: InitiativeStrategy,
    ) -> Result<Self, ModelError> {
        Self::from_keys(PrefAcceptance::build(graph, prefs), caps, strategy)
    }

    /// Creates a driver from a prebuilt key table (reuse the table across
    /// drivers sharing a topology).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the
    /// key table.
    pub fn from_keys(
        keys: PrefAcceptance,
        caps: Capacities,
        strategy: InitiativeStrategy,
    ) -> Result<Self, ModelError> {
        Ok(Self {
            engine: Engine::new(keys, caps, strategy)?,
            disorder_memo: crate::engine::VersionMemo::default(),
        })
    }

    /// Number of peers (present or not).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// Current configuration (mate rows cache preference keys, not global
    /// ranks).
    #[must_use]
    pub fn matching(&self) -> &Matching {
        self.engine.matching()
    }

    /// The preference-key table.
    #[must_use]
    pub fn keys(&self) -> &PrefAcceptance {
        self.engine.keys()
    }

    /// Capacities in force.
    #[must_use]
    pub fn capacities(&self) -> &Capacities {
        self.engine.capacities()
    }

    /// Total initiatives taken so far.
    #[must_use]
    pub fn initiative_count(&self) -> u64 {
        self.engine.initiative_count()
    }

    /// Active (configuration-changing) initiatives taken so far.
    #[must_use]
    pub fn active_initiative_count(&self) -> u64 {
        self.engine.active_initiative_count()
    }

    /// Number of present peers.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.engine.present_count()
    }

    /// Whether peer `v` is present.
    #[must_use]
    pub fn is_present(&self, v: NodeId) -> bool {
        self.engine.is_present(v)
    }

    /// Removes a peer (drops its collaborations). No-op if absent.
    pub fn remove_peer(&mut self, v: NodeId) {
        self.engine.remove_peer(v);
    }

    /// Re-inserts an absent peer with no mates. No-op if present.
    pub fn insert_peer(&mut self, v: NodeId) {
        self.engine.insert_peer(v);
    }

    /// Performs one initiative by a uniformly random present peer.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        self.engine.step(rng)
    }

    /// Runs `n` initiatives (one base unit). Returns the active count.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        self.engine.run_base_unit(rng)
    }

    /// Has peer `p` take one initiative with the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn initiative<R: Rng + ?Sized>(&mut self, p: NodeId, rng: &mut R) -> InitiativeOutcome {
        self.engine.initiative(p, rng)
    }

    /// Has peer `p` take one deterministic **best-mate** initiative
    /// regardless of the configured strategy (the building block of
    /// [`settle`](Self::settle) and of benchmark sweeps).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn best_mate_initiative(&mut self, p: NodeId) -> InitiativeOutcome {
        self.engine.best_mate_initiative(p)
    }

    /// Whether the current configuration is stable for the present peers.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.engine.is_stable()
    }

    /// Runs deterministic round-robin best-mate sweeps until stability
    /// (the generalized Figure 2 starting point), returning the number of
    /// active initiatives performed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoStableConfiguration`] on a configuration
    /// revisit (odd preference cycle).
    pub fn settle(&mut self) -> Result<u64, ModelError> {
        settle_engine(&mut self.engine)
    }

    /// Resets the initiative counters to zero. Construction paths that
    /// converge internally (the scenario layer's build-at-stable) use this
    /// so the driver starts with no recorded activity, matching the ranked
    /// arm's Algorithm 1 jump.
    pub fn reset_initiative_counters(&mut self) {
        self.engine.reset_initiative_counters();
    }

    /// Disorder of the current configuration: key-space distance
    /// ([`distance::distance_keyed`]) to the canonical instant stable
    /// configuration of the present peers, memoized per
    /// `(presence, configuration)` version like the ranked driver's
    /// metrics.
    ///
    /// # Panics
    ///
    /// Panics if the instance admits no stable configuration.
    #[must_use]
    pub fn disorder(&self) -> f64 {
        self.disorder_memo
            .get_or_compute(self.engine.versions(), || {
                self.with_instant_stable(|stable, matching| {
                    distance::distance_keyed(matching, stable)
                })
            })
    }

    /// The canonical instant stable configuration over present peers
    /// (memoized per presence version; see the type docs).
    ///
    /// # Panics
    ///
    /// Panics if the instance admits no stable configuration.
    #[must_use]
    pub fn instant_stable(&self) -> Matching {
        self.with_instant_stable(|stable, _| stable.clone())
    }

    fn with_instant_stable<T>(&self, f: impl FnOnce(&Matching, &Matching) -> T) -> T {
        self.engine.with_instant_stable(
            || {
                let mut scratch = Engine::new(
                    self.engine.keys(),
                    self.engine.capacities().clone(),
                    InitiativeStrategy::BestMate,
                )
                .expect("sizes validated at construction");
                for v in 0..self.engine.node_count() {
                    let v = NodeId::new(v);
                    if !self.engine.is_present(v) {
                        scratch.remove_peer(v);
                    }
                }
                settle_engine(&mut scratch)
                    .expect("instant stable configuration requires a cycle-free system");
                let (matching, _) = scratch.into_parts();
                matching
            },
            f,
        )
    }
}

impl DynamicsDriver for GeneralDynamics {
    fn node_count(&self) -> usize {
        GeneralDynamics::node_count(self)
    }

    fn present_count(&self) -> usize {
        GeneralDynamics::present_count(self)
    }

    fn is_present(&self, v: NodeId) -> bool {
        GeneralDynamics::is_present(self, v)
    }

    fn remove_peer(&mut self, v: NodeId) {
        GeneralDynamics::remove_peer(self, v);
    }

    fn insert_peer(&mut self, v: NodeId) {
        GeneralDynamics::insert_peer(self, v);
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        GeneralDynamics::step(self, rng)
    }
}

/// The classic stable-roommates instance **without** a stable matching:
/// three peers in an odd preference cycle (each prefers its successor)
/// plus an isolated option-less fourth. Returns `(graph, prefs)` where
/// prefs are encoded as explicit per-peer orders.
///
/// Used to demonstrate that general utilities lose the paper's
/// existence/uniqueness guarantees — exactly why the global-ranking class
/// matters.
#[must_use]
pub fn odd_cycle_instance() -> (Graph, ExplicitPrefs) {
    let n = |i: usize| NodeId::new(i);
    // Complete graph on 3 peers.
    let graph =
        Graph::from_edges(3, [(n(0), n(1)), (n(1), n(2)), (n(2), n(0))]).expect("valid triangle");
    // 0 prefers 1 over 2; 1 prefers 2 over 0; 2 prefers 0 over 1.
    let orders = vec![vec![n(1), n(2)], vec![n(2), n(0)], vec![n(0), n(1)]];
    (graph, ExplicitPrefs::new(orders))
}

/// Preferences given as explicit per-peer orders (most preferred first).
/// Peers absent from an order are less preferred than all listed ones,
/// compared by node id among themselves.
#[derive(Debug, Clone)]
pub struct ExplicitPrefs {
    orders: Vec<Vec<NodeId>>,
}

impl ExplicitPrefs {
    /// Builds from explicit orders.
    #[must_use]
    pub fn new(orders: Vec<Vec<NodeId>>) -> Self {
        Self { orders }
    }

    fn position(&self, p: NodeId, a: NodeId) -> usize {
        self.orders[p.index()]
            .iter()
            .position(|&x| x == a)
            .unwrap_or(usize::MAX - a.index())
    }
}

impl PreferenceSystem for ExplicitPrefs {
    fn n(&self) -> usize {
        self.orders.len()
    }

    fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
        self.position(p, a) < self.position(p, b)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use crate::{stable_configuration, RankedAcceptance};

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn global_prefs_match_ranking() {
        let prefs = GlobalPrefs::new(GlobalRanking::identity(4));
        assert!(prefs.prefers(n(3), n(0), n(1)));
        assert!(!prefs.prefers(n(3), n(2), n(1)));
        assert_eq!(prefs.best_of(n(0), &[n(2), n(1), n(3)]), Some(n(1)));
        assert_eq!(prefs.worst_of(n(0), &[n(2), n(1), n(3)]), Some(n(3)));
    }

    #[test]
    fn latency_prefs_prefer_nearby() {
        let prefs = LatencyPrefs::new(vec![0.0, 1.0, 5.0, 5.5]);
        assert!(prefs.prefers(n(0), n(1), n(2)));
        assert!(prefs.prefers(n(2), n(3), n(1)));
        assert_eq!(prefs.distance(n(2), n(3)), 0.5);
    }

    #[test]
    fn lexicographic_falls_back_to_secondary() {
        let primary = BandedRankPrefs::new(GlobalRanking::identity(6), 3);
        let secondary = LatencyPrefs::new(vec![0.0, 9.0, 1.0, 2.0, 8.0, 7.0]);
        let prefs = LexicographicPrefs::new(primary, secondary);
        // 1 and 2 share the top class {0,1,2}: latency decides for peer 0.
        assert!(prefs.prefers(n(0), n(2), n(1)));
        // Across classes, the band wins regardless of latency.
        assert!(prefs.prefers(n(0), n(1), n(3)));
    }

    #[test]
    fn global_prefs_dynamics_agree_with_algorithm1() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            let graph = generators::erdos_renyi_mean_degree(40, 8.0, &mut rng);
            let ranking = GlobalRanking::random(40, &mut rng);
            let caps = Capacities::constant(40, 2);
            let prefs = GlobalPrefs::new(ranking.clone());
            let outcome = best_mate_dynamics(&graph, &prefs, &caps);
            let PrefDynamicsOutcome::Stable(m) = outcome else {
                panic!("global ranking oscillated");
            };
            let acc = RankedAcceptance::new(graph, ranking).unwrap();
            let reference = stable_configuration(&acc, &caps).unwrap();
            // Same edge sets.
            for v in 0..40 {
                let mut a: Vec<_> = m.mates(n(v)).to_vec();
                let mut b: Vec<_> = reference.mates(n(v)).to_vec();
                a.sort();
                b.sort();
                assert_eq!(a, b, "peer {v}");
            }
        }
    }

    #[test]
    fn latency_prefs_reach_stability_and_cluster_by_distance() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n_peers = 60;
        let positions: Vec<f64> = (0..n_peers).map(|i| (i * 37 % n_peers) as f64).collect();
        let graph = generators::erdos_renyi_mean_degree(n_peers, 12.0, &mut rng);
        let prefs = LatencyPrefs::new(positions.clone());
        let caps = Capacities::constant(n_peers, 2);
        let outcome = best_mate_dynamics(&graph, &prefs, &caps);
        let PrefDynamicsOutcome::Stable(m) = outcome else {
            panic!("symmetric utility oscillated");
        };
        // Mates are nearby in latency on average: compare against random
        // acceptable pairs.
        let mut mate_dist = 0.0;
        let mut mate_count = 0.0;
        for v in 0..n_peers {
            for &w in m.mates(NodeId::new(v)) {
                mate_dist += (positions[v] - positions[w.index()]).abs();
                mate_count += 1.0;
            }
        }
        let mate_mean = mate_dist / mate_count;
        let mut edge_dist = 0.0;
        let mut edge_count = 0.0;
        for (u, w) in graph.edges() {
            edge_dist += (positions[u.index()] - positions[w.index()]).abs();
            edge_count += 1.0;
        }
        let edge_mean = edge_dist / edge_count;
        assert!(
            mate_mean < 0.5 * edge_mean,
            "latency clustering absent: mates {mate_mean:.1} vs acceptable {edge_mean:.1}"
        );
    }

    #[test]
    fn odd_cycle_has_no_stable_matching() {
        let (graph, prefs) = odd_cycle_instance();
        let caps = Capacities::constant(3, 1);
        match best_mate_dynamics(&graph, &prefs, &caps) {
            PrefDynamicsOutcome::Oscillating { steps, .. } => {
                assert!(steps > 0);
            }
            PrefDynamicsOutcome::Stable(m) => {
                panic!("odd preference cycle produced a 'stable' matching: {m:?}")
            }
        }
    }

    #[test]
    fn explicit_prefs_unlisted_peers_rank_last() {
        let prefs = ExplicitPrefs::new(vec![vec![n(2)], vec![], vec![]]);
        assert!(prefs.prefers(n(0), n(2), n(1)));
        // Among unlisted peers, larger index is preferred (usize::MAX - id).
        assert!(prefs.prefers(n(0), n(2), n(1)));
    }

    #[test]
    fn pref_matching_basics() {
        let mut m = PrefMatching::new(3);
        m.connect(n(0), n(2));
        assert!(m.contains(n(2), n(0)));
        assert_eq!(m.edge_count(), 1);
        let f1 = m.fingerprint();
        m.disconnect(n(0), n(2));
        assert_eq!(m.edge_count(), 0);
        m.connect(n(2), n(0));
        assert_eq!(m.fingerprint(), f1, "fingerprint must be order-insensitive");
    }

    #[test]
    fn banded_prefs_group_ranks() {
        let prefs = BandedRankPrefs::new(GlobalRanking::identity(9), 3);
        assert!(!prefs.prefers(n(8), n(1), n(2))); // same class
        assert!(prefs.prefers(n(8), n(2), n(3))); // class 0 vs class 1
    }

    #[test]
    fn pref_acceptance_rows_sorted_and_reciprocal() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let graph = generators::erdos_renyi_mean_degree(50, 9.0, &mut rng);
        let positions: Vec<f64> = (0..50).map(|i| (i * 17 % 50) as f64).collect();
        let prefs = LatencyPrefs::new(positions);
        let keys = PrefAcceptance::build(&graph, &prefs);
        assert_eq!(keys.node_count(), 50);
        for v in 0..50 {
            let v = n(v);
            let (ids, own) = keys.row(v);
            assert_eq!(ids.len(), graph.degree(v));
            assert_eq!(keys.degree(v), ids.len());
            assert_eq!(keys.neighbors_best_first(v), ids);
            // Keys are the local positions, strictly ascending.
            for (k, &key) in own.iter().enumerate() {
                assert_eq!(key.position(), k);
            }
            // Rows are sorted best-first by the owner's preference.
            for w in ids.windows(2) {
                assert!(prefs.prefers(v, w[0], w[1]), "row of {v} out of order");
            }
            // Reciprocal keys point back at the owner's slot in the
            // neighbour's row.
            for (k, &q) in ids.iter().enumerate() {
                let (q_ids, _) = keys.row(q);
                let back = q_ids.iter().position(|&w| w == v).expect("symmetric");
                assert_eq!(keys.rev_key(v, k).position(), back, "({v}, {q})");
            }
        }
    }

    #[test]
    fn keyed_and_comparator_builds_are_identical() {
        // A wrapper hiding the sort keys forces the comparator path; the
        // two tables must agree slot for slot.
        struct NoKeys<P>(P);
        impl<P: PreferenceSystem> PreferenceSystem for NoKeys<P> {
            fn n(&self) -> usize {
                self.0.n()
            }
            fn prefers(&self, p: NodeId, a: NodeId, b: NodeId) -> bool {
                self.0.prefers(p, a, b)
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let graph = generators::erdos_renyi_mean_degree(80, 12.0, &mut rng);
        let positions: Vec<f64> = (0..80).map(|i| ((i * 31) % 80) as f64 * 0.5).collect();
        for (keyed, unkeyed) in [
            (
                PrefAcceptance::build(&graph, &LatencyPrefs::new(positions.clone())),
                PrefAcceptance::build(&graph, &NoKeys(LatencyPrefs::new(positions.clone()))),
            ),
            (
                PrefAcceptance::build(&graph, &GlobalPrefs::new(GlobalRanking::identity(80))),
                PrefAcceptance::build(
                    &graph,
                    &NoKeys(GlobalPrefs::new(GlobalRanking::identity(80))),
                ),
            ),
            (
                PrefAcceptance::build(
                    &graph,
                    &BandedRankPrefs::new(GlobalRanking::identity(80), 7),
                ),
                PrefAcceptance::build(
                    &graph,
                    &NoKeys(BandedRankPrefs::new(GlobalRanking::identity(80), 7)),
                ),
            ),
        ] {
            for v in 0..80 {
                let v = n(v);
                assert_eq!(keyed.row(v), unkeyed.row(v), "row of {v}");
                for k in 0..keyed.degree(v) {
                    assert_eq!(keyed.rev_key(v, k), unkeyed.rev_key(v, k), "({v}, {k})");
                }
            }
        }
    }

    #[test]
    fn general_dynamics_settle_reaches_canonical_fixpoint() {
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let n_peers = 70;
        let graph = generators::erdos_renyi_mean_degree(n_peers, 11.0, &mut rng);
        let positions: Vec<f64> = (0..n_peers).map(|i| (i * 29 % n_peers) as f64).collect();
        let prefs = LatencyPrefs::new(positions);
        let caps = Capacities::constant(n_peers, 2);
        let mut dynamics =
            GeneralDynamics::new(&graph, &prefs, caps.clone(), InitiativeStrategy::BestMate)
                .unwrap();
        let steps = dynamics.settle().unwrap();
        assert!(dynamics.is_stable());
        assert_eq!(dynamics.disorder(), 0.0);
        // Same sweeps as best_mate_dynamics: identical mate sets and steps.
        let PrefDynamicsOutcome::Stable(reference) = best_mate_dynamics(&graph, &prefs, &caps)
        else {
            panic!("latency prefs oscillated")
        };
        assert!(steps > 0);
        for v in 0..n_peers {
            let v = n(v);
            let mut a: Vec<NodeId> = dynamics.matching().mates(v).to_vec();
            let mut b: Vec<NodeId> = reference.mates(v).to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "peer {v}");
        }
    }

    #[test]
    fn general_dynamics_random_strategy_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(27);
        let n_peers = 40;
        let graph = generators::erdos_renyi_mean_degree(n_peers, 8.0, &mut rng);
        let positions: Vec<f64> = (0..n_peers).map(|i| (i * 13 % n_peers) as f64).collect();
        let prefs = LatencyPrefs::new(positions);
        let caps = Capacities::constant(n_peers, 2);
        for strategy in [
            InitiativeStrategy::BestMate,
            InitiativeStrategy::Decremental,
            InitiativeStrategy::Random,
        ] {
            let mut dynamics =
                GeneralDynamics::new(&graph, &prefs, caps.clone(), strategy).unwrap();
            for _ in 0..3000 {
                dynamics.run_base_unit(&mut rng);
                if dynamics.is_stable() {
                    break;
                }
            }
            assert!(dynamics.is_stable(), "{strategy:?} failed to converge");
            // The disorder metric reads cleanly at any stable point (it can
            // be nonzero: general systems may have several stable configs).
            assert!(dynamics.disorder() >= 0.0);
        }
    }

    #[test]
    fn general_dynamics_churn_keeps_caches_fresh() {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let n_peers = 45;
        let graph = generators::erdos_renyi_mean_degree(n_peers, 9.0, &mut rng);
        let positions: Vec<f64> = (0..n_peers).map(|i| (i * 23 % n_peers) as f64).collect();
        let prefs = LatencyPrefs::new(positions);
        let caps = Capacities::constant(n_peers, 2);
        let mut dynamics =
            GeneralDynamics::new(&graph, &prefs, caps, InitiativeStrategy::BestMate).unwrap();
        for round in 0..200usize {
            dynamics.step(&mut rng);
            if round % 9 == 0 {
                dynamics.remove_peer(n(round % n_peers));
            }
            if round % 13 == 0 {
                dynamics.insert_peer(n((round * 7) % n_peers));
            }
        }
        // Settling from any perturbed state still reaches a stable point,
        // and the memoized disorder agrees with a fresh double read.
        dynamics.settle().unwrap();
        assert!(dynamics.is_stable());
        let d1 = dynamics.disorder();
        let d2 = dynamics.disorder();
        assert_eq!(d1, d2);
        // Absent peers stay unmated.
        for v in 0..n_peers {
            let v = n(v);
            if !dynamics.is_present(v) {
                assert_eq!(dynamics.matching().degree(v), 0);
            }
        }
    }

    #[test]
    fn tied_preference_systems_get_deterministic_id_tiebreak() {
        // A bare banded system ties inside every class; the key table must
        // stay a total order (no inconsistent-comparator panic) with ties
        // resolved by ascending node id.
        let graph = generators::complete(9);
        let prefs = BandedRankPrefs::new(GlobalRanking::identity(9), 3);
        let keys = PrefAcceptance::build(&graph, &prefs);
        for v in 0..9 {
            let v = n(v);
            let (ids, _) = keys.row(v);
            for w in ids.windows(2) {
                assert!(
                    prefs.prefers(v, w[0], w[1]) || (!prefs.prefers(v, w[1], w[0]) && w[0] < w[1]),
                    "row of {v} violates the banded-then-id order: {ids:?}"
                );
            }
        }
        // And the dynamics on such a system still settle.
        let caps = Capacities::constant(9, 2);
        let mut dynamics =
            GeneralDynamics::new(&graph, &prefs, caps, InitiativeStrategy::BestMate).unwrap();
        dynamics.settle().unwrap();
        assert!(dynamics.is_stable());
    }

    #[test]
    fn odd_cycle_settle_reports_no_stable_configuration() {
        let (graph, prefs) = odd_cycle_instance();
        let caps = Capacities::constant(3, 1);
        let mut dynamics =
            GeneralDynamics::new(&graph, &prefs, caps, InitiativeStrategy::BestMate).unwrap();
        assert_eq!(
            dynamics.settle(),
            Err(crate::ModelError::NoStableConfiguration)
        );
    }
}
