//! Error types of the core stratification model.

use core::fmt;

use strat_graph::NodeId;

/// Error raised by model construction and mutation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// Scores used to build a global ranking contained a tie.
    ///
    /// The paper assumes distinct utilities (`S(p) ≠ S(q)` for `p ≠ q`):
    /// ties can break existence of a stable matching, so they are rejected
    /// at the API boundary.
    TiedScores {
        /// First node of the tied pair.
        a: NodeId,
        /// Second node of the tied pair.
        b: NodeId,
        /// The shared score.
        score: f64,
    },
    /// A score was NaN, which admits no total order.
    InvalidScore {
        /// The node with the NaN score.
        node: NodeId,
    },
    /// Sizes of two model components disagree (e.g. ranking over `n` nodes
    /// combined with capacities for `m ≠ n` nodes).
    SizeMismatch {
        /// What was expected.
        expected: usize,
        /// What was provided.
        actual: usize,
    },
    /// A permutation used to build a ranking was not a bijection on `0..n`.
    NotAPermutation,
    /// Attempted to connect a peer beyond its slot capacity.
    CapacityExceeded {
        /// The saturated node.
        node: NodeId,
        /// Its capacity.
        capacity: u32,
    },
    /// Attempted to connect two peers that are already matched together, or
    /// a peer to itself.
    InvalidPair {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
    },
    /// Attempted to disconnect two peers that are not matched together.
    NotMatched {
        /// First node.
        a: NodeId,
        /// Second node.
        b: NodeId,
    },
    /// The deterministic best-mate dynamics revisited a configuration: the
    /// preference system has an odd preference cycle (Tan's condition
    /// fails) and the instance admits **no** stable configuration.
    NoStableConfiguration,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ModelError::TiedScores { a, b, score } => {
                write!(f, "nodes {a} and {b} share score {score}; global ranking requires distinct scores")
            }
            ModelError::InvalidScore { node } => {
                write!(f, "score of node {node} is NaN")
            }
            ModelError::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected}, got {actual}")
            }
            ModelError::NotAPermutation => {
                write!(f, "provided ranking is not a permutation of 0..n")
            }
            ModelError::CapacityExceeded { node, capacity } => {
                write!(
                    f,
                    "node {node} already uses all {capacity} collaboration slots"
                )
            }
            ModelError::InvalidPair { a, b } => {
                write!(f, "cannot match pair ({a}, {b})")
            }
            ModelError::NotMatched { a, b } => {
                write!(f, "pair ({a}, {b}) is not currently matched")
            }
            ModelError::NoStableConfiguration => {
                write!(
                    f,
                    "preference system has an odd preference cycle; no stable configuration exists"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::TiedScores {
            a: NodeId::new(0),
            b: NodeId::new(3),
            score: 1.5,
        };
        assert!(e.to_string().contains("distinct scores"));
        let e = ModelError::CapacityExceeded {
            node: NodeId::new(2),
            capacity: 4,
        };
        assert!(e.to_string().contains("4 collaboration slots"));
        let e = ModelError::SizeMismatch {
            expected: 5,
            actual: 3,
        };
        assert_eq!(e.to_string(), "size mismatch: expected 5, got 3");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ModelError>();
    }
}
