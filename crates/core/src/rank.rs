//! Global ranking of peers.
//!
//! Every peer `p` carries an intrinsic mark `S(p)` (bandwidth, CPU, storage…)
//! and *all peers agree* on the induced order: this is the "global ranking"
//! utility class the paper analyzes. Ties are rejected (§3, "Note on ties").

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_graph::NodeId;

use crate::ModelError;

/// Position of a peer in the global order; **rank 0 is the best peer**.
///
/// The paper labels peers `1..=n` with 1 best; this crate is zero-based, so
/// paper peer `i` is [`Rank::new`]`(i - 1)`.
///
/// # Examples
///
/// ```
/// use strat_core::Rank;
///
/// let best = Rank::new(0);
/// assert!(best.is_better_than(Rank::new(3)));
/// assert_eq!(format!("{best}"), "r0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Rank(u32);

impl Rank {
    /// Creates a rank from a zero-based position (0 = best).
    #[inline]
    #[must_use]
    pub fn new(position: usize) -> Self {
        Self(u32::try_from(position).expect("rank exceeds u32::MAX"))
    }

    /// Zero-based position (0 = best).
    #[inline]
    #[must_use]
    pub fn position(self) -> usize {
        self.0 as usize
    }

    /// Whether `self` is strictly better (smaller position) than `other`.
    #[inline]
    #[must_use]
    pub fn is_better_than(self, other: Rank) -> bool {
        self.0 < other.0
    }

    /// Absolute rank offset `|self - other|`, the stratification distance
    /// used by the Mean Max Offset statistic (§4.2).
    #[inline]
    #[must_use]
    pub fn offset(self, other: Rank) -> usize {
        self.0.abs_diff(other.0) as usize
    }
}

impl core::fmt::Display for Rank {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A total order over the peers `0..n`, shared by everyone.
///
/// Maintains the bijection between [`NodeId`]s and [`Rank`]s in both
/// directions so both lookups are `O(1)`.
///
/// # Examples
///
/// ```
/// use strat_core::GlobalRanking;
/// use strat_graph::NodeId;
///
/// // Node 2 is best, then node 0, then node 1.
/// let ranking = GlobalRanking::from_scores(&[5.0, 2.5, 9.0])?;
/// assert_eq!(ranking.node_at_rank(strat_core::Rank::new(0)), NodeId::new(2));
/// assert!(ranking.prefers(NodeId::new(2), NodeId::new(1)));
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalRanking {
    /// `rank_of[v]` = rank of node `v`.
    rank_of: Vec<Rank>,
    /// `node_at[r]` = node holding rank `r`.
    node_at: Vec<NodeId>,
}

impl GlobalRanking {
    /// The identity ranking: node `i` has rank `i` (node 0 best).
    ///
    /// This matches the paper's simulations, where peers are labeled by rank.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self {
            rank_of: (0..n).map(Rank::new).collect(),
            node_at: (0..n).map(NodeId::new).collect(),
        }
    }

    /// Builds a ranking from intrinsic scores; **higher score = better rank**.
    ///
    /// # Errors
    ///
    /// * [`ModelError::InvalidScore`] if any score is NaN.
    /// * [`ModelError::TiedScores`] if two scores are equal — the paper's
    ///   model requires `S(p) ≠ S(q)` (§3).
    pub fn from_scores(scores: &[f64]) -> Result<Self, ModelError> {
        for (v, s) in scores.iter().enumerate() {
            if s.is_nan() {
                return Err(ModelError::InvalidScore {
                    node: NodeId::new(v),
                });
            }
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .expect("NaN scores were rejected above")
        });
        for w in order.windows(2) {
            if scores[w[0]] == scores[w[1]] {
                return Err(ModelError::TiedScores {
                    a: NodeId::new(w[0].min(w[1])),
                    b: NodeId::new(w[0].max(w[1])),
                    score: scores[w[0]],
                });
            }
        }
        Self::from_permutation(order.into_iter().map(NodeId::new).collect())
    }

    /// Builds a ranking from an explicit best-to-worst node order.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotAPermutation`] if `order` is not a bijection
    /// on `0..n`.
    pub fn from_permutation(order: Vec<NodeId>) -> Result<Self, ModelError> {
        let n = order.len();
        let mut rank_of = vec![Rank::new(0); n];
        let mut seen = vec![false; n];
        for (r, &v) in order.iter().enumerate() {
            if v.index() >= n || seen[v.index()] {
                return Err(ModelError::NotAPermutation);
            }
            seen[v.index()] = true;
            rank_of[v.index()] = Rank::new(r);
        }
        Ok(Self {
            rank_of,
            node_at: order,
        })
    }

    /// A uniformly random ranking.
    #[must_use]
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
        order.shuffle(rng);
        Self::from_permutation(order).expect("shuffled identity is a permutation")
    }

    /// Number of ranked peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rank_of.len()
    }

    /// Whether the ranking is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty()
    }

    /// Rank of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn rank_of(&self, v: NodeId) -> Rank {
        self.rank_of[v.index()]
    }

    /// Node holding rank `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[inline]
    #[must_use]
    pub fn node_at_rank(&self, r: Rank) -> NodeId {
        self.node_at[r.position()]
    }

    /// Whether everyone (it is a *global* ranking) prefers `a` to `b`.
    #[inline]
    #[must_use]
    pub fn prefers(&self, a: NodeId, b: NodeId) -> bool {
        self.rank_of(a).is_better_than(self.rank_of(b))
    }

    /// Rank offset `|rank(a) - rank(b)|`.
    #[inline]
    #[must_use]
    pub fn offset(&self, a: NodeId, b: NodeId) -> usize {
        self.rank_of(a).offset(self.rank_of(b))
    }

    /// Iterates nodes best-first.
    pub fn nodes_best_first(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        self.node_at.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn rank_order_and_offset() {
        assert!(Rank::new(0).is_better_than(Rank::new(1)));
        assert!(!Rank::new(2).is_better_than(Rank::new(2)));
        assert_eq!(Rank::new(3).offset(Rank::new(7)), 4);
        assert_eq!(Rank::new(7).offset(Rank::new(3)), 4);
    }

    #[test]
    fn identity_ranking() {
        let r = GlobalRanking::identity(4);
        assert_eq!(r.len(), 4);
        for i in 0..4 {
            assert_eq!(r.rank_of(NodeId::new(i)), Rank::new(i));
            assert_eq!(r.node_at_rank(Rank::new(i)), NodeId::new(i));
        }
        assert!(r.prefers(NodeId::new(0), NodeId::new(3)));
    }

    #[test]
    fn from_scores_orders_descending() {
        let r = GlobalRanking::from_scores(&[1.0, 3.0, 2.0]).unwrap();
        let order: Vec<_> = r.nodes_best_first().collect();
        assert_eq!(order, vec![NodeId::new(1), NodeId::new(2), NodeId::new(0)]);
    }

    #[test]
    fn ties_rejected() {
        let err = GlobalRanking::from_scores(&[1.0, 2.0, 1.0]).unwrap_err();
        assert!(matches!(err, ModelError::TiedScores { .. }));
    }

    #[test]
    fn nan_rejected() {
        let err = GlobalRanking::from_scores(&[1.0, f64::NAN]).unwrap_err();
        assert_eq!(
            err,
            ModelError::InvalidScore {
                node: NodeId::new(1)
            }
        );
    }

    #[test]
    fn bad_permutations_rejected() {
        assert_eq!(
            GlobalRanking::from_permutation(vec![NodeId::new(0), NodeId::new(0)]).unwrap_err(),
            ModelError::NotAPermutation
        );
        assert_eq!(
            GlobalRanking::from_permutation(vec![NodeId::new(2), NodeId::new(0)]).unwrap_err(),
            ModelError::NotAPermutation
        );
    }

    #[test]
    fn random_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let r = GlobalRanking::random(50, &mut rng);
        let mut seen = [false; 50];
        for v in r.nodes_best_first() {
            assert!(!seen[v.index()]);
            seen[v.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Round trip.
        for i in 0..50 {
            let v = NodeId::new(i);
            assert_eq!(r.node_at_rank(r.rank_of(v)), v);
        }
    }

    #[test]
    fn empty_ranking() {
        let r = GlobalRanking::identity(0);
        assert!(r.is_empty());
        assert_eq!(r.nodes_best_first().count(), 0);
    }
}
