//! Configuration distance and disorder (§3).
//!
//! The paper measures the difference between two configurations `C₁`, `C₂`
//! of a 1-matching as
//!
//! ```text
//! D(C₁, C₂) = Σᵢ |σ(C₁, i) − σ(C₂, i)| · 2 / (n(n+1))
//! ```
//!
//! where `σ(C, i)` is the 1-based label of `i`'s mate (labels coincide with
//! ranks in the paper's simulations) and `σ(C, i) = n + 1` when `i` is
//! unmated. The normalization makes the distance between a perfect matching
//! and the empty configuration `C∅` equal to 1. The **disorder** of a
//! configuration is its distance to the (instant) stable configuration.

use crate::{GlobalRanking, Matching};

/// Paper metric `D(C₁, C₂)` for 1-matchings.
///
/// `σ` labels are derived from `ranking` (label = rank position + 1), so the
/// metric is well-defined for any node numbering.
///
/// # Panics
///
/// Panics (debug builds) if a configuration holds more than one mate per
/// peer; use [`distance_general`] for b-matchings.
///
/// # Examples
///
/// ```
/// use strat_core::{distance::disorder, Capacities, GlobalRanking, Matching};
/// use strat_graph::NodeId;
///
/// let ranking = GlobalRanking::identity(4);
/// let caps = Capacities::constant(4, 1);
/// let mut perfect = Matching::new(4);
/// perfect.connect(&ranking, &caps, NodeId::new(0), NodeId::new(1))?;
/// perfect.connect(&ranking, &caps, NodeId::new(2), NodeId::new(3))?;
///
/// // Distance between a perfect matching and the empty configuration is 1.
/// assert!((disorder(&ranking, &perfect, &Matching::new(4)) - 1.0).abs() < 1e-12);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[must_use]
pub fn disorder(ranking: &GlobalRanking, c1: &Matching, c2: &Matching) -> f64 {
    let n = ranking.len();
    assert_eq!(c1.node_count(), n, "c1 size mismatch");
    assert_eq!(c2.node_count(), n, "c2 size mismatch");
    if n == 0 {
        return 0.0;
    }
    let unmated = (n + 1) as f64;
    // Mate ranks are cached inside the configuration; no ranking lookups.
    let label = |m: &Matching, v| {
        debug_assert!(m.degree(v) <= 1, "disorder used on a non-1-matching");
        m.mate_ranks(v)
            .first()
            .map_or(unmated, |r| (r.position() + 1) as f64)
    };
    let sum: f64 = ranking
        .nodes_best_first()
        .map(|v| (label(c1, v) - label(c2, v)).abs())
        .sum();
    sum * 2.0 / (n as f64 * (n + 1) as f64)
}

/// Generalization of the paper metric to b-matchings (reproduction
/// extension; reduces exactly to [`disorder`] when every peer holds at most
/// one mate).
///
/// Each peer contributes the slot-wise L1 difference between its two mate
/// label lists (best-first, padded with the "unmated" label `n + 1` to equal
/// length); the total is normalized by `S · (n + 1) / 2` where `S` is the
/// total number of compared slots, so the distance between any saturated
/// configuration and `C∅` stays `O(1)`.
#[must_use]
pub fn distance_general(ranking: &GlobalRanking, c1: &Matching, c2: &Matching) -> f64 {
    let n = ranking.len();
    assert_eq!(c1.node_count(), n, "c1 size mismatch");
    assert_eq!(c2.node_count(), n, "c2 size mismatch");
    slotwise_l1(ranking.nodes_best_first(), c1, c2, n)
}

/// Shared core of [`distance_general`] and [`distance_keyed`]: per-node
/// slot-wise L1 over the cached mate-key rows (best-first, padded with the
/// "unmated" label `n + 1`), normalized by `S · (n + 1) / 2` over `S`
/// compared slots. The caller fixes the node iteration order — float
/// accumulation order is part of each metric's bit-exact contract.
fn slotwise_l1(
    nodes: impl Iterator<Item = strat_graph::NodeId>,
    c1: &Matching,
    c2: &Matching,
    n: usize,
) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let unmated = (n + 1) as f64;
    let mut sum = 0.0;
    let mut slots = 0usize;
    for v in nodes {
        let (m1, m2) = (c1.mate_ranks(v), c2.mate_ranks(v));
        let width = m1.len().max(m2.len());
        slots += width.max(1);
        for k in 0..width {
            let l1 = m1.get(k).map_or(unmated, |r| (r.position() + 1) as f64);
            let l2 = m2.get(k).map_or(unmated, |r| (r.position() + 1) as f64);
            sum += (l1 - l2).abs();
        }
    }
    sum * 2.0 / (slots as f64 * (n + 1) as f64)
}

/// The b-matching metric of [`distance_general`] expressed over the
/// configurations' **cached mate keys** instead of a global ranking — the
/// disorder metric of the generalized-preference engine, where mate rows
/// cache per-neighborhood preference positions rather than global ranks
/// (see [`crate::PreferenceKeys`]).
///
/// Both configurations must cache keys from the same key table (their rows
/// then agree exactly when their mate sets do, since keys are unique within
/// a row). Each peer contributes the slot-wise L1 difference between its
/// two key-label lists (label = key position + 1, padded with the "unmated"
/// label `n + 1`), normalized as in [`distance_general`]; `0` iff the
/// configurations are identical.
///
/// # Panics
///
/// Panics if the configurations cover different peer counts.
#[must_use]
pub fn distance_keyed(c1: &Matching, c2: &Matching) -> f64 {
    let n = c1.node_count();
    assert_eq!(c2.node_count(), n, "c2 size mismatch");
    slotwise_l1((0..n).map(strat_graph::NodeId::new), c1, c2, n)
}

#[cfg(test)]
mod tests {
    use strat_graph::NodeId;

    use crate::Capacities;

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn pair_up(ranking: &GlobalRanking, pairs: &[(usize, usize)]) -> Matching {
        let caps = Capacities::constant(ranking.len(), 1);
        let mut m = Matching::new(ranking.len());
        for &(a, b) in pairs {
            m.connect(ranking, &caps, n(a), n(b)).unwrap();
        }
        m
    }

    #[test]
    fn identity_distance_is_zero() {
        let ranking = GlobalRanking::identity(6);
        let m = pair_up(&ranking, &[(0, 1), (2, 3)]);
        assert_eq!(disorder(&ranking, &m, &m), 0.0);
        assert_eq!(distance_general(&ranking, &m, &m), 0.0);
    }

    #[test]
    fn symmetry() {
        let ranking = GlobalRanking::identity(6);
        let a = pair_up(&ranking, &[(0, 1), (2, 3)]);
        let b = pair_up(&ranking, &[(0, 2), (4, 5)]);
        assert_eq!(disorder(&ranking, &a, &b), disorder(&ranking, &b, &a));
        assert_eq!(
            distance_general(&ranking, &a, &b),
            distance_general(&ranking, &b, &a)
        );
    }

    #[test]
    fn perfect_vs_empty_is_one() {
        for count in [2usize, 4, 10] {
            let ranking = GlobalRanking::identity(count);
            let pairs: Vec<_> = (0..count / 2).map(|k| (2 * k, 2 * k + 1)).collect();
            let perfect = pair_up(&ranking, &pairs);
            let d = disorder(&ranking, &perfect, &Matching::new(count));
            assert!((d - 1.0).abs() < 1e-12, "n={count}: {d}");
        }
    }

    #[test]
    fn distance_in_unit_interval_for_matchings() {
        let ranking = GlobalRanking::identity(8);
        let a = pair_up(&ranking, &[(0, 7), (1, 6), (2, 5), (3, 4)]);
        let b = pair_up(&ranking, &[(0, 1), (2, 3), (4, 5), (6, 7)]);
        let d = disorder(&ranking, &a, &b);
        assert!(d > 0.0 && d <= 1.0, "{d}");
    }

    #[test]
    fn single_swap_distance_value() {
        // n = 4: C1 = {(0,1),(2,3)}, C2 = {(0,2),(1,3)}.
        // labels C1: [2,1,4,3]; C2: [3,4,1,2]; |Δ| = [1,3,3,1] → 8.
        // normalized: 8 * 2 / (4*5) = 0.8.
        let ranking = GlobalRanking::identity(4);
        let a = pair_up(&ranking, &[(0, 1), (2, 3)]);
        let b = pair_up(&ranking, &[(0, 2), (1, 3)]);
        assert!((disorder(&ranking, &a, &b) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn general_reduces_to_disorder_on_1_matchings() {
        let ranking = GlobalRanking::identity(6);
        let a = pair_up(&ranking, &[(0, 3), (1, 4)]);
        let b = pair_up(&ranking, &[(0, 1), (2, 3)]);
        // Same number of compared slots as the 1-matching metric? Not exactly
        // (unmated peers contribute width-0 columns), but values agree when
        // every peer is mated in at least one configuration. Here peer 5 is
        // unmated in both, contributing 0 to both metrics with slot width 1.
        let d1 = disorder(&ranking, &a, &b);
        let d2 = distance_general(&ranking, &a, &b);
        assert!((d1 - d2).abs() < 1e-9, "{d1} vs {d2}");
    }

    #[test]
    fn general_handles_b_matchings() {
        let ranking = GlobalRanking::identity(4);
        let caps = Capacities::constant(4, 3);
        let mut full = Matching::new(4);
        for a in 0..4 {
            for b in (a + 1)..4 {
                full.connect(&ranking, &caps, n(a), n(b)).unwrap();
            }
        }
        let d = distance_general(&ranking, &full, &Matching::new(4));
        assert!(d > 0.0 && d <= 1.0, "{d}");
    }

    #[test]
    fn keyed_distance_zero_iff_identical() {
        // Keyed matchings: rows cache arbitrary per-owner keys.
        let caps = Capacities::constant(4, 2);
        let mut a = Matching::with_capacities(&caps);
        let mut b = Matching::with_capacities(&caps);
        // Peer 0 keys peer 2 as its 1st choice; peer 2 keys peer 0 as 3rd.
        a.connect_keyed(&caps, n(0), n(2), crate::Rank::new(0), crate::Rank::new(2))
            .unwrap();
        assert!(distance_keyed(&a, &b) > 0.0);
        b.connect_keyed(&caps, n(0), n(2), crate::Rank::new(0), crate::Rank::new(2))
            .unwrap();
        assert_eq!(distance_keyed(&a, &b), 0.0);
        // Symmetric.
        a.connect_keyed(&caps, n(1), n(3), crate::Rank::new(1), crate::Rank::new(0))
            .unwrap();
        assert_eq!(distance_keyed(&a, &b), distance_keyed(&b, &a));
    }

    #[test]
    fn empty_ranking_distance_zero() {
        let ranking = GlobalRanking::identity(0);
        assert_eq!(
            disorder(&ranking, &Matching::new(0), &Matching::new(0)),
            0.0
        );
    }
}
