//! Core model of *Stratification in P2P Networks — Application to
//! BitTorrent* (Gai, Mathieu, Reynier, de Montgolfier; INRIA RR-6081 /
//! ICDCS 2007): **stable b-matching under a global ranking**.
//!
//! # Model
//!
//! Peers rank each other through a single shared utility (the *global
//! ranking*, [`GlobalRanking`]); each peer `p` owns `b(p)` collaboration
//! slots ([`Capacities`]); an acceptance graph restricts who may collaborate
//! ([`RankedAcceptance`]). A *configuration* ([`Matching`]) is stable when no
//! [blocking pair](blocking) exists. With a global ranking there are no
//! preference cycles, so a **unique** stable configuration exists — computed
//! by the greedy [`stable_configuration`] (Algorithm 1 of the paper) or, on
//! complete acceptance graphs, by the `O(n·b·α)`
//! [`stable_configuration_complete`].
//!
//! # Dynamics
//!
//! [`Dynamics`] simulates peers taking *initiatives* (best-mate, decremental
//! or random scans, [`InitiativeStrategy`]); Theorem 1 guarantees
//! convergence to the stable configuration, measured with the paper's
//! [`distance::disorder`] metric. [`ChurnProcess`] adds continuous
//! departures/arrivals (Figure 3).
//!
//! # Stratification
//!
//! [`cluster`] computes cluster sizes and the Mean Max Offset statistic of
//! Section 4 — the signature of stratification: collaboration clusters can
//! be made huge (variable capacities), yet every peer stays within a small
//! rank offset of its mates.
//!
//! # Data-oriented hot paths
//!
//! The matching core is laid out for the scans the model hammers in a
//! loop: [`RankedAcceptance`] stores adjacency in CSR form with a parallel
//! per-neighbour [`Rank`] array and binary-search membership;
//! [`Matching`] keeps each mate list as parallel `(NodeId, Rank)` arrays so
//! worst-mate ranks are `O(1)` reads; [`Dynamics`] maintains per-peer
//! acceptance thresholds incrementally, making each candidate probe two
//! array reads and a compare. The pre-optimization implementations live on
//! in [`mod@reference`] for differential testing and benchmarking.
//!
//! # Quick start
//!
//! ```
//! use strat_core::{
//!     blocking, stable_configuration, Capacities, GlobalRanking, RankedAcceptance,
//! };
//! use strat_graph::generators;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2007);
//! let graph = generators::erdos_renyi_mean_degree(500, 20.0, &mut rng);
//! let acc = RankedAcceptance::new(graph, GlobalRanking::identity(500))?;
//! let caps = Capacities::constant(500, 3);
//!
//! let stable = stable_configuration(&acc, &caps)?;
//! assert!(blocking::is_stable(&acc, &caps, &stable));
//! # Ok::<(), strat_core::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]
// Index-coupled loops are the domain idiom here: prefix-sum and permutation loops are index-coupled.
#![allow(clippy::needless_range_loop)]

mod accept;
pub mod blocking;
mod capacity;
mod churn;
pub mod cluster;
pub mod distance;
mod dynamics;
pub mod engine;
mod error;
pub mod gossip;
mod matching;
pub mod prefs;
mod rank;
pub mod reference;
mod stable;

pub use accept::RankedAcceptance;
pub use capacity::{standard_normal, Capacities, CapacityDistribution};
pub use churn::{ChurnEvent, ChurnProcess};
pub use dynamics::Dynamics;
pub use engine::{DynamicsDriver, Engine, InitiativeOutcome, InitiativeStrategy, PreferenceKeys};
pub use error::ModelError;
pub use matching::Matching;
pub use prefs::{GeneralDynamics, PrefAcceptance};
pub use rank::{GlobalRanking, Rank};
pub use stable::{
    stable_configuration, stable_configuration_complete, stable_configuration_masked,
};
