//! Acceptance structure: the acceptance graph in CSR form with rank-sorted,
//! rank-annotated adjacency.
//!
//! Both Algorithm 1 and every initiative strategy repeatedly ask "who is the
//! best acceptable peer for `p` satisfying …". The structure is therefore
//! laid out for exactly that scan:
//!
//! * adjacency is **flattened** (CSR: one `offsets` array into one `adj`
//!   array) so a peer's acceptance list is a contiguous slice — no
//!   pointer-chasing through per-node `Vec`s;
//! * each row is sorted **best-rank-first** and stored alongside a parallel
//!   [`Rank`] array, so inner loops compare precomputed ranks instead of
//!   calling [`GlobalRanking::rank_of`] per candidate;
//! * membership ([`RankedAcceptance::accepts`]) is a binary search by rank
//!   on the shorter row, `O(log deg)` with no hashing.

use strat_graph::{Graph, NodeId};

use crate::{GlobalRanking, ModelError, Rank};

/// An acceptance graph paired with the global ranking, with each peer's
/// acceptance list pre-sorted **best-rank-first**.
///
/// # Examples
///
/// ```
/// use strat_core::{GlobalRanking, RankedAcceptance};
/// use strat_graph::{generators, NodeId};
///
/// let graph = generators::complete(4);
/// let ranking = GlobalRanking::identity(4);
/// let acc = RankedAcceptance::new(graph, ranking)?;
/// // Neighbours of the worst peer, best first:
/// assert_eq!(
///     acc.neighbors_best_first(NodeId::new(3)),
///     &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankedAcceptance {
    graph: Graph,
    ranking: GlobalRanking,
    /// CSR row boundaries: row `v` is `adj[offsets[v]..offsets[v + 1]]`.
    offsets: Vec<u32>,
    /// Flattened adjacency, each row sorted best-rank-first.
    adj: Vec<NodeId>,
    /// `adj_ranks[k] == ranking.rank_of(adj[k])`, precomputed.
    adj_ranks: Vec<Rank>,
}

impl RankedAcceptance {
    /// Combines an acceptance graph and a ranking.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if the ranking does not cover
    /// exactly the graph's nodes.
    pub fn new(graph: Graph, ranking: GlobalRanking) -> Result<Self, ModelError> {
        let n = graph.node_count();
        if n != ranking.len() {
            return Err(ModelError::SizeMismatch {
                expected: n,
                actual: ranking.len(),
            });
        }
        let total: usize = graph.nodes().map(|v| graph.degree(v)).sum();
        assert!(
            total <= u32::MAX as usize,
            "acceptance graph too large for CSR offsets"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(total);
        let mut adj_ranks = Vec::with_capacity(total);
        let mut scratch: Vec<(Rank, NodeId)> = Vec::new();
        offsets.push(0u32);
        for v in graph.nodes() {
            scratch.clear();
            scratch.extend(graph.neighbors(v).iter().map(|&w| (ranking.rank_of(w), w)));
            // Ranks are unique, so sorting by rank alone is total.
            scratch.sort_unstable_by_key(|&(r, _)| r);
            adj.extend(scratch.iter().map(|&(_, w)| w));
            adj_ranks.extend(scratch.iter().map(|&(r, _)| r));
            offsets.push(adj.len() as u32);
        }
        Ok(Self {
            graph,
            ranking,
            offsets,
            adj,
            adj_ranks,
        })
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying acceptance graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The global ranking.
    #[must_use]
    pub fn ranking(&self) -> &GlobalRanking {
        &self.ranking
    }

    /// CSR row bounds of `v`.
    #[inline]
    fn row(&self, v: NodeId) -> (usize, usize) {
        (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        )
    }

    /// Number of acceptable peers of `v`.
    #[inline]
    #[must_use]
    pub fn degree(&self, v: NodeId) -> usize {
        let (lo, hi) = self.row(v);
        hi - lo
    }

    /// Acceptable peers of `v`, best-rank-first.
    #[inline]
    #[must_use]
    pub fn neighbors_best_first(&self, v: NodeId) -> &[NodeId] {
        let (lo, hi) = self.row(v);
        &self.adj[lo..hi]
    }

    /// Ranks of the acceptable peers of `v`, parallel to
    /// [`neighbors_best_first`](Self::neighbors_best_first) (so ascending).
    #[inline]
    #[must_use]
    pub fn neighbor_ranks(&self, v: NodeId) -> &[Rank] {
        let (lo, hi) = self.row(v);
        &self.adj_ranks[lo..hi]
    }

    /// The acceptance row of `v` as parallel `(ids, ranks)` slices — the
    /// form every hot scan consumes.
    #[inline]
    #[must_use]
    pub fn neighbors_with_ranks(&self, v: NodeId) -> (&[NodeId], &[Rank]) {
        let (lo, hi) = self.row(v);
        (&self.adj[lo..hi], &self.adj_ranks[lo..hi])
    }

    /// Whether `u` accepts `v` (symmetric).
    ///
    /// Binary search by rank on the shorter CSR row: `O(log deg)`, no
    /// [`GlobalRanking::rank_of`] calls beyond the one for `v` itself.
    #[inline]
    #[must_use]
    pub fn accepts(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbor_ranks(a)
            .binary_search(&self.ranking.rank_of(b))
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use strat_graph::generators;

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sorted_by_nonidentity_ranking() {
        // Ranking: node 3 best, then 1, then 2, then 0.
        let ranking = GlobalRanking::from_permutation(vec![n(3), n(1), n(2), n(0)]).unwrap();
        let acc = RankedAcceptance::new(generators::complete(4), ranking).unwrap();
        assert_eq!(acc.neighbors_best_first(n(0)), &[n(3), n(1), n(2)]);
        assert_eq!(acc.neighbors_best_first(n(3)), &[n(1), n(2), n(0)]);
        assert!(acc.accepts(n(0), n(3)));
    }

    #[test]
    fn size_mismatch_rejected() {
        let err =
            RankedAcceptance::new(generators::complete(3), GlobalRanking::identity(4)).unwrap_err();
        assert_eq!(
            err,
            ModelError::SizeMismatch {
                expected: 3,
                actual: 4
            }
        );
    }

    #[test]
    fn empty_graph() {
        let acc = RankedAcceptance::new(Graph::empty(3), GlobalRanking::identity(3)).unwrap();
        assert!(acc.neighbors_best_first(n(1)).is_empty());
        assert!(!acc.accepts(n(0), n(1)));
    }

    #[test]
    fn ranks_row_is_parallel_and_ascending() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let graph = generators::erdos_renyi(60, 0.2, &mut rng);
        let ranking = GlobalRanking::random(60, &mut rng);
        let acc = RankedAcceptance::new(graph, ranking).unwrap();
        for v in 0..60 {
            let (ids, ranks) = acc.neighbors_with_ranks(n(v));
            assert_eq!(ids.len(), ranks.len());
            assert_eq!(acc.degree(n(v)), ids.len());
            for (k, (&id, &rank)) in ids.iter().zip(ranks).enumerate() {
                assert_eq!(acc.ranking().rank_of(id), rank, "row {v} slot {k}");
            }
            assert!(ranks.windows(2).all(|w| w[0].is_better_than(w[1])));
        }
    }

    #[test]
    fn accepts_agrees_with_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let graph = generators::erdos_renyi(40, 0.15, &mut rng);
        let ranking = GlobalRanking::random(40, &mut rng);
        let acc = RankedAcceptance::new(graph.clone(), ranking).unwrap();
        for u in 0..40 {
            for v in 0..40 {
                assert_eq!(
                    acc.accepts(n(u), n(v)),
                    graph.has_edge(n(u), n(v)),
                    "({u}, {v})"
                );
            }
        }
    }
}
