//! Acceptance structure: the acceptance graph with rank-sorted adjacency.

use strat_graph::{Graph, NodeId};

use crate::{GlobalRanking, ModelError};

/// An acceptance graph paired with the global ranking, with each peer's
/// acceptance list pre-sorted **best-rank-first**.
///
/// Both Algorithm 1 and every initiative strategy repeatedly ask "who is the
/// best acceptable peer for `p` satisfying …"; sorting adjacency by rank once
/// makes those scans linear with early exit.
///
/// # Examples
///
/// ```
/// use strat_core::{GlobalRanking, RankedAcceptance};
/// use strat_graph::{generators, NodeId};
///
/// let graph = generators::complete(4);
/// let ranking = GlobalRanking::identity(4);
/// let acc = RankedAcceptance::new(graph, ranking)?;
/// // Neighbours of the worst peer, best first:
/// assert_eq!(
///     acc.neighbors_best_first(NodeId::new(3)),
///     &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]
/// );
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RankedAcceptance {
    graph: Graph,
    ranking: GlobalRanking,
    /// `by_rank[v]` = neighbours of `v` sorted best-rank-first.
    by_rank: Vec<Vec<NodeId>>,
}

impl RankedAcceptance {
    /// Combines an acceptance graph and a ranking.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if the ranking does not cover
    /// exactly the graph's nodes.
    pub fn new(graph: Graph, ranking: GlobalRanking) -> Result<Self, ModelError> {
        if graph.node_count() != ranking.len() {
            return Err(ModelError::SizeMismatch {
                expected: graph.node_count(),
                actual: ranking.len(),
            });
        }
        let by_rank = graph
            .nodes()
            .map(|v| {
                let mut neigh = graph.neighbors(v).to_vec();
                neigh.sort_by_key(|&w| ranking.rank_of(w));
                neigh
            })
            .collect();
        Ok(Self { graph, ranking, by_rank })
    }

    /// Number of peers.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The underlying acceptance graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The global ranking.
    #[must_use]
    pub fn ranking(&self) -> &GlobalRanking {
        &self.ranking
    }

    /// Acceptable peers of `v`, best-rank-first.
    #[inline]
    #[must_use]
    pub fn neighbors_best_first(&self, v: NodeId) -> &[NodeId] {
        &self.by_rank[v.index()]
    }

    /// Whether `u` accepts `v` (symmetric).
    #[inline]
    #[must_use]
    pub fn accepts(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.has_edge(u, v)
    }
}

#[cfg(test)]
mod tests {
    use strat_graph::generators;

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sorted_by_nonidentity_ranking() {
        // Ranking: node 3 best, then 1, then 2, then 0.
        let ranking =
            GlobalRanking::from_permutation(vec![n(3), n(1), n(2), n(0)]).unwrap();
        let acc = RankedAcceptance::new(generators::complete(4), ranking).unwrap();
        assert_eq!(acc.neighbors_best_first(n(0)), &[n(3), n(1), n(2)]);
        assert_eq!(acc.neighbors_best_first(n(3)), &[n(1), n(2), n(0)]);
        assert!(acc.accepts(n(0), n(3)));
    }

    #[test]
    fn size_mismatch_rejected() {
        let err =
            RankedAcceptance::new(generators::complete(3), GlobalRanking::identity(4)).unwrap_err();
        assert_eq!(err, ModelError::SizeMismatch { expected: 3, actual: 4 });
    }

    #[test]
    fn empty_graph() {
        let acc = RankedAcceptance::new(Graph::empty(3), GlobalRanking::identity(3)).unwrap();
        assert!(acc.neighbors_best_first(n(1)).is_empty());
        assert!(!acc.accepts(n(0), n(1)));
    }
}
