//! Gossip-based rank discovery (§1: "This framework also fits gossip-based
//! protocols used by a peer to discover its rank", citing Jelasity et al.'s
//! peer sampling service).
//!
//! In a deployed system no peer knows the global ranking; each estimates
//! its standing by comparing its mark against a random sample of peers
//! (provided by a gossip/peer-sampling substrate). This module models that
//! estimator and lets the rest of the stack run on **estimated** rankings,
//! quantifying how much stratification survives estimation noise:
//!
//! * [`estimate_ranking`] — every peer samples `k` peers uniformly and
//!   scores itself by the fraction it beats; the induced order (ties broken
//!   by true mark) is the *estimated* global ranking;
//! * [`ranking_distortion`] — mean absolute rank displacement between true
//!   and estimated rankings (in ranks);
//! * with `k → n` the estimate converges to the truth; the `ext2`
//!   experiment in `strat-sim` shows the stable configuration's disorder
//!   and MMO degrade gracefully in `k`.

use rand::Rng;
use strat_graph::NodeId;

use crate::GlobalRanking;

/// Estimates the global ranking by uniform peer sampling.
///
/// Each peer draws `sample_size` uniform peers (with replacement, excluding
/// itself) and counts how many it outranks under the *true* ranking; the
/// estimated score is that count plus an infinitesimal tie-break by true
/// rank, so the result is a valid strict ranking.
///
/// # Panics
///
/// Panics if `sample_size == 0` or the ranking is empty.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use strat_core::{gossip, GlobalRanking};
///
/// let truth = GlobalRanking::identity(100);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let estimated = gossip::estimate_ranking(&truth, 50, &mut rng);
/// // Sampling noise displaces ranks, but only locally:
/// let distortion = gossip::ranking_distortion(&truth, &estimated);
/// assert!(distortion < 15.0, "{distortion}");
/// ```
#[must_use]
pub fn estimate_ranking<R: Rng + ?Sized>(
    truth: &GlobalRanking,
    sample_size: usize,
    rng: &mut R,
) -> GlobalRanking {
    let n = truth.len();
    assert!(n > 0, "ranking must be non-empty");
    assert!(sample_size > 0, "sample size must be positive");
    // score[v] = (#sampled peers v outranks, tie-break by true rank).
    let mut order: Vec<NodeId> = (0..n).map(NodeId::new).collect();
    let mut score = vec![0u32; n];
    for v in 0..n {
        let v_id = NodeId::new(v);
        for _ in 0..sample_size {
            let other = loop {
                let candidate = NodeId::new(rng.gen_range(0..n));
                if candidate != v_id || n == 1 {
                    break candidate;
                }
            };
            if truth.prefers(v_id, other) {
                score[v] += 1;
            }
        }
    }
    // Higher score = better estimated rank; ties resolved by true rank so
    // the estimate stays a strict order (a deployed system would tie-break
    // by comparing marks directly, which is exactly the true order).
    order.sort_by(|&a, &b| {
        score[b.index()]
            .cmp(&score[a.index()])
            .then_with(|| truth.rank_of(a).cmp(&truth.rank_of(b)))
    });
    GlobalRanking::from_permutation(order).expect("sorted identity is a permutation")
}

/// Mean absolute displacement (in ranks) between two rankings over the
/// same peers.
///
/// # Panics
///
/// Panics if the rankings cover different peer counts.
#[must_use]
pub fn ranking_distortion(truth: &GlobalRanking, estimate: &GlobalRanking) -> f64 {
    assert_eq!(
        truth.len(),
        estimate.len(),
        "rankings must cover the same peers"
    );
    if truth.is_empty() {
        return 0.0;
    }
    let total: usize = (0..truth.len())
        .map(|v| {
            let v = NodeId::new(v);
            truth
                .rank_of(v)
                .position()
                .abs_diff(estimate.rank_of(v).position())
        })
        .sum();
    total as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn estimate_is_a_valid_ranking() {
        let truth = GlobalRanking::identity(80);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let est = estimate_ranking(&truth, 10, &mut rng);
        assert_eq!(est.len(), 80);
        // Permutation round-trip.
        for v in 0..80 {
            let v = NodeId::new(v);
            assert_eq!(est.node_at_rank(est.rank_of(v)), v);
        }
    }

    #[test]
    fn distortion_decreases_with_sample_size() {
        let truth = GlobalRanking::identity(300);
        let distortion_at = |k: usize| {
            let mut total = 0.0;
            for seed in 0..5 {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let est = estimate_ranking(&truth, k, &mut rng);
                total += ranking_distortion(&truth, &est);
            }
            total / 5.0
        };
        let coarse = distortion_at(5);
        let mid = distortion_at(40);
        let fine = distortion_at(300);
        assert!(
            coarse > mid && mid > fine,
            "{coarse} > {mid} > {fine} violated"
        );
        assert!(fine < 10.0, "fine estimate distortion {fine}");
    }

    #[test]
    fn identical_rankings_have_zero_distortion() {
        let truth = GlobalRanking::identity(50);
        assert_eq!(ranking_distortion(&truth, &truth.clone()), 0.0);
    }

    #[test]
    fn single_peer_edge_case() {
        let truth = GlobalRanking::identity(1);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let est = estimate_ranking(&truth, 3, &mut rng);
        assert_eq!(est.len(), 1);
        assert_eq!(ranking_distortion(&truth, &est), 0.0);
    }

    #[test]
    fn estimate_preserves_coarse_order() {
        // The best decile should rarely be estimated into the worst decile.
        let n = 200;
        let truth = GlobalRanking::identity(n);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let est = estimate_ranking(&truth, 30, &mut rng);
        let mut misplaced = 0;
        for r in 0..n / 10 {
            let v = truth.node_at_rank(crate::Rank::new(r));
            if est.rank_of(v).position() > 9 * n / 10 {
                misplaced += 1;
            }
        }
        assert_eq!(
            misplaced, 0,
            "{misplaced} top-decile peers landed in the bottom decile"
        );
    }

    #[test]
    #[should_panic(expected = "sample size must be positive")]
    fn zero_sample_panics() {
        let truth = GlobalRanking::identity(5);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = estimate_ranking(&truth, 0, &mut rng);
    }
}
