//! Initiative-driven convergence dynamics (§3).
//!
//! Peers continuously *take initiatives*: peer `p` proposes partnership to
//! an acceptable peer; when the contacted peer forms a blocking pair with
//! `p`, the initiative is **active** — the pair matches and each side drops
//! its worst mate if saturated. Theorem 1 proves any sequence of active
//! initiatives reaches the unique stable configuration.
//!
//! Three scan strategies are modeled, matching the paper:
//!
//! * **best mate** — `p` picks its best available blocking mate (full
//!   knowledge of ranks and availability);
//! * **decremental** — `p` circularly scans its acceptance list from the
//!   last asked peer (knows ranks, not availability);
//! * **random** — `p` probes one uniformly random acceptable peer (no
//!   information; this is the BitTorrent optimistic-unchoke analogue, §6).
//!
//! # Hot-path caches
//!
//! The driver maintains, per peer, the **acceptance threshold**: the raw
//! rank position below which that peer welcomes a new candidate (worst-mate
//! rank when saturated, "anyone" when a slot is free, "nobody" at zero
//! capacity). Thresholds are updated incrementally on the peers an
//! initiative or churn event touches — never recomputed per scan — so each
//! candidate probe inside an initiative is two array reads and a compare.

use std::cell::RefCell;

use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_graph::NodeId;

use crate::{
    blocking, distance, stable_configuration_masked, Capacities, Matching, ModelError, Rank,
    RankedAcceptance,
};

/// How a peer scans its acceptance list for a blocking mate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InitiativeStrategy {
    /// Select the best available blocking mate.
    BestMate,
    /// Circularly scan the (rank-sorted) acceptance list starting just after
    /// the last asked peer.
    Decremental,
    /// Probe a single uniformly random acceptable peer.
    Random,
}

/// Outcome of one initiative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitiativeOutcome {
    /// The initiative changed the configuration: `peer` matched with `mate`.
    Active {
        /// The initiating peer.
        peer: NodeId,
        /// Its new mate.
        mate: NodeId,
        /// Mate dropped by the initiator to free a slot, if it was saturated.
        dropped_by_peer: Option<NodeId>,
        /// Mate dropped by the contacted peer, if it was saturated.
        dropped_by_mate: Option<NodeId>,
    },
    /// No blocking mate was found (or the probed peer declined).
    Inactive,
}

impl InitiativeOutcome {
    /// Whether the initiative modified the configuration.
    #[must_use]
    pub fn is_active(&self) -> bool {
        matches!(self, InitiativeOutcome::Active { .. })
    }
}

/// Simulation driver for the initiative process, with optional peer
/// presence (for the removal and churn experiments of Figures 2–3).
///
/// # Examples
///
/// Converge a small system from the empty configuration and verify it
/// reaches the stable matching:
///
/// ```
/// use rand::SeedableRng;
/// use strat_core::{
///     stable_configuration, Capacities, Dynamics, GlobalRanking, InitiativeStrategy,
///     RankedAcceptance,
/// };
/// use strat_graph::generators;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let graph = generators::erdos_renyi_mean_degree(50, 8.0, &mut rng);
/// let acc = RankedAcceptance::new(graph, GlobalRanking::identity(50))?;
/// let caps = Capacities::constant(50, 1);
/// let stable = stable_configuration(&acc, &caps)?;
///
/// let mut dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate)?;
/// for _ in 0..100 {
///     dynamics.run_base_unit(&mut rng); // n initiatives each
/// }
/// assert_eq!(dynamics.matching(), &stable);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dynamics {
    acc: RankedAcceptance,
    caps: Capacities,
    matching: Matching,
    strategy: InitiativeStrategy,
    /// Decremental-scan cursors, one per peer.
    cursors: Vec<usize>,
    /// Peer presence; absent peers neither initiate nor get matched.
    present: Vec<bool>,
    present_count: usize,
    /// Cached acceptance threshold per peer (see the module docs).
    accept_below: Vec<u32>,
    /// Clean/dirty memo: `false` means "a full scan since the last relevant
    /// change found no blocking mate for this peer".
    dirty: Vec<bool>,
    /// Presence-set version; bumped by every churn (remove/insert) event.
    presence_version: u64,
    /// Memoized instant stable configuration, tagged with the
    /// `presence_version` it was computed under. The stable configuration
    /// depends only on the acceptance structure, the capacities and the
    /// present set — never on the current matching — so initiatives leave
    /// it valid and only churn events invalidate it.
    stable_memo: RefCell<Option<(u64, Matching)>>,
    initiatives: u64,
    active_initiatives: u64,
}

impl Dynamics {
    /// Creates a driver starting from the empty configuration `C∅`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the
    /// acceptance structure.
    pub fn new(
        acc: RankedAcceptance,
        caps: Capacities,
        strategy: InitiativeStrategy,
    ) -> Result<Self, ModelError> {
        let n = acc.node_count();
        caps.check_len(n)?;
        let matching = Matching::with_capacities(&caps);
        let mut dynamics = Self {
            acc,
            caps,
            matching,
            strategy,
            cursors: vec![0; n],
            present: vec![true; n],
            present_count: n,
            accept_below: vec![0; n],
            dirty: vec![true; n],
            presence_version: 0,
            stable_memo: RefCell::new(None),
            initiatives: 0,
            active_initiatives: 0,
        };
        dynamics.refresh_all_thresholds();
        Ok(dynamics)
    }

    /// Creates a driver starting from an arbitrary configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] on size disagreement.
    pub fn with_configuration(
        acc: RankedAcceptance,
        caps: Capacities,
        strategy: InitiativeStrategy,
        matching: Matching,
    ) -> Result<Self, ModelError> {
        if matching.node_count() != acc.node_count() {
            return Err(ModelError::SizeMismatch {
                expected: acc.node_count(),
                actual: matching.node_count(),
            });
        }
        let mut d = Self::new(acc, caps, strategy)?;
        d.matching = matching;
        d.refresh_all_thresholds();
        d.dirty.fill(true);
        Ok(d)
    }

    /// Number of peers (present or not).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.acc.node_count()
    }

    /// Current configuration.
    #[must_use]
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// The acceptance structure.
    #[must_use]
    pub fn acceptance(&self) -> &RankedAcceptance {
        &self.acc
    }

    /// Capacities in force.
    #[must_use]
    pub fn capacities(&self) -> &Capacities {
        &self.caps
    }

    /// Total initiatives taken so far.
    #[must_use]
    pub fn initiative_count(&self) -> u64 {
        self.initiatives
    }

    /// Active (configuration-changing) initiatives taken so far.
    #[must_use]
    pub fn active_initiative_count(&self) -> u64 {
        self.active_initiatives
    }

    /// Number of present peers.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.present_count
    }

    /// Whether peer `v` is present.
    #[must_use]
    pub fn is_present(&self, v: NodeId) -> bool {
        self.present[v.index()]
    }

    /// Removes a peer: drops its collaborations and excludes it from the
    /// system (Figure 2's perturbation). No-op if already absent.
    pub fn remove_peer(&mut self, v: NodeId) {
        if !self.present[v.index()] {
            return;
        }
        self.present[v.index()] = false;
        self.present_count -= 1;
        self.presence_version += 1;
        let dropped = self.matching.isolate(v);
        self.refresh_threshold(v);
        self.mark_neighborhood_dirty(v);
        for mate in dropped {
            self.refresh_threshold(mate);
            self.mark_neighborhood_dirty(mate);
        }
    }

    /// Re-inserts an absent peer with no mates. No-op if already present.
    pub fn insert_peer(&mut self, v: NodeId) {
        if self.present[v.index()] {
            return;
        }
        self.present[v.index()] = true;
        self.present_count += 1;
        self.presence_version += 1;
        debug_assert_eq!(self.matching.degree(v), 0);
        self.refresh_threshold(v);
        self.mark_neighborhood_dirty(v);
    }

    /// Performs one initiative by a uniformly random present peer.
    ///
    /// Returns [`InitiativeOutcome::Inactive`] when no peers are present.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        let Some(p) = self.random_present_peer(rng) else {
            return InitiativeOutcome::Inactive;
        };
        self.initiative(p, rng)
    }

    /// Runs `n` initiatives (one *base unit* in the paper's time axis: one
    /// expected initiative per peer). Returns the number of active ones.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let n = self.node_count();
        (0..n).filter(|_| self.step(rng).is_active()).count()
    }

    /// Has peer `p` take one initiative with the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn initiative<R: Rng + ?Sized>(&mut self, p: NodeId, rng: &mut R) -> InitiativeOutcome {
        if !self.present[p.index()] {
            return InitiativeOutcome::Inactive;
        }
        self.initiatives += 1;
        let mate = match self.strategy {
            // The deterministic scans are memoized: a clean peer has no
            // blocking mate by construction, so skip the scan entirely.
            InitiativeStrategy::BestMate => {
                if !self.dirty[p.index()] {
                    None
                } else {
                    let found = blocking::best_blocking_mate_below(
                        &self.acc,
                        &self.matching,
                        p,
                        self.acc.ranking().rank_of(p),
                        self.accept_below[p.index()],
                        |q| self.present[q.index()],
                        |q| self.accept_below[q.index()],
                    );
                    if found.is_none() {
                        self.dirty[p.index()] = false;
                    }
                    found
                }
            }
            InitiativeStrategy::Decremental => {
                if !self.dirty[p.index()] {
                    None
                } else {
                    let found = self.decremental_scan(p);
                    if found.is_none() {
                        self.dirty[p.index()] = false;
                    }
                    found
                }
            }
            // The random probe draws from the RNG before the memo could
            // apply; always perform it so streams stay aligned.
            InitiativeStrategy::Random => self.random_probe(p, rng),
        };
        match mate {
            Some(q) => {
                let outcome = self.execute(p, q);
                self.active_initiatives += 1;
                outcome
            }
            None => InitiativeOutcome::Inactive,
        }
    }

    /// Disorder of the current configuration: distance to the instant stable
    /// configuration of the present peers (1-matching metric of §3).
    ///
    /// The instant stable configuration is memoized per presence set:
    /// repeated calls between churn events reuse it (`O(n)` per call
    /// instead of a full `O(Σ deg)` recomputation — the first bite of
    /// scaling the metric past 10⁶ peers).
    #[must_use]
    pub fn disorder(&self) -> f64 {
        self.with_instant_stable(|stable, matching| {
            distance::disorder(self.acc.ranking(), matching, stable)
        })
    }

    /// Disorder under the generalized b-matching metric.
    #[must_use]
    pub fn disorder_general(&self) -> f64 {
        self.with_instant_stable(|stable, matching| {
            distance::distance_general(self.acc.ranking(), matching, stable)
        })
    }

    /// The instant stable configuration over present peers (memoized; see
    /// [`disorder`](Self::disorder)).
    #[must_use]
    pub fn instant_stable(&self) -> Matching {
        self.with_instant_stable(|stable, _| stable.clone())
    }

    /// Runs `f` on the (memoized) instant stable configuration and the
    /// current matching, refreshing the memo if a churn event invalidated
    /// it.
    fn with_instant_stable<T>(&self, f: impl FnOnce(&Matching, &Matching) -> T) -> T {
        let mut memo = self.stable_memo.borrow_mut();
        let fresh = !matches!(*memo, Some((version, _)) if version == self.presence_version);
        if fresh {
            let stable =
                stable_configuration_masked(&self.acc, &self.caps, |v| self.present[v.index()])
                    .expect("sizes validated at construction");
            *memo = Some((self.presence_version, stable));
        }
        let (_, stable) = memo.as_ref().expect("memo just refreshed");
        f(stable, &self.matching)
    }

    /// Whether the current configuration is stable for the present peers.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        let ranking = self.acc.ranking();
        self.acc.graph().edges().all(|(u, v)| {
            !(self.present[u.index()]
                && self.present[v.index()]
                && self.is_blocking_pair_cached(ranking.rank_of(u), ranking.rank_of(v), u, v))
        })
    }

    /// Blocking-pair test against the cached thresholds; callers guarantee
    /// `(u, v)` is an acceptance edge with both endpoints present.
    #[inline]
    fn is_blocking_pair_cached(&self, u_rank: Rank, v_rank: Rank, u: NodeId, v: NodeId) -> bool {
        (v_rank.position() as u32) < self.accept_below[u.index()]
            && (u_rank.position() as u32) < self.accept_below[v.index()]
            && self.matching.mate_ranks(u).binary_search(&v_rank).is_err()
    }

    fn random_present_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.present_count == 0 {
            return None;
        }
        let n = self.node_count();
        if self.present_count == n {
            return Some(NodeId::new(rng.gen_range(0..n)));
        }
        // Rejection sampling; presence is the common case in experiments.
        loop {
            let v = NodeId::new(rng.gen_range(0..n));
            if self.present[v.index()] {
                return Some(v);
            }
        }
    }

    /// Circular scan from the last asked position (decremental strategy).
    fn decremental_scan(&mut self, p: NodeId) -> Option<NodeId> {
        let (neigh, neigh_ranks) = self.acc.neighbors_with_ranks(p);
        let len = neigh.len();
        if len == 0 {
            return None;
        }
        let p_rank = self.acc.ranking().rank_of(p);
        let start = self.cursors[p.index()] % len;
        for k in 0..len {
            let idx = (start + k) % len;
            let q = neigh[idx];
            if self.present[q.index()]
                && self.is_blocking_pair_cached(p_rank, neigh_ranks[idx], p, q)
            {
                self.cursors[p.index()] = (idx + 1) % len;
                return Some(q);
            }
        }
        self.cursors[p.index()] = start;
        None
    }

    /// Single random probe (random strategy).
    fn random_probe<R: Rng + ?Sized>(&self, p: NodeId, rng: &mut R) -> Option<NodeId> {
        let (neigh, neigh_ranks) = self.acc.neighbors_with_ranks(p);
        if neigh.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..neigh.len());
        let q = neigh[idx];
        let p_rank = self.acc.ranking().rank_of(p);
        (self.present[q.index()] && self.is_blocking_pair_cached(p_rank, neigh_ranks[idx], p, q))
            .then_some(q)
    }

    /// Matches a confirmed blocking pair, evicting worst mates as needed.
    fn execute(&mut self, p: NodeId, q: NodeId) -> InitiativeOutcome {
        debug_assert!(blocking::is_blocking_pair(
            &self.acc,
            &self.caps,
            &self.matching,
            p,
            q
        ));
        let ranking = self.acc.ranking();
        let mut dropped_by_peer = None;
        let mut dropped_by_mate = None;
        if self.matching.is_saturated(&self.caps, p) {
            let worst = self
                .matching
                .worst_mate(p)
                .expect("saturated implies mates");
            self.matching
                .disconnect(p, worst)
                .expect("worst mate is matched");
            dropped_by_peer = Some(worst);
        }
        if self.matching.is_saturated(&self.caps, q) {
            let worst = self
                .matching
                .worst_mate(q)
                .expect("saturated implies mates");
            self.matching
                .disconnect(q, worst)
                .expect("worst mate is matched");
            dropped_by_mate = Some(worst);
        }
        self.matching
            .connect(ranking, &self.caps, p, q)
            .expect("slots were freed");
        // Incremental cache maintenance: only the touched peers change, and
        // only their neighbourhoods can gain new blocking pairs.
        self.refresh_threshold(p);
        self.refresh_threshold(q);
        self.mark_neighborhood_dirty(p);
        self.mark_neighborhood_dirty(q);
        if let Some(w) = dropped_by_peer {
            self.refresh_threshold(w);
            self.mark_neighborhood_dirty(w);
        }
        if let Some(w) = dropped_by_mate {
            self.refresh_threshold(w);
            self.mark_neighborhood_dirty(w);
        }
        InitiativeOutcome::Active {
            peer: p,
            mate: q,
            dropped_by_peer,
            dropped_by_mate,
        }
    }

    /// Recomputes the cached acceptance threshold of `v` (O(1)).
    #[inline]
    fn refresh_threshold(&mut self, v: NodeId) {
        self.accept_below[v.index()] = blocking::accept_threshold(&self.matching, &self.caps, v);
    }

    fn refresh_all_thresholds(&mut self) {
        for v in 0..self.node_count() {
            self.refresh_threshold(NodeId::new(v));
        }
    }

    /// Marks `v` and every acceptance-neighbour of `v` dirty: `v`'s mate
    /// set or presence changed, which is the only way a blocking pair
    /// involving them can appear.
    fn mark_neighborhood_dirty(&mut self, v: NodeId) {
        self.dirty[v.index()] = true;
        for &w in self.acc.neighbors_best_first(v) {
            self.dirty[w.index()] = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use crate::{stable_configuration, GlobalRanking};

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn build(
        count: usize,
        degree: f64,
        b0: u32,
        strategy: InitiativeStrategy,
        seed: u64,
    ) -> (Dynamics, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::erdos_renyi_mean_degree(count, degree, &mut rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(count)).unwrap();
        let caps = Capacities::constant(count, b0);
        (Dynamics::new(acc, caps, strategy).unwrap(), rng)
    }

    /// Brute-force recomputation of every threshold; the incremental cache
    /// must match it after any sequence of operations.
    fn assert_thresholds_consistent(dynamics: &Dynamics) {
        for v in 0..dynamics.node_count() {
            let v = n(v);
            assert_eq!(
                dynamics.accept_below[v.index()],
                blocking::accept_threshold(&dynamics.matching, &dynamics.caps, v),
                "stale threshold for {v}"
            );
        }
    }

    #[test]
    fn best_mate_converges_to_stable() {
        let (mut dyn_, mut rng) = build(80, 10.0, 1, InitiativeStrategy::BestMate, 4);
        let stable = stable_configuration(dyn_.acceptance(), dyn_.capacities()).unwrap();
        for _ in 0..200 {
            dyn_.run_base_unit(&mut rng);
            if dyn_.matching() == &stable {
                break;
            }
        }
        assert_eq!(dyn_.matching(), &stable);
        assert!(dyn_.is_stable());
        assert_eq!(dyn_.disorder(), 0.0);
    }

    #[test]
    fn decremental_and_random_also_converge() {
        for strategy in [InitiativeStrategy::Decremental, InitiativeStrategy::Random] {
            let (mut dyn_, mut rng) = build(40, 8.0, 2, strategy, 9);
            for _ in 0..2000 {
                dyn_.run_base_unit(&mut rng);
                if dyn_.is_stable() {
                    break;
                }
            }
            assert!(dyn_.is_stable(), "{strategy:?} failed to converge");
            let stable = stable_configuration(dyn_.acceptance(), dyn_.capacities()).unwrap();
            assert_eq!(
                dyn_.matching(),
                &stable,
                "{strategy:?} reached a different fixpoint"
            );
        }
    }

    #[test]
    fn initiatives_preserve_invariants() {
        let (mut dyn_, mut rng) = build(50, 12.0, 3, InitiativeStrategy::Random, 21);
        for _ in 0..500 {
            dyn_.step(&mut rng);
            assert!(dyn_
                .matching
                .check_invariants(dyn_.acc.ranking(), &dyn_.caps));
        }
        assert_thresholds_consistent(&dyn_);
    }

    #[test]
    fn threshold_cache_stays_consistent_under_churn_and_steps() {
        let (mut dyn_, mut rng) = build(40, 9.0, 2, InitiativeStrategy::BestMate, 33);
        for round in 0..60 {
            dyn_.step(&mut rng);
            if round % 7 == 0 {
                dyn_.remove_peer(n(round % 40));
            }
            if round % 11 == 0 {
                dyn_.insert_peer(n((round * 3) % 40));
            }
            assert_thresholds_consistent(&dyn_);
        }
    }

    #[test]
    fn instant_stable_memo_matches_fresh_computation() {
        let (mut dyn_, mut rng) = build(60, 9.0, 2, InitiativeStrategy::Random, 17);
        let fresh = |d: &Dynamics| {
            stable_configuration_masked(d.acceptance(), d.capacities(), |v| d.is_present(v))
                .unwrap()
        };
        for round in 0..80 {
            dyn_.step(&mut rng);
            if round % 9 == 3 {
                dyn_.remove_peer(n(round % 60));
            }
            if round % 13 == 5 {
                dyn_.insert_peer(n((round * 7) % 60));
            }
            // Memoized metric must agree with a from-scratch recomputation
            // after any mix of initiative and churn events, including
            // repeated reads between events.
            let stable = fresh(&dyn_);
            assert_eq!(dyn_.instant_stable(), stable);
            let want =
                distance::distance_general(dyn_.acceptance().ranking(), dyn_.matching(), &stable);
            assert_eq!(dyn_.disorder_general(), want);
            assert_eq!(
                dyn_.disorder_general(),
                want,
                "second (memoized) read differs"
            );
        }
    }

    #[test]
    fn disorder_memo_survives_initiatives_and_invalidates_on_churn() {
        let (mut dyn_, mut rng) = build(40, 8.0, 1, InitiativeStrategy::BestMate, 23);
        let before = dyn_.instant_stable();
        for _ in 0..5 {
            dyn_.run_base_unit(&mut rng);
        }
        // Initiatives never change the instant stable configuration.
        assert_eq!(dyn_.instant_stable(), before);
        dyn_.remove_peer(n(0));
        let after = dyn_.instant_stable();
        assert_eq!(after.degree(n(0)), 0);
        assert_ne!(after, before);
    }

    #[test]
    fn active_initiative_counting() {
        let (mut dyn_, mut rng) = build(30, 6.0, 1, InitiativeStrategy::BestMate, 2);
        for _ in 0..300 {
            dyn_.step(&mut rng);
        }
        assert!(dyn_.initiative_count() >= 300);
        assert!(dyn_.active_initiative_count() <= dyn_.initiative_count());
        // Theorem 1: at most B/2 active initiatives are *needed*; the random
        // scheduler may use more, but convergence must have happened here.
        assert!(dyn_.is_stable());
    }

    #[test]
    fn removal_perturbs_then_reconverges() {
        let (mut dyn_, mut rng) = build(60, 10.0, 1, InitiativeStrategy::BestMate, 7);
        while !dyn_.is_stable() {
            dyn_.run_base_unit(&mut rng);
        }
        dyn_.remove_peer(n(0));
        assert!(!dyn_.is_present(n(0)));
        assert_eq!(dyn_.present_count(), 59);
        // Disorder is measured against the new instant stable configuration.
        let d0 = dyn_.disorder();
        for _ in 0..100 {
            dyn_.run_base_unit(&mut rng);
        }
        assert!(dyn_.is_stable());
        assert!(dyn_.disorder() <= d0);
        // The removed peer stays unmated.
        assert_eq!(dyn_.matching().degree(n(0)), 0);
    }

    #[test]
    fn insert_restores_presence() {
        let (mut dyn_, mut rng) = build(20, 8.0, 1, InitiativeStrategy::BestMate, 3);
        dyn_.remove_peer(n(5));
        dyn_.insert_peer(n(5));
        assert!(dyn_.is_present(n(5)));
        assert_eq!(dyn_.present_count(), 20);
        for _ in 0..200 {
            dyn_.run_base_unit(&mut rng);
        }
        assert!(dyn_.is_stable());
    }

    #[test]
    fn empty_system_steps_are_inactive() {
        let (mut dyn_, mut rng) = build(3, 2.0, 1, InitiativeStrategy::BestMate, 1);
        for i in 0..3 {
            dyn_.remove_peer(n(i));
        }
        assert_eq!(dyn_.step(&mut rng), InitiativeOutcome::Inactive);
    }

    #[test]
    fn with_configuration_starts_elsewhere() {
        let (dyn0, _) = build(10, 9.0, 1, InitiativeStrategy::BestMate, 5);
        let acc = dyn0.acceptance().clone();
        let caps = dyn0.capacities().clone();
        let stable = stable_configuration(&acc, &caps).unwrap();
        let dyn_ =
            Dynamics::with_configuration(acc, caps, InitiativeStrategy::BestMate, stable.clone())
                .unwrap();
        assert!(dyn_.is_stable());
        assert_eq!(dyn_.disorder(), 0.0);
        assert_thresholds_consistent(&dyn_);
    }

    #[test]
    fn theorem1_greedy_schedule_uses_at_most_b_over_2_actives() {
        // Theorem 1: the stable solution CAN be reached in B/2 initiatives.
        // The witnessing schedule processes peers best-rank-first, each
        // repeating best-mate initiatives until inactive (Algorithm 1 replay).
        // Every active initiative then creates one stable edge, so the count
        // equals the stable edge count <= B/2.
        let (mut dyn_, mut rng) = build(40, 10.0, 2, InitiativeStrategy::BestMate, 13);
        let b_total = dyn_.capacities().total();
        let mut actives = 0u64;
        for v in 0..dyn_.node_count() {
            while dyn_.initiative(n(v), &mut rng).is_active() {
                actives += 1;
            }
        }
        assert!(dyn_.is_stable());
        assert_eq!(actives as usize, dyn_.matching().edge_count());
        assert!(
            actives <= b_total / 2,
            "greedy schedule used {actives} active initiatives, bound {}",
            b_total / 2
        );
    }
}
