//! Initiative-driven convergence dynamics (§3).
//!
//! Peers continuously *take initiatives*: peer `p` proposes partnership to
//! an acceptable peer; when the contacted peer forms a blocking pair with
//! `p`, the initiative is **active** — the pair matches and each side drops
//! its worst mate if saturated. Theorem 1 proves any sequence of active
//! initiatives reaches the unique stable configuration.
//!
//! Three scan strategies are modeled, matching the paper:
//!
//! * **best mate** — `p` picks its best available blocking mate (full
//!   knowledge of ranks and availability);
//! * **decremental** — `p` circularly scans its acceptance list from the
//!   last asked peer (knows ranks, not availability);
//! * **random** — `p` probes one uniformly random acceptable peer (no
//!   information; this is the BitTorrent optimistic-unchoke analogue, §6).
//!
//! # Architecture
//!
//! [`Dynamics`] is the **ranked instantiation** of the generic incremental
//! engine ([`crate::engine::Engine`]): the hot-path machinery — incremental
//! acceptance thresholds, the clean/dirty peer memo, presence versioning,
//! the memoized instant-stable configuration — lives in the engine, keyed
//! by the global ranks that [`RankedAcceptance`] precomputes per
//! neighborhood. This type adds the ranking-specific surface on top: the
//! paper's disorder metrics (which are defined against the global ranking)
//! and Algorithm 1 as the instant-stable computation.

use rand::Rng;
use strat_graph::NodeId;

use crate::engine::VersionMemo;
use crate::{
    distance, stable_configuration_masked, Capacities, DynamicsDriver, Engine, InitiativeOutcome,
    InitiativeStrategy, Matching, ModelError, RankedAcceptance,
};

/// Simulation driver for the initiative process under a global ranking,
/// with optional peer presence (for the removal and churn experiments of
/// Figures 2–3).
///
/// # Examples
///
/// Converge a small system from the empty configuration and verify it
/// reaches the stable matching:
///
/// ```
/// use rand::SeedableRng;
/// use strat_core::{
///     stable_configuration, Capacities, Dynamics, GlobalRanking, InitiativeStrategy,
///     RankedAcceptance,
/// };
/// use strat_graph::generators;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let graph = generators::erdos_renyi_mean_degree(50, 8.0, &mut rng);
/// let acc = RankedAcceptance::new(graph, GlobalRanking::identity(50))?;
/// let caps = Capacities::constant(50, 1);
/// let stable = stable_configuration(&acc, &caps)?;
///
/// let mut dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate)?;
/// for _ in 0..100 {
///     dynamics.run_base_unit(&mut rng); // n initiatives each
/// }
/// assert_eq!(dynamics.matching(), &stable);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Dynamics {
    engine: Engine<RankedAcceptance>,
    /// Memoized [`disorder`](Self::disorder) value: reads between events
    /// are O(1) instead of an O(n) metric scan.
    disorder_memo: VersionMemo,
    /// Memoized [`disorder_general`](Self::disorder_general) value: reads
    /// between events are O(1) instead of an O(n) metric scan.
    general_memo: VersionMemo,
}

impl Dynamics {
    /// Creates a driver starting from the empty configuration `C∅`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the
    /// acceptance structure.
    pub fn new(
        acc: RankedAcceptance,
        caps: Capacities,
        strategy: InitiativeStrategy,
    ) -> Result<Self, ModelError> {
        Ok(Self {
            engine: Engine::new(acc, caps, strategy)?,
            disorder_memo: VersionMemo::default(),
            general_memo: VersionMemo::default(),
        })
    }

    /// Creates a driver starting from an arbitrary configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] on size disagreement.
    pub fn with_configuration(
        acc: RankedAcceptance,
        caps: Capacities,
        strategy: InitiativeStrategy,
        matching: Matching,
    ) -> Result<Self, ModelError> {
        Ok(Self {
            engine: Engine::with_configuration(acc, caps, strategy, matching)?,
            disorder_memo: VersionMemo::default(),
            general_memo: VersionMemo::default(),
        })
    }

    /// The underlying generic engine (test/diagnostic access).
    #[cfg(test)]
    #[must_use]
    pub(crate) fn engine(&self) -> &Engine<RankedAcceptance> {
        &self.engine
    }

    /// Number of peers (present or not).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// Current configuration.
    #[must_use]
    pub fn matching(&self) -> &Matching {
        self.engine.matching()
    }

    /// The acceptance structure.
    #[must_use]
    pub fn acceptance(&self) -> &RankedAcceptance {
        self.engine.keys()
    }

    /// Capacities in force.
    #[must_use]
    pub fn capacities(&self) -> &Capacities {
        self.engine.capacities()
    }

    /// Total initiatives taken so far.
    #[must_use]
    pub fn initiative_count(&self) -> u64 {
        self.engine.initiative_count()
    }

    /// Active (configuration-changing) initiatives taken so far.
    #[must_use]
    pub fn active_initiative_count(&self) -> u64 {
        self.engine.active_initiative_count()
    }

    /// Number of present peers.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.engine.present_count()
    }

    /// Whether peer `v` is present.
    #[must_use]
    pub fn is_present(&self, v: NodeId) -> bool {
        self.engine.is_present(v)
    }

    /// Removes a peer: drops its collaborations and excludes it from the
    /// system (Figure 2's perturbation). No-op if already absent.
    pub fn remove_peer(&mut self, v: NodeId) {
        self.engine.remove_peer(v);
    }

    /// Re-inserts an absent peer with no mates. No-op if already present.
    pub fn insert_peer(&mut self, v: NodeId) {
        self.engine.insert_peer(v);
    }

    /// Performs one initiative by a uniformly random present peer.
    ///
    /// Returns [`InitiativeOutcome::Inactive`] when no peers are present.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        self.engine.step(rng)
    }

    /// Runs `n` initiatives (one *base unit* in the paper's time axis: one
    /// expected initiative per peer). Returns the number of active ones.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        self.engine.run_base_unit(rng)
    }

    /// Has peer `p` take one initiative with the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn initiative<R: Rng + ?Sized>(&mut self, p: NodeId, rng: &mut R) -> InitiativeOutcome {
        self.engine.initiative(p, rng)
    }

    /// Disorder of the current configuration: distance to the instant stable
    /// configuration of the present peers (1-matching metric of §3).
    ///
    /// The *value* is memoized per `(presence, configuration)` version pair
    /// on top of the shared instant-stable memo (which is itself memoized
    /// per presence set), so repeated reads at a fixed configuration cost
    /// O(1) rather than an O(n) distance scan.
    #[must_use]
    pub fn disorder(&self) -> f64 {
        self.disorder_memo
            .get_or_compute(self.engine.versions(), || {
                self.with_instant_stable(|stable, matching| {
                    distance::disorder(self.acceptance().ranking(), matching, stable)
                })
            })
    }

    /// Disorder under the generalized b-matching metric.
    ///
    /// The *value* is memoized per `(presence, configuration)` version pair
    /// on top of the shared instant-stable memo, so repeated reads between
    /// events cost O(1) rather than an O(n) metric scan.
    #[must_use]
    pub fn disorder_general(&self) -> f64 {
        self.general_memo
            .get_or_compute(self.engine.versions(), || {
                self.with_instant_stable(|stable, matching| {
                    distance::distance_general(self.acceptance().ranking(), matching, stable)
                })
            })
    }

    /// The instant stable configuration over present peers (memoized; see
    /// [`disorder`](Self::disorder)).
    #[must_use]
    pub fn instant_stable(&self) -> Matching {
        self.with_instant_stable(|stable, _| stable.clone())
    }

    /// Runs `f` on the (memoized) instant stable configuration and the
    /// current matching, refreshing the memo via Algorithm 1 if a churn
    /// event invalidated it.
    fn with_instant_stable<T>(&self, f: impl FnOnce(&Matching, &Matching) -> T) -> T {
        self.engine.with_instant_stable(
            || {
                stable_configuration_masked(self.acceptance(), self.capacities(), |v| {
                    self.is_present(v)
                })
                .expect("sizes validated at construction")
            },
            f,
        )
    }

    /// Whether the current configuration is stable for the present peers.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.engine.is_stable()
    }
}

impl DynamicsDriver for Dynamics {
    fn node_count(&self) -> usize {
        Dynamics::node_count(self)
    }

    fn present_count(&self) -> usize {
        Dynamics::present_count(self)
    }

    fn is_present(&self, v: NodeId) -> bool {
        Dynamics::is_present(self, v)
    }

    fn remove_peer(&mut self, v: NodeId) {
        Dynamics::remove_peer(self, v);
    }

    fn insert_peer(&mut self, v: NodeId) {
        Dynamics::insert_peer(self, v);
    }

    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        Dynamics::step(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use crate::{blocking, stable_configuration, GlobalRanking};

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn build(
        count: usize,
        degree: f64,
        b0: u32,
        strategy: InitiativeStrategy,
        seed: u64,
    ) -> (Dynamics, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::erdos_renyi_mean_degree(count, degree, &mut rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(count)).unwrap();
        let caps = Capacities::constant(count, b0);
        (Dynamics::new(acc, caps, strategy).unwrap(), rng)
    }

    /// Brute-force recomputation of every threshold; the incremental cache
    /// must match it after any sequence of operations.
    fn assert_thresholds_consistent(dynamics: &Dynamics) {
        for v in 0..dynamics.node_count() {
            let v = n(v);
            assert_eq!(
                dynamics.engine().accept_below()[v.index()],
                blocking::accept_threshold(dynamics.matching(), dynamics.capacities(), v),
                "stale threshold for {v}"
            );
        }
    }

    #[test]
    fn best_mate_converges_to_stable() {
        let (mut dyn_, mut rng) = build(80, 10.0, 1, InitiativeStrategy::BestMate, 4);
        let stable = stable_configuration(dyn_.acceptance(), dyn_.capacities()).unwrap();
        for _ in 0..200 {
            dyn_.run_base_unit(&mut rng);
            if dyn_.matching() == &stable {
                break;
            }
        }
        assert_eq!(dyn_.matching(), &stable);
        assert!(dyn_.is_stable());
        assert_eq!(dyn_.disorder(), 0.0);
    }

    #[test]
    fn decremental_and_random_also_converge() {
        for strategy in [InitiativeStrategy::Decremental, InitiativeStrategy::Random] {
            let (mut dyn_, mut rng) = build(40, 8.0, 2, strategy, 9);
            for _ in 0..2000 {
                dyn_.run_base_unit(&mut rng);
                if dyn_.is_stable() {
                    break;
                }
            }
            assert!(dyn_.is_stable(), "{strategy:?} failed to converge");
            let stable = stable_configuration(dyn_.acceptance(), dyn_.capacities()).unwrap();
            assert_eq!(
                dyn_.matching(),
                &stable,
                "{strategy:?} reached a different fixpoint"
            );
        }
    }

    #[test]
    fn initiatives_preserve_invariants() {
        let (mut dyn_, mut rng) = build(50, 12.0, 3, InitiativeStrategy::Random, 21);
        for _ in 0..500 {
            dyn_.step(&mut rng);
            assert!(dyn_
                .matching()
                .check_invariants(dyn_.acceptance().ranking(), dyn_.capacities()));
        }
        assert_thresholds_consistent(&dyn_);
    }

    #[test]
    fn threshold_cache_stays_consistent_under_churn_and_steps() {
        let (mut dyn_, mut rng) = build(40, 9.0, 2, InitiativeStrategy::BestMate, 33);
        for round in 0..60 {
            dyn_.step(&mut rng);
            if round % 7 == 0 {
                dyn_.remove_peer(n(round % 40));
            }
            if round % 11 == 0 {
                dyn_.insert_peer(n((round * 3) % 40));
            }
            assert_thresholds_consistent(&dyn_);
        }
    }

    #[test]
    fn instant_stable_memo_matches_fresh_computation() {
        let (mut dyn_, mut rng) = build(60, 9.0, 2, InitiativeStrategy::Random, 17);
        let fresh = |d: &Dynamics| {
            stable_configuration_masked(d.acceptance(), d.capacities(), |v| d.is_present(v))
                .unwrap()
        };
        for round in 0..80 {
            dyn_.step(&mut rng);
            if round % 9 == 3 {
                dyn_.remove_peer(n(round % 60));
            }
            if round % 13 == 5 {
                dyn_.insert_peer(n((round * 7) % 60));
            }
            // Memoized metric must agree with a from-scratch recomputation
            // after any mix of initiative and churn events, including
            // repeated reads between events.
            let stable = fresh(&dyn_);
            assert_eq!(dyn_.instant_stable(), stable);
            let want =
                distance::distance_general(dyn_.acceptance().ranking(), dyn_.matching(), &stable);
            assert_eq!(dyn_.disorder_general(), want);
            assert_eq!(
                dyn_.disorder_general(),
                want,
                "second (memoized) read differs"
            );
        }
    }

    #[test]
    fn disorder_general_value_memo_tracks_every_event_kind() {
        // The value memo must refresh across initiatives (config version),
        // removals and insertions (presence version) alike.
        let (mut dyn_, mut rng) = build(50, 10.0, 2, InitiativeStrategy::BestMate, 29);
        let fresh = |d: &Dynamics| {
            let stable =
                stable_configuration_masked(d.acceptance(), d.capacities(), |v| d.is_present(v))
                    .unwrap();
            distance::distance_general(d.acceptance().ranking(), d.matching(), &stable)
        };
        assert_eq!(dyn_.disorder_general(), fresh(&dyn_));
        dyn_.run_base_unit(&mut rng);
        assert_eq!(dyn_.disorder_general(), fresh(&dyn_));
        dyn_.remove_peer(n(3));
        assert_eq!(dyn_.disorder_general(), fresh(&dyn_));
        dyn_.insert_peer(n(3));
        assert_eq!(dyn_.disorder_general(), fresh(&dyn_));
        // And a second read with no event in between stays identical.
        assert_eq!(dyn_.disorder_general(), fresh(&dyn_));
    }

    #[test]
    fn disorder_value_memo_tracks_every_event_kind() {
        // The value memo must refresh across initiatives (config version),
        // removals and insertions (presence version) alike.
        let (mut dyn_, mut rng) = build(50, 10.0, 1, InitiativeStrategy::BestMate, 31);
        let fresh = |d: &Dynamics| {
            let stable =
                stable_configuration_masked(d.acceptance(), d.capacities(), |v| d.is_present(v))
                    .unwrap();
            distance::disorder(d.acceptance().ranking(), d.matching(), &stable)
        };
        assert_eq!(dyn_.disorder(), fresh(&dyn_));
        dyn_.run_base_unit(&mut rng);
        assert_eq!(dyn_.disorder(), fresh(&dyn_));
        dyn_.remove_peer(n(3));
        assert_eq!(dyn_.disorder(), fresh(&dyn_));
        dyn_.insert_peer(n(3));
        assert_eq!(dyn_.disorder(), fresh(&dyn_));
        // And a second read with no event in between stays identical.
        assert_eq!(dyn_.disorder(), fresh(&dyn_));
    }

    #[test]
    fn disorder_memo_survives_initiatives_and_invalidates_on_churn() {
        let (mut dyn_, mut rng) = build(40, 8.0, 1, InitiativeStrategy::BestMate, 23);
        let before = dyn_.instant_stable();
        for _ in 0..5 {
            dyn_.run_base_unit(&mut rng);
        }
        // Initiatives never change the instant stable configuration.
        assert_eq!(dyn_.instant_stable(), before);
        dyn_.remove_peer(n(0));
        let after = dyn_.instant_stable();
        assert_eq!(after.degree(n(0)), 0);
        assert_ne!(after, before);
    }

    #[test]
    fn active_initiative_counting() {
        let (mut dyn_, mut rng) = build(30, 6.0, 1, InitiativeStrategy::BestMate, 2);
        for _ in 0..300 {
            dyn_.step(&mut rng);
        }
        assert!(dyn_.initiative_count() >= 300);
        assert!(dyn_.active_initiative_count() <= dyn_.initiative_count());
        // Theorem 1: at most B/2 active initiatives are *needed*; the random
        // scheduler may use more, but convergence must have happened here.
        assert!(dyn_.is_stable());
    }

    #[test]
    fn removal_perturbs_then_reconverges() {
        let (mut dyn_, mut rng) = build(60, 10.0, 1, InitiativeStrategy::BestMate, 7);
        while !dyn_.is_stable() {
            dyn_.run_base_unit(&mut rng);
        }
        dyn_.remove_peer(n(0));
        assert!(!dyn_.is_present(n(0)));
        assert_eq!(dyn_.present_count(), 59);
        // Disorder is measured against the new instant stable configuration.
        let d0 = dyn_.disorder();
        for _ in 0..100 {
            dyn_.run_base_unit(&mut rng);
        }
        assert!(dyn_.is_stable());
        assert!(dyn_.disorder() <= d0);
        // The removed peer stays unmated.
        assert_eq!(dyn_.matching().degree(n(0)), 0);
    }

    #[test]
    fn insert_restores_presence() {
        let (mut dyn_, mut rng) = build(20, 8.0, 1, InitiativeStrategy::BestMate, 3);
        dyn_.remove_peer(n(5));
        dyn_.insert_peer(n(5));
        assert!(dyn_.is_present(n(5)));
        assert_eq!(dyn_.present_count(), 20);
        for _ in 0..200 {
            dyn_.run_base_unit(&mut rng);
        }
        assert!(dyn_.is_stable());
    }

    #[test]
    fn empty_system_steps_are_inactive() {
        let (mut dyn_, mut rng) = build(3, 2.0, 1, InitiativeStrategy::BestMate, 1);
        for i in 0..3 {
            dyn_.remove_peer(n(i));
        }
        assert_eq!(dyn_.step(&mut rng), InitiativeOutcome::Inactive);
    }

    #[test]
    fn with_configuration_starts_elsewhere() {
        let (dyn0, _) = build(10, 9.0, 1, InitiativeStrategy::BestMate, 5);
        let acc = dyn0.acceptance().clone();
        let caps = dyn0.capacities().clone();
        let stable = stable_configuration(&acc, &caps).unwrap();
        let dyn_ =
            Dynamics::with_configuration(acc, caps, InitiativeStrategy::BestMate, stable.clone())
                .unwrap();
        assert!(dyn_.is_stable());
        assert_eq!(dyn_.disorder(), 0.0);
        assert_thresholds_consistent(&dyn_);
    }

    #[test]
    fn theorem1_greedy_schedule_uses_at_most_b_over_2_actives() {
        // Theorem 1: the stable solution CAN be reached in B/2 initiatives.
        // The witnessing schedule processes peers best-rank-first, each
        // repeating best-mate initiatives until inactive (Algorithm 1 replay).
        // Every active initiative then creates one stable edge, so the count
        // equals the stable edge count <= B/2.
        let (mut dyn_, mut rng) = build(40, 10.0, 2, InitiativeStrategy::BestMate, 13);
        let b_total = dyn_.capacities().total();
        let mut actives = 0u64;
        for v in 0..dyn_.node_count() {
            while dyn_.initiative(n(v), &mut rng).is_active() {
                actives += 1;
            }
        }
        assert!(dyn_.is_stable());
        assert_eq!(actives as usize, dyn_.matching().edge_count());
        assert!(
            actives <= b_total / 2,
            "greedy schedule used {actives} active initiatives, bound {}",
            b_total / 2
        );
    }
}
