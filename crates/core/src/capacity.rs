//! Collaboration-slot capacities `b(p)`.
//!
//! Each peer `p` owns a bounded number `b(p)` of collaboration slots (§2).
//! Section 4 contrasts *constant* `b₀`-matching with capacities drawn from a
//! rounded normal distribution `N(b̄, σ²)` — the variance is what triggers the
//! phase transition from disjoint clusters to stratified giant components.

use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_graph::NodeId;

use crate::ModelError;

/// Per-peer slot capacities `b(p)`.
///
/// # Examples
///
/// ```
/// use strat_core::Capacities;
///
/// let caps = Capacities::constant(5, 3);
/// assert_eq!(caps.len(), 5);
/// assert_eq!(caps.total(), 15);
/// assert_eq!(caps.of(strat_graph::NodeId::new(2)), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Capacities {
    values: Vec<u32>,
    total: u64,
}

impl Capacities {
    /// Constant `b₀`-matching capacities: every peer gets `b0` slots.
    #[must_use]
    pub fn constant(n: usize, b0: u32) -> Self {
        Self {
            values: vec![b0; n],
            total: n as u64 * u64::from(b0),
        }
    }

    /// Capacities from explicit per-peer values.
    #[must_use]
    pub fn from_values(values: Vec<u32>) -> Self {
        let total = values.iter().map(|&b| u64::from(b)).sum();
        Self { values, total }
    }

    /// Samples capacities from `distribution`.
    #[must_use]
    pub fn sample<R: Rng + ?Sized>(
        n: usize,
        distribution: &CapacityDistribution,
        rng: &mut R,
    ) -> Self {
        Self::from_values((0..n).map(|_| distribution.sample_one(rng)).collect())
    }

    /// Number of peers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether there are no peers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Capacity of peer `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    #[must_use]
    pub fn of(&self, v: NodeId) -> u32 {
        self.values[v.index()]
    }

    /// Total number of slots `B = Σ b(p)`.
    ///
    /// Theorem 1 bounds convergence by `B / 2` active initiatives.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean capacity, or 0 for an empty peer set.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.total as f64 / self.values.len() as f64
    }

    /// Grants `extra` additional slots to peer `v` (Figure 5's "one extra
    /// connection" experiment).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn grant_extra(&mut self, v: NodeId, extra: u32) {
        self.values[v.index()] += extra;
        self.total += u64::from(extra);
    }

    /// Checks this capacity vector covers exactly `n` peers.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] on disagreement.
    pub fn check_len(&self, n: usize) -> Result<(), ModelError> {
        if self.values.len() == n {
            Ok(())
        } else {
            Err(ModelError::SizeMismatch {
                expected: n,
                actual: self.values.len(),
            })
        }
    }

    /// Read-only view of the raw values.
    #[must_use]
    pub fn as_slice(&self) -> &[u32] {
        &self.values
    }
}

/// Distribution from which per-peer capacities are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum CapacityDistribution {
    /// Every peer gets exactly `b0` slots (constant `b₀`-matching, §4.1).
    Constant(u32),
    /// Rounded normal `N(mean, sigma²)` (§4.2): samples are rounded to the
    /// nearest *positive* integer, exactly as in the paper.
    RoundedNormal {
        /// Mean `b̄` of the underlying normal.
        mean: f64,
        /// Standard deviation `σ` of the underlying normal.
        sigma: f64,
    },
}

impl CapacityDistribution {
    /// Draws one capacity.
    ///
    /// # Panics
    ///
    /// Panics if a `RoundedNormal` has non-finite parameters or `sigma < 0`.
    #[must_use]
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match *self {
            CapacityDistribution::Constant(b0) => b0,
            CapacityDistribution::RoundedNormal { mean, sigma } => {
                assert!(
                    mean.is_finite() && sigma.is_finite() && sigma >= 0.0,
                    "invalid normal parameters mean={mean} sigma={sigma}"
                );
                let x = mean + sigma * standard_normal(rng);
                // "all samples are rounded to the nearest positive integer"
                let rounded = x.round();
                if rounded < 1.0 {
                    1
                } else if rounded > f64::from(u32::MAX) {
                    u32::MAX
                } else {
                    rounded as u32
                }
            }
        }
    }
}

/// One standard-normal draw via the Box–Muller transform.
///
/// `rand` does not ship a normal distribution (that lives in `rand_distr`,
/// outside the allowed dependency set), and Box–Muller is exact. Public so
/// other samplers (the scenario layer's bandwidth models) consume the RNG
/// identically to [`CapacityDistribution::RoundedNormal`].
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen_range(0.0..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    use super::*;

    #[test]
    fn constant_capacities() {
        let c = Capacities::constant(4, 3);
        assert_eq!(c.total(), 12);
        assert_eq!(c.mean(), 3.0);
        assert_eq!(c.of(NodeId::new(3)), 3);
        assert!(c.check_len(4).is_ok());
        assert!(c.check_len(5).is_err());
    }

    #[test]
    fn from_values_and_extra() {
        let mut c = Capacities::from_values(vec![1, 2, 3]);
        assert_eq!(c.total(), 6);
        c.grant_extra(NodeId::new(0), 2);
        assert_eq!(c.of(NodeId::new(0)), 3);
        assert_eq!(c.total(), 8);
        assert_eq!(c.as_slice(), &[3, 2, 3]);
    }

    #[test]
    fn empty_capacities() {
        let c = Capacities::from_values(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.mean(), 0.0);
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn rounded_normal_is_positive_and_centered() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let dist = CapacityDistribution::RoundedNormal {
            mean: 6.0,
            sigma: 0.5,
        };
        let caps = Capacities::sample(20_000, &dist, &mut rng);
        assert!(caps.as_slice().iter().all(|&b| b >= 1));
        let mean = caps.mean();
        assert!((mean - 6.0).abs() < 0.05, "sample mean {mean} far from 6");
    }

    #[test]
    fn rounded_normal_sigma_zero_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dist = CapacityDistribution::RoundedNormal {
            mean: 4.0,
            sigma: 0.0,
        };
        let caps = Capacities::sample(100, &dist, &mut rng);
        assert!(caps.as_slice().iter().all(|&b| b == 4));
    }

    #[test]
    fn rounded_normal_clamps_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dist = CapacityDistribution::RoundedNormal {
            mean: -5.0,
            sigma: 0.1,
        };
        let caps = Capacities::sample(50, &dist, &mut rng);
        assert!(caps.as_slice().iter().all(|&b| b == 1));
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "invalid normal parameters")]
    fn invalid_normal_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = CapacityDistribution::RoundedNormal {
            mean: 1.0,
            sigma: -1.0,
        }
        .sample_one(&mut rng);
    }
}
