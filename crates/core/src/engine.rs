//! The generic event-driven dynamics engine.
//!
//! PR 1 built the fast initiative driver ([`crate::Dynamics`]) hardwired to
//! the paper's global ranking; `prefs::best_mate_dynamics` covered the
//! generalized preference systems of §7 by re-scanning full neighborhoods
//! every sweep. This module unifies them: **one** incremental engine
//! ([`Engine`]) owns the machinery both need —
//!
//! * per-peer **acceptance thresholds**, updated incrementally on the peers
//!   an event touches (each candidate probe is two array reads + compare);
//! * the **clean/dirty peer memo** (a clean peer provably has no blocking
//!   mate; deterministic scans skip it entirely);
//! * **presence versioning** for churn, with the memoized instant-stable
//!   configuration keyed on it;
//! * a **configuration version** that lets metric reads memoize their value
//!   between events.
//!
//! The engine is parameterized over [`PreferenceKeys`]: a precomputed
//! per-neighborhood key table. Keys generalize global ranks — each peer's
//! acceptance row is sorted by *that peer's* preference and annotated with
//! strictly increasing [`Rank`] keys, and `rev_key` answers "what key does
//! my k-th neighbour assign to *me*" (the reciprocal half of every
//! blocking-pair test). Two instantiations exist:
//!
//! * [`RankedAcceptance`] — keys are global rank positions, `rev_key` is the
//!   owner's own global rank. [`crate::Dynamics`] is a thin wrapper over
//!   `Engine<RankedAcceptance>` and stays bit-identical to its pre-refactor
//!   behaviour (same scans, same RNG consumption, same arena contents);
//! * [`crate::prefs::PrefAcceptance`] — keys are per-neighborhood preference
//!   positions built from any [`crate::prefs::PreferenceSystem`];
//!   [`crate::prefs::GeneralDynamics`] and the dirty-set
//!   [`crate::prefs::best_mate_dynamics`] ride on it.

use std::cell::{Cell, RefCell};

use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_graph::NodeId;

use crate::{blocking, Capacities, Matching, ModelError, Rank, RankedAcceptance};

/// How a peer scans its acceptance list for a blocking mate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InitiativeStrategy {
    /// Select the best available blocking mate.
    BestMate,
    /// Circularly scan the (preference-sorted) acceptance list starting
    /// just after the last asked peer.
    Decremental,
    /// Probe a single uniformly random acceptable peer.
    Random,
}

/// Outcome of one initiative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InitiativeOutcome {
    /// The initiative changed the configuration: `peer` matched with `mate`.
    Active {
        /// The initiating peer.
        peer: NodeId,
        /// Its new mate.
        mate: NodeId,
        /// Mate dropped by the initiator to free a slot, if it was saturated.
        dropped_by_peer: Option<NodeId>,
        /// Mate dropped by the contacted peer, if it was saturated.
        dropped_by_mate: Option<NodeId>,
    },
    /// No blocking mate was found (or the probed peer declined).
    Inactive,
}

impl InitiativeOutcome {
    /// Whether the initiative modified the configuration.
    #[must_use]
    pub fn is_active(&self) -> bool {
        matches!(self, InitiativeOutcome::Active { .. })
    }
}

/// Precomputed preference-key access over an acceptance structure — the
/// fast-path contract of [`Engine`].
///
/// Implementations must guarantee, for every peer `v`:
///
/// * `row(v)` returns the acceptable peers of `v` sorted **best-first by
///   `v`'s preference**, with a parallel, strictly ascending key slice
///   (`keys[k]` is the key `v` assigns `ids[k]`; strictness encodes the
///   no-ties requirement of §3);
/// * `rev_key(v, k)` returns the key that `ids[k]` assigns to `v` in *its*
///   row — the reciprocal lookup every blocking-pair test needs.
pub trait PreferenceKeys {
    /// Number of peers.
    fn node_count(&self) -> usize;

    /// Acceptance row of `v`: `(ids, keys)`, sorted best-first with keys
    /// strictly ascending.
    fn row(&self, v: NodeId) -> (&[NodeId], &[Rank]);

    /// Key that the `k`-th acceptable peer of `v` assigns to `v`.
    fn rev_key(&self, v: NodeId, k: usize) -> Rank;
}

/// The ranked instantiation: keys are global rank positions (every row of
/// [`RankedAcceptance`] is already sorted best-rank-first with precomputed
/// ranks), and the key a neighbour assigns to `v` is `v`'s own global rank,
/// independent of the neighbour.
impl PreferenceKeys for RankedAcceptance {
    fn node_count(&self) -> usize {
        self.node_count()
    }

    #[inline]
    fn row(&self, v: NodeId) -> (&[NodeId], &[Rank]) {
        self.neighbors_with_ranks(v)
    }

    #[inline]
    fn rev_key(&self, v: NodeId, _k: usize) -> Rank {
        self.ranking().rank_of(v)
    }
}

/// Key tables can be borrowed: scratch engines (e.g. the instant-stable
/// computation of [`crate::prefs::GeneralDynamics`]) reuse the owner's
/// table without cloning it.
impl<K: PreferenceKeys> PreferenceKeys for &K {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    #[inline]
    fn row(&self, v: NodeId) -> (&[NodeId], &[Rank]) {
        (**self).row(v)
    }

    #[inline]
    fn rev_key(&self, v: NodeId, k: usize) -> Rank {
        (**self).rev_key(v, k)
    }
}

/// The common driver surface of the initiative-process engines —
/// what [`crate::ChurnProcess`] (and the scenario layer's backend enum)
/// need from a dynamics backend.
pub trait DynamicsDriver {
    /// Number of peers (present or not).
    fn node_count(&self) -> usize;

    /// Number of present peers.
    fn present_count(&self) -> usize;

    /// Whether peer `v` is present.
    fn is_present(&self, v: NodeId) -> bool;

    /// Removes a peer (drops its collaborations). No-op if absent.
    fn remove_peer(&mut self, v: NodeId);

    /// Re-inserts an absent peer with no mates. No-op if present.
    fn insert_peer(&mut self, v: NodeId);

    /// One initiative by a uniformly random present peer.
    fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome;

    /// Runs `n` initiatives (one *base unit*). Returns the active count.
    fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let n = self.node_count();
        (0..n).filter(|_| self.step(rng).is_active()).count()
    }
}

/// A metric-value memo keyed by an engine's
/// `(presence_version, config_version)` pair: reads between events are
/// O(1); any initiative or churn event invalidates. Shared by the drivers'
/// disorder memos so the invalidation semantics live in exactly one place.
#[derive(Debug, Clone, Default)]
pub(crate) struct VersionMemo(Cell<Option<(u64, u64, f64)>>);

impl VersionMemo {
    /// Returns the memoized value for `versions`, computing and storing it
    /// on a version mismatch.
    pub(crate) fn get_or_compute(
        &self,
        versions: (u64, u64),
        compute: impl FnOnce() -> f64,
    ) -> f64 {
        if let Some((pv, cv, value)) = self.0.get() {
            if (pv, cv) == versions {
                return value;
            }
        }
        let value = compute();
        self.0.set(Some((versions.0, versions.1, value)));
        value
    }
}

/// The generic incremental dynamics engine (see the [module docs](self)).
///
/// Holds the configuration, the per-peer threshold and clean/dirty caches,
/// peer presence, and the version counters; scans run entirely on the
/// precomputed keys of `K`. Use through [`crate::Dynamics`] (global
/// ranking) or [`crate::prefs::GeneralDynamics`] (arbitrary preference
/// systems) unless you are building a new driver.
#[derive(Debug, Clone)]
pub struct Engine<K: PreferenceKeys> {
    keys: K,
    caps: Capacities,
    matching: Matching,
    strategy: InitiativeStrategy,
    /// Decremental-scan cursors, one per peer.
    cursors: Vec<usize>,
    /// Peer presence; absent peers neither initiate nor get matched.
    present: Vec<bool>,
    present_count: usize,
    /// Cached acceptance threshold per peer: the raw key position below
    /// which the peer welcomes a new candidate (worst-mate key when
    /// saturated, "anyone" when a slot is free, "nobody" at capacity 0).
    accept_below: Vec<u32>,
    /// Clean/dirty memo: `false` means "a full scan since the last relevant
    /// change found no blocking mate for this peer".
    dirty: Vec<bool>,
    /// Presence-set version; bumped by every churn (remove/insert) event.
    presence_version: u64,
    /// Configuration version; bumped by every event that changes the
    /// matching or the presence set (metric memo key).
    config_version: u64,
    /// Memoized instant stable configuration, tagged with the
    /// `presence_version` it was computed under. The stable configuration
    /// depends only on the acceptance structure, the capacities and the
    /// present set — never on the current matching — so initiatives leave
    /// it valid and only churn events invalidate it.
    stable_memo: RefCell<Option<(u64, Matching)>>,
    initiatives: u64,
    active_initiatives: u64,
}

impl<K: PreferenceKeys> Engine<K> {
    /// Creates an engine starting from the empty configuration `C∅`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the
    /// key table.
    pub fn new(
        keys: K,
        caps: Capacities,
        strategy: InitiativeStrategy,
    ) -> Result<Self, ModelError> {
        let n = keys.node_count();
        caps.check_len(n)?;
        let matching = Matching::with_capacities(&caps);
        let mut engine = Self {
            keys,
            caps,
            matching,
            strategy,
            cursors: vec![0; n],
            present: vec![true; n],
            present_count: n,
            accept_below: vec![0; n],
            dirty: vec![true; n],
            presence_version: 0,
            config_version: 0,
            stable_memo: RefCell::new(None),
            initiatives: 0,
            active_initiatives: 0,
        };
        engine.refresh_all_thresholds();
        Ok(engine)
    }

    /// Creates an engine starting from an arbitrary configuration whose
    /// cached mate keys are already expressed in this engine's key space
    /// (for the ranked instantiation: global ranks, i.e. any matching built
    /// by the ranked constructors).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SizeMismatch`] on size disagreement.
    pub fn with_configuration(
        keys: K,
        caps: Capacities,
        strategy: InitiativeStrategy,
        matching: Matching,
    ) -> Result<Self, ModelError> {
        if matching.node_count() != keys.node_count() {
            return Err(ModelError::SizeMismatch {
                expected: keys.node_count(),
                actual: matching.node_count(),
            });
        }
        let mut engine = Self::new(keys, caps, strategy)?;
        engine.matching = matching;
        engine.refresh_all_thresholds();
        engine.dirty.fill(true);
        Ok(engine)
    }

    /// Number of peers (present or not).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.keys.node_count()
    }

    /// Current configuration.
    #[must_use]
    pub fn matching(&self) -> &Matching {
        &self.matching
    }

    /// The preference-key table.
    #[must_use]
    pub fn keys(&self) -> &K {
        &self.keys
    }

    /// Capacities in force.
    #[must_use]
    pub fn capacities(&self) -> &Capacities {
        &self.caps
    }

    /// The configured scan strategy.
    #[must_use]
    pub fn strategy(&self) -> InitiativeStrategy {
        self.strategy
    }

    /// Total initiatives taken so far.
    #[must_use]
    pub fn initiative_count(&self) -> u64 {
        self.initiatives
    }

    /// Active (configuration-changing) initiatives taken so far.
    #[must_use]
    pub fn active_initiative_count(&self) -> u64 {
        self.active_initiatives
    }

    /// Number of present peers.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.present_count
    }

    /// Whether peer `v` is present.
    #[must_use]
    pub fn is_present(&self, v: NodeId) -> bool {
        self.present[v.index()]
    }

    /// `(presence_version, config_version)` — the memo key for any value
    /// derived from the presence set and the current configuration.
    #[must_use]
    pub fn versions(&self) -> (u64, u64) {
        (self.presence_version, self.config_version)
    }

    /// The cached acceptance thresholds (test/diagnostic access).
    #[cfg(test)]
    #[must_use]
    pub(crate) fn accept_below(&self) -> &[u32] {
        &self.accept_below
    }

    /// Decomposes the engine into its configuration and capacities
    /// (scratch-engine pattern: converge, then keep only the result).
    #[must_use]
    pub fn into_parts(self) -> (Matching, Capacities) {
        (self.matching, self.caps)
    }

    /// Resets the initiative counters to zero (constructors that converge
    /// internally — e.g. a build-at-stable — use this so a freshly built
    /// driver reports no pre-existing activity, matching the ranked arm's
    /// Algorithm 1 jump).
    pub fn reset_initiative_counters(&mut self) {
        self.initiatives = 0;
        self.active_initiatives = 0;
    }

    /// Removes a peer: drops its collaborations and excludes it from the
    /// system (Figure 2's perturbation). No-op if already absent.
    pub fn remove_peer(&mut self, v: NodeId) {
        if !self.present[v.index()] {
            return;
        }
        self.present[v.index()] = false;
        self.present_count -= 1;
        self.presence_version += 1;
        self.config_version += 1;
        let dropped = self.matching.isolate(v);
        self.refresh_threshold(v);
        self.mark_neighborhood_dirty(v);
        for mate in dropped {
            self.refresh_threshold(mate);
            self.mark_neighborhood_dirty(mate);
        }
    }

    /// Re-inserts an absent peer with no mates. No-op if already present.
    pub fn insert_peer(&mut self, v: NodeId) {
        if self.present[v.index()] {
            return;
        }
        self.present[v.index()] = true;
        self.present_count += 1;
        self.presence_version += 1;
        self.config_version += 1;
        debug_assert_eq!(self.matching.degree(v), 0);
        self.refresh_threshold(v);
        self.mark_neighborhood_dirty(v);
    }

    /// Performs one initiative by a uniformly random present peer.
    ///
    /// Returns [`InitiativeOutcome::Inactive`] when no peers are present.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InitiativeOutcome {
        let Some(p) = self.random_present_peer(rng) else {
            return InitiativeOutcome::Inactive;
        };
        self.initiative(p, rng)
    }

    /// Runs `n` initiatives (one *base unit* in the paper's time axis: one
    /// expected initiative per peer). Returns the number of active ones.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let n = self.node_count();
        (0..n).filter(|_| self.step(rng).is_active()).count()
    }

    /// Has peer `p` take one initiative with the configured strategy.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn initiative<R: Rng + ?Sized>(&mut self, p: NodeId, rng: &mut R) -> InitiativeOutcome {
        if !self.present[p.index()] {
            return InitiativeOutcome::Inactive;
        }
        self.initiatives += 1;
        let mate = match self.strategy {
            // The deterministic scans are memoized: a clean peer has no
            // blocking mate by construction, so skip the scan entirely.
            InitiativeStrategy::BestMate => self.memoized_best_mate_scan(p),
            InitiativeStrategy::Decremental => {
                if !self.dirty[p.index()] {
                    None
                } else {
                    let found = self.decremental_scan(p);
                    if found.is_none() {
                        self.dirty[p.index()] = false;
                    }
                    found
                }
            }
            // The random probe draws from the RNG before the memo could
            // apply; always perform it so streams stay aligned.
            InitiativeStrategy::Random => self.random_probe(p, rng),
        };
        match mate {
            Some((q, slot)) => {
                let outcome = self.execute(p, q, slot);
                self.active_initiatives += 1;
                outcome
            }
            None => InitiativeOutcome::Inactive,
        }
    }

    /// Has `p` take one **best-mate** initiative regardless of the
    /// configured strategy — the deterministic step the round-robin sweeps
    /// of [`crate::prefs::best_mate_dynamics`] and the instant-stable
    /// computation are built from. Counters update as for
    /// [`initiative`](Self::initiative).
    pub fn best_mate_initiative(&mut self, p: NodeId) -> InitiativeOutcome {
        if !self.present[p.index()] {
            return InitiativeOutcome::Inactive;
        }
        self.initiatives += 1;
        match self.memoized_best_mate_scan(p) {
            Some((q, slot)) => {
                let outcome = self.execute(p, q, slot);
                self.active_initiatives += 1;
                outcome
            }
            None => InitiativeOutcome::Inactive,
        }
    }

    /// Dirty-set-memoized best-mate scan (`None` marks `p` clean).
    fn memoized_best_mate_scan(&mut self, p: NodeId) -> Option<(NodeId, usize)> {
        if !self.dirty[p.index()] {
            return None;
        }
        let found = self.best_mate_scan(p);
        if found.is_none() {
            self.dirty[p.index()] = false;
        }
        found
    }

    /// Finds the best blocking mate of `p`: first acceptable `q` in `p`'s
    /// best-first row such that `(p, q)` blocks the configuration. Returns
    /// the mate with its row slot (so [`execute`](Self::execute) reads both
    /// keys without re-searching).
    fn best_mate_scan(&self, p: NodeId) -> Option<(NodeId, usize)> {
        let attractive_below = self.accept_below[p.index()];
        if attractive_below == 0 {
            return None; // b(p) = 0, or saturated with the best possible mates
        }
        let (ids, keys) = self.keys.row(p);
        let mate_keys = self.matching.mate_ranks(p);
        let mut mate_ptr = 0usize;
        for (k, (&q, &q_key)) in ids.iter().zip(keys).enumerate() {
            if q_key.position() as u32 >= attractive_below {
                // Best-first row: nobody later is attractive to p either.
                return None;
            }
            // Sorted two-pointer merge: skip candidates already mated to p.
            // Keys are unique within a row, so equal key means same peer.
            while mate_ptr < mate_keys.len() && mate_keys[mate_ptr].is_better_than(q_key) {
                mate_ptr += 1;
            }
            if mate_ptr < mate_keys.len() && mate_keys[mate_ptr] == q_key {
                mate_ptr += 1;
                continue;
            }
            if self.present[q.index()]
                && (self.keys.rev_key(p, k).position() as u32) < self.accept_below[q.index()]
            {
                // `q` is attractive to p here (checked above) and welcomes p.
                return Some((q, k));
            }
        }
        None
    }

    /// Whether the configuration is stable for the present peers: no
    /// acceptance slot holds a blocking pair.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        (0..self.node_count()).all(|v| {
            let v = NodeId::new(v);
            if !self.present[v.index()] {
                return true;
            }
            let (ids, keys) = self.keys.row(v);
            ids.iter().zip(keys).enumerate().all(|(k, (&q, &q_key))| {
                !(self.present[q.index()] && self.is_blocking_slot(v, q, q_key, k))
            })
        })
    }

    /// Blocking test for row slot `k` of `v` (candidate `q` with key
    /// `q_key`); callers guarantee both endpoints are present.
    #[inline]
    fn is_blocking_slot(&self, v: NodeId, q: NodeId, q_key: Rank, k: usize) -> bool {
        (q_key.position() as u32) < self.accept_below[v.index()]
            && (self.keys.rev_key(v, k).position() as u32) < self.accept_below[q.index()]
            && self.matching.mate_ranks(v).binary_search(&q_key).is_err()
    }

    fn random_present_peer<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeId> {
        if self.present_count == 0 {
            return None;
        }
        let n = self.node_count();
        if self.present_count == n {
            return Some(NodeId::new(rng.gen_range(0..n)));
        }
        // Rejection sampling; presence is the common case in experiments.
        loop {
            let v = NodeId::new(rng.gen_range(0..n));
            if self.present[v.index()] {
                return Some(v);
            }
        }
    }

    /// Circular scan from the last asked position (decremental strategy).
    fn decremental_scan(&mut self, p: NodeId) -> Option<(NodeId, usize)> {
        let (ids, keys) = self.keys.row(p);
        let len = ids.len();
        if len == 0 {
            return None;
        }
        let start = self.cursors[p.index()] % len;
        for k in 0..len {
            let idx = (start + k) % len;
            let q = ids[idx];
            if self.present[q.index()] && self.is_blocking_slot(p, q, keys[idx], idx) {
                self.cursors[p.index()] = (idx + 1) % len;
                return Some((q, idx));
            }
        }
        self.cursors[p.index()] = start;
        None
    }

    /// Single random probe (random strategy).
    fn random_probe<R: Rng + ?Sized>(&self, p: NodeId, rng: &mut R) -> Option<(NodeId, usize)> {
        let (ids, keys) = self.keys.row(p);
        if ids.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..ids.len());
        let q = ids[idx];
        (self.present[q.index()] && self.is_blocking_slot(p, q, keys[idx], idx)).then_some((q, idx))
    }

    /// Matches a confirmed blocking pair (row slot `slot` of `p`), evicting
    /// worst mates as needed.
    fn execute(&mut self, p: NodeId, q: NodeId, slot: usize) -> InitiativeOutcome {
        let key_of_q = self.keys.row(p).1[slot];
        let key_of_p = self.keys.rev_key(p, slot);
        let mut dropped_by_peer = None;
        let mut dropped_by_mate = None;
        if self.matching.is_saturated(&self.caps, p) {
            let worst = self
                .matching
                .worst_mate(p)
                .expect("saturated implies mates");
            self.matching
                .disconnect(p, worst)
                .expect("worst mate is matched");
            dropped_by_peer = Some(worst);
        }
        if self.matching.is_saturated(&self.caps, q) {
            let worst = self
                .matching
                .worst_mate(q)
                .expect("saturated implies mates");
            self.matching
                .disconnect(q, worst)
                .expect("worst mate is matched");
            dropped_by_mate = Some(worst);
        }
        self.matching
            .connect_keyed(&self.caps, p, q, key_of_q, key_of_p)
            .expect("slots were freed");
        self.config_version += 1;
        // Incremental cache maintenance: only the touched peers change, and
        // only their neighbourhoods can gain new blocking pairs.
        self.refresh_threshold(p);
        self.refresh_threshold(q);
        self.mark_neighborhood_dirty(p);
        self.mark_neighborhood_dirty(q);
        if let Some(w) = dropped_by_peer {
            self.refresh_threshold(w);
            self.mark_neighborhood_dirty(w);
        }
        if let Some(w) = dropped_by_mate {
            self.refresh_threshold(w);
            self.mark_neighborhood_dirty(w);
        }
        InitiativeOutcome::Active {
            peer: p,
            mate: q,
            dropped_by_peer,
            dropped_by_mate,
        }
    }

    /// Runs `read` on the (memoized) instant stable configuration and the
    /// current matching, calling `compute` to refresh the memo if a churn
    /// event invalidated it. What "instant stable" means is the caller's
    /// contract — Algorithm 1 for the ranked driver, the deterministic
    /// best-mate fixpoint for the generalized one.
    pub fn with_instant_stable<T>(
        &self,
        compute: impl FnOnce() -> Matching,
        read: impl FnOnce(&Matching, &Matching) -> T,
    ) -> T {
        let mut memo = self.stable_memo.borrow_mut();
        let fresh = !matches!(*memo, Some((version, _)) if version == self.presence_version);
        if fresh {
            *memo = Some((self.presence_version, compute()));
        }
        let (_, stable) = memo.as_ref().expect("memo just refreshed");
        read(stable, &self.matching)
    }

    /// Recomputes the cached acceptance threshold of `v` (O(1)).
    #[inline]
    fn refresh_threshold(&mut self, v: NodeId) {
        self.accept_below[v.index()] = blocking::accept_threshold(&self.matching, &self.caps, v);
    }

    fn refresh_all_thresholds(&mut self) {
        for v in 0..self.node_count() {
            self.refresh_threshold(NodeId::new(v));
        }
    }

    /// Marks `v` and every acceptance-neighbour of `v` dirty: `v`'s mate
    /// set or presence changed, which is the only way a blocking pair
    /// involving them can appear.
    fn mark_neighborhood_dirty(&mut self, v: NodeId) {
        self.dirty[v.index()] = true;
        let (ids, _) = self.keys.row(v);
        for &w in ids {
            self.dirty[w.index()] = true;
        }
    }
}
