//! Algorithm 1: the unique stable configuration under a global ranking.
//!
//! With a global ranking there are no preference cycles, so by Tan's theorem
//! the stable b-matching exists and is unique (§3). It is computed greedily:
//! the best peer grabs its best acceptable peers, then the second best fills
//! its remaining slots, and so on. When the greedy loop reaches peer `i`,
//! every better peer has spent its slots, so `i` only needs to scan peers
//! ranked below itself — which the CSR acceptance rows locate with one
//! binary search (the better-ranked prefix is skipped wholesale instead of
//! being re-scanned and filtered per edge). Every link is then formed by
//! appending to both mate lists: the greedy order hands each peer its mates
//! best-first, so no sorted insertion and no validity checks are needed.

use strat_graph::NodeId;

use crate::{Capacities, GlobalRanking, Matching, ModelError, RankedAcceptance};

/// Computes the unique stable configuration of the b-matching problem
/// (Algorithm 1 of the paper).
///
/// Runs in `O(Σ deg)` after the rank-sorting already stored in
/// [`RankedAcceptance`].
///
/// # Errors
///
/// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the peers.
///
/// # Examples
///
/// ```
/// use strat_core::{stable_configuration, Capacities, GlobalRanking, RankedAcceptance};
/// use strat_graph::{generators, NodeId};
///
/// let acc = RankedAcceptance::new(generators::complete(6), GlobalRanking::identity(6))?;
/// let caps = Capacities::constant(6, 1);
/// let stable = stable_configuration(&acc, &caps)?;
/// // 1-matching on a complete graph pairs (0,1), (2,3), (4,5).
/// assert_eq!(stable.mate_of(NodeId::new(0)), Some(NodeId::new(1)));
/// assert_eq!(stable.mate_of(NodeId::new(4)), Some(NodeId::new(5)));
/// # Ok::<(), strat_core::ModelError>(())
/// ```
pub fn stable_configuration(
    acc: &RankedAcceptance,
    caps: &Capacities,
) -> Result<Matching, ModelError> {
    stable_configuration_masked(acc, caps, |_| true)
}

/// [`stable_configuration`] restricted to the peers for which `present`
/// returns `true` — the "instant stable configuration" used to measure
/// disorder under churn (§3, Figure 3). Absent peers end up unmated.
///
/// # Errors
///
/// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the peers.
pub fn stable_configuration_masked<F>(
    acc: &RankedAcceptance,
    caps: &Capacities,
    present: F,
) -> Result<Matching, ModelError>
where
    F: Fn(NodeId) -> bool,
{
    let n = acc.node_count();
    caps.check_len(n)?;
    let ranking = acc.ranking();
    // Availability bitset: bit `v` set iff `v` is present with free slots.
    // The inner scan's only random memory access becomes one bit probe in a
    // structure 32× smaller than a remaining-slots array (L1-resident up to
    // ~2M peers), and the `present` predicate is evaluated once per peer,
    // not per edge. Exact free-slot counts live in the matching's own arena
    // row metadata, which every append touches anyway.
    let mut avail = vec![0u64; n.div_ceil(64)];
    for v in 0..n {
        if caps.of(NodeId::new(v)) > 0 && present(NodeId::new(v)) {
            avail[v >> 6] |= 1 << (v & 63);
        }
    }
    let mut matching = Matching::with_capacities(caps);
    for i in ranking.nodes_best_first() {
        if avail[i.index() >> 6] & (1 << (i.index() & 63)) == 0 {
            continue;
        }
        let my_rank = ranking.rank_of(i);
        let (ids, ranks) = acc.neighbors_with_ranks(i);
        // Better-ranked neighbours already had their chance to pick `i`;
        // jump straight past them (the row is sorted by rank).
        let start = ranks.partition_point(|r| r.is_better_than(my_rank));
        let mut slots_left = matching.free_slots(i);
        for (&j, &j_rank) in ids[start..].iter().zip(&ranks[start..]) {
            if avail[j.index() >> 6] & (1 << (j.index() & 63)) == 0 {
                continue;
            }
            // Greedy order delivers mates best-first on both sides, so a
            // plain append keeps the lists sorted (debug-asserted inside).
            matching.push_pair_append(i, j, my_rank, j_rank);
            if matching.free_slots(j) == 0 {
                avail[j.index() >> 6] &= !(1 << (j.index() & 63));
            }
            slots_left -= 1;
            if slots_left == 0 {
                avail[i.index() >> 6] &= !(1 << (i.index() & 63));
                break;
            }
        }
    }
    Ok(matching)
}

/// Stable configuration for a **complete acceptance graph** without
/// materializing the `O(n²)` edges (the §4 toy model at scale).
///
/// On a complete graph the greedy choice of peer `r` (by rank) is simply the
/// next ranks below `r` with remaining capacity; a path-compressed
/// "next-available-rank" pointer structure yields `O(n·b·α(n))` time and
/// `O(n)` memory, letting Table 1 / Figure 6 run with hundreds of thousands
/// of peers.
///
/// # Errors
///
/// Returns [`ModelError::SizeMismatch`] if `caps` does not cover the ranking.
pub fn stable_configuration_complete(
    ranking: &GlobalRanking,
    caps: &Capacities,
) -> Result<Matching, ModelError> {
    let n = ranking.len();
    caps.check_len(n)?;
    // Per-rank remaining capacity.
    let mut remaining: Vec<u32> = (0..n)
        .map(|r| caps.of(ranking.node_at_rank(crate::Rank::new(r))))
        .collect();
    // next_avail[r] = candidate for the smallest rank >= r with capacity,
    // maintained with path compression. Index n is a sentinel.
    let mut next_avail: Vec<u32> = (0..=n as u32).collect();

    fn find(next_avail: &mut [u32], remaining: &[u32], r: usize) -> usize {
        let n = remaining.len();
        let mut r = r;
        // Walk and compress until a rank with capacity (or the sentinel).
        let mut path = Vec::new();
        while r < n && remaining[r] == 0 {
            path.push(r);
            r = next_avail[r] as usize;
            if r <= *path.last().expect("just pushed") {
                // Pointer not yet advanced; move to the next rank directly.
                r = path.last().expect("just pushed") + 1;
            }
        }
        for p in path {
            next_avail[p] = r as u32;
        }
        r
    }

    let mut matching = Matching::with_capacities(caps);
    for r in 0..n {
        let i = ranking.node_at_rank(crate::Rank::new(r));
        let mut cursor = r + 1;
        while remaining[r] > 0 {
            let s = find(&mut next_avail, &remaining, cursor);
            if s >= n {
                break; // everyone below r is saturated: slots stay unsatisfied
            }
            let j = ranking.node_at_rank(crate::Rank::new(s));
            // `i` grabs ranks below itself in ascending order, and `j`
            // receives grabs from above in ascending order: appends suffice.
            matching.push_pair_append(i, j, crate::Rank::new(r), crate::Rank::new(s));
            remaining[r] -= 1;
            remaining[s] -= 1;
            cursor = s + 1;
        }
    }
    Ok(matching)
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use crate::{blocking, CapacityDistribution};

    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn complete_acc(count: usize) -> RankedAcceptance {
        RankedAcceptance::new(generators::complete(count), GlobalRanking::identity(count)).unwrap()
    }

    #[test]
    fn one_matching_on_complete_graph_pairs_adjacent_ranks() {
        let acc = complete_acc(7);
        let caps = Capacities::constant(7, 1);
        let m = stable_configuration(&acc, &caps).unwrap();
        assert_eq!(m.mate_of(n(0)), Some(n(1)));
        assert_eq!(m.mate_of(n(2)), Some(n(3)));
        assert_eq!(m.mate_of(n(4)), Some(n(5)));
        assert_eq!(m.mate_of(n(6)), None); // odd one out
        assert!(blocking::is_stable(&acc, &caps, &m));
    }

    #[test]
    fn constant_b_matching_forms_cliques() {
        // §4.1 / Figure 4: clusters are consecutive (b0+1)-cliques.
        let b0 = 2u32;
        let acc = complete_acc(9);
        let caps = Capacities::constant(9, b0);
        let m = stable_configuration(&acc, &caps).unwrap();
        for cluster in [[0usize, 1, 2], [3, 4, 5], [6, 7, 8]] {
            for &a in &cluster {
                for &b in &cluster {
                    if a != b {
                        assert!(m.contains(n(a), n(b)), "{a} and {b} should be mates");
                    }
                }
            }
        }
        assert!(blocking::is_stable(&acc, &caps, &m));
    }

    #[test]
    fn output_is_stable_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for seed in 0..8u64 {
            let mut graph_rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::erdos_renyi(60, 0.15, &mut graph_rng);
            let ranking = GlobalRanking::random(60, &mut rng);
            let acc = RankedAcceptance::new(g, ranking).unwrap();
            let caps = Capacities::sample(
                60,
                &CapacityDistribution::RoundedNormal {
                    mean: 3.0,
                    sigma: 1.0,
                },
                &mut rng,
            );
            let m = stable_configuration(&acc, &caps).unwrap();
            assert!(m.check_invariants(acc.ranking(), &caps));
            assert!(
                blocking::is_stable(&acc, &caps, &m),
                "blocking pair remains: {:?}",
                blocking::first_blocking_pair(&acc, &caps, &m)
            );
        }
    }

    #[test]
    fn complete_specialization_agrees_with_generic() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for count in [1usize, 2, 5, 12, 30] {
            let ranking = GlobalRanking::random(count, &mut rng);
            let caps = Capacities::sample(
                count,
                &CapacityDistribution::RoundedNormal {
                    mean: 3.0,
                    sigma: 1.5,
                },
                &mut rng,
            );
            let acc = RankedAcceptance::new(generators::complete(count), ranking.clone()).unwrap();
            let generic = stable_configuration(&acc, &caps).unwrap();
            let fast = stable_configuration_complete(&ranking, &caps).unwrap();
            assert_eq!(generic, fast, "n={count}");
        }
    }

    #[test]
    fn figure5_extra_connection_connects_clusters() {
        // §4.2 / Figure 5: granting peer 1 (rank 0) one extra slot chains the
        // 2-matching clusters into one connected component.
        let count = 8;
        let ranking = GlobalRanking::identity(count);
        let mut caps = Capacities::constant(count, 2);
        caps.grant_extra(n(0), 1);
        let m = stable_configuration_complete(&ranking, &caps).unwrap();
        let comps = strat_graph::components::Components::of(&m.to_graph());
        assert!(comps.is_connected(), "sizes: {:?}", comps.sizes());
    }

    #[test]
    fn masked_excludes_absent_peers() {
        let acc = complete_acc(6);
        let caps = Capacities::constant(6, 1);
        // Remove peer 1: peer 0 now pairs with 2, etc.
        let m = stable_configuration_masked(&acc, &caps, |v| v != n(1)).unwrap();
        assert_eq!(m.mate_of(n(0)), Some(n(2)));
        assert_eq!(m.mate_of(n(1)), None);
        assert_eq!(m.mate_of(n(3)), Some(n(4)));
        assert_eq!(m.mate_of(n(5)), None);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let ranking = GlobalRanking::identity(0);
        let caps = Capacities::constant(0, 3);
        assert_eq!(
            stable_configuration_complete(&ranking, &caps)
                .unwrap()
                .edge_count(),
            0
        );

        let ranking = GlobalRanking::identity(1);
        let caps = Capacities::constant(1, 3);
        assert_eq!(
            stable_configuration_complete(&ranking, &caps)
                .unwrap()
                .edge_count(),
            0
        );
    }

    #[test]
    fn size_mismatch_detected() {
        let acc = complete_acc(3);
        let caps = Capacities::constant(2, 1);
        assert!(stable_configuration(&acc, &caps).is_err());
        assert!(stable_configuration_complete(&GlobalRanking::identity(3), &caps).is_err());
    }

    #[test]
    fn zero_capacity_peers_stay_isolated() {
        let acc = complete_acc(4);
        let caps = Capacities::from_values(vec![1, 0, 1, 0]);
        let m = stable_configuration(&acc, &caps).unwrap();
        assert_eq!(m.mate_of(n(0)), Some(n(2)));
        assert_eq!(m.degree(n(1)), 0);
        assert_eq!(m.degree(n(3)), 0);
    }

    #[test]
    fn large_complete_instance_is_fast_and_stable_by_shape() {
        // 30k peers, b0 = 4: clusters must be consecutive 5-cliques.
        let count = 30_000;
        let ranking = GlobalRanking::identity(count);
        let caps = Capacities::constant(count, 4);
        let m = stable_configuration_complete(&ranking, &caps).unwrap();
        assert_eq!(m.mates(n(0)), &[n(1), n(2), n(3), n(4)]);
        assert_eq!(m.mates(n(7)), &[n(5), n(6), n(8), n(9)]);
        let comps = strat_graph::components::Components::of(&m.to_graph());
        assert_eq!(comps.giant_size(), 5);
        assert_eq!(comps.count(), count / 5);
    }

    #[test]
    fn nonidentity_ranking_greedy_matches_reference_shape() {
        // Regression for the partition_point fast path: a scrambled ranking
        // must still yield a stable configuration identical to the masked
        // reference (full-present mask).
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let g = generators::erdos_renyi(80, 0.1, &mut rng);
        let ranking = GlobalRanking::random(80, &mut rng);
        let acc = RankedAcceptance::new(g, ranking).unwrap();
        let caps = Capacities::constant(80, 2);
        let m = stable_configuration(&acc, &caps).unwrap();
        assert!(blocking::is_stable(&acc, &caps, &m));
        assert!(m.check_invariants(acc.ranking(), &caps));
    }
}
