//! Cluster and stratification statistics (§4).
//!
//! The *collaboration graph* of a configuration is analyzed through two
//! statistics:
//!
//! * **cluster sizes** — connected components; constant `b₀`-matching on a
//!   complete acceptance graph shatters into `(b₀+1)`-cliques (Figure 4),
//!   while variable capacities merge them into huge components (Figure 6);
//! * **Mean Max Offset (MMO)** — the mean over peers of the ranking offset
//!   to their *furthest* collaboration-graph neighbour. Small MMO while
//!   clusters are huge is precisely the stratification phenomenon. (The
//!   paper uses "Mean Max Offset" and "Max Mean Offset" interchangeably for
//!   this same quantity; we keep MMO.)

use serde::{Deserialize, Serialize};
use strat_graph::components::Components;

use crate::{GlobalRanking, Matching};

/// Summary statistics of the collaboration graph of a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Number of connected components (isolated peers count as singletons).
    pub component_count: usize,
    /// Mean component size `n / component_count`.
    pub mean_cluster_size: f64,
    /// Mean size of the component of a uniformly random *peer*
    /// (`Σ sᵢ² / n`); emphasizes giant components.
    pub mean_cluster_size_by_peer: f64,
    /// Size of the largest component.
    pub giant_size: usize,
    /// Mean Max Offset: mean over mated peers of `max |rank(p) − rank(q)|`
    /// over their direct mates `q`.
    pub mmo: f64,
}

/// Computes [`ClusterStats`] for a configuration.
///
/// # Examples
///
/// ```
/// use strat_core::{cluster, stable_configuration_complete, Capacities, GlobalRanking};
///
/// // Constant 2-matching on 9 peers: three 3-cliques (Figure 4).
/// let ranking = GlobalRanking::identity(9);
/// let caps = Capacities::constant(9, 2);
/// let m = stable_configuration_complete(&ranking, &caps)?;
/// let stats = cluster::cluster_stats(&ranking, &m);
/// assert_eq!(stats.component_count, 3);
/// assert_eq!(stats.mean_cluster_size, 3.0);
/// // MMO of 2-matching cliques: (2+1+2)/3 = 5/3.
/// assert!((stats.mmo - 5.0 / 3.0).abs() < 1e-12);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[must_use]
pub fn cluster_stats(ranking: &GlobalRanking, matching: &Matching) -> ClusterStats {
    let n = matching.node_count();
    let mut uf = matching.to_union_find();
    let comps = Components::from_union_find(&mut uf);
    let mean_by_peer = if n == 0 {
        0.0
    } else {
        comps.sizes().iter().map(|&s| (s * s) as f64).sum::<f64>() / n as f64
    };
    ClusterStats {
        component_count: comps.count(),
        mean_cluster_size: comps.mean_size(),
        mean_cluster_size_by_peer: mean_by_peer,
        giant_size: comps.giant_size(),
        mmo: mean_max_offset(ranking, matching),
    }
}

/// Mean Max Offset of a configuration: mean over peers with at least one
/// mate of the maximum rank offset to a mate. Returns 0 if nobody is mated.
#[must_use]
pub fn mean_max_offset(ranking: &GlobalRanking, matching: &Matching) -> f64 {
    let mut total = 0.0;
    let mut mated = 0usize;
    for v in ranking.nodes_best_first() {
        let mate_ranks = matching.mate_ranks(v);
        if mate_ranks.is_empty() {
            continue;
        }
        // Mates are sorted best-first with ranks cached alongside; the max
        // offset is attained at the first or last mate.
        let v_rank = ranking.rank_of(v);
        let first = v_rank.offset(mate_ranks[0]);
        let last = v_rank.offset(*mate_ranks.last().expect("nonempty"));
        total += first.max(last) as f64;
        mated += 1;
    }
    if mated == 0 {
        0.0
    } else {
        total / mated as f64
    }
}

/// Exact MMO of constant `b₀`-matching on a complete acceptance graph,
/// where every cluster is a `(b₀+1)`-clique of consecutive ranks:
/// `MMO(b₀) = (1/(b₀+1)) Σᵢ max(i, b₀ − i)` for positions `i = 0..=b₀`.
///
/// The paper spells the sum `(b₀ + (b₀−1) + … + ⌈b₀/2⌉ + … + b₀)/(b₀+1)`.
///
/// # Examples
///
/// ```
/// let mmo = strat_core::cluster::mmo_constant_exact(2);
/// assert!((mmo - 5.0 / 3.0).abs() < 1e-12); // paper Table 1: 1.67
/// ```
#[must_use]
pub fn mmo_constant_exact(b0: u32) -> f64 {
    if b0 == 0 {
        return 0.0;
    }
    let b0 = b0 as u64;
    let sum: u64 = (0..=b0).map(|i| i.max(b0 - i)).sum();
    sum as f64 / (b0 + 1) as f64
}

/// Asymptotic MMO of constant `b₀`-matching: `3b₀/4` (§4.2).
#[must_use]
pub fn mmo_constant_limit(b0: u32) -> f64 {
    0.75 * f64::from(b0)
}

#[cfg(test)]
mod tests {
    use strat_graph::NodeId;

    use crate::{stable_configuration_complete, Capacities};

    use super::*;

    #[test]
    fn mmo_constant_matches_paper_table1() {
        // Table 1, constant b0-matching row "Max Mean Offset".
        let expected = [
            (2u32, 1.67),
            (3, 2.5),
            (4, 3.2),
            (5, 4.0),
            (6, 4.71),
            (7, 5.5),
        ];
        for (b0, want) in expected {
            let got = mmo_constant_exact(b0);
            assert!((got - want).abs() < 0.01, "b0={b0}: got {got}, want {want}");
        }
    }

    #[test]
    fn mmo_converges_to_three_quarters_b0() {
        for b0 in [64u32, 256, 1024] {
            let ratio = mmo_constant_exact(b0) / mmo_constant_limit(b0);
            assert!(
                (ratio - 1.0).abs() < 2.0 / f64::from(b0),
                "b0={b0}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn measured_mmo_matches_closed_form() {
        for b0 in 2u32..=7 {
            let n = (b0 as usize + 1) * 100; // whole clusters only
            let ranking = GlobalRanking::identity(n);
            let caps = Capacities::constant(n, b0);
            let m = stable_configuration_complete(&ranking, &caps).unwrap();
            let measured = mean_max_offset(&ranking, &m);
            let exact = mmo_constant_exact(b0);
            assert!(
                (measured - exact).abs() < 1e-9,
                "b0={b0}: {measured} vs {exact}"
            );
        }
    }

    #[test]
    fn cluster_stats_on_clique_decomposition() {
        let ranking = GlobalRanking::identity(12);
        let caps = Capacities::constant(12, 3);
        let m = stable_configuration_complete(&ranking, &caps).unwrap();
        let stats = cluster_stats(&ranking, &m);
        assert_eq!(stats.component_count, 3);
        assert_eq!(stats.giant_size, 4);
        assert_eq!(stats.mean_cluster_size, 4.0);
        assert_eq!(stats.mean_cluster_size_by_peer, 4.0);
    }

    #[test]
    fn empty_matching_stats() {
        let ranking = GlobalRanking::identity(5);
        let stats = cluster_stats(&ranking, &Matching::new(5));
        assert_eq!(stats.component_count, 5);
        assert_eq!(stats.giant_size, 1);
        assert_eq!(stats.mmo, 0.0);
    }

    #[test]
    fn mmo_ignores_unmated_peers() {
        let ranking = GlobalRanking::identity(5);
        let caps = Capacities::constant(5, 1);
        let mut m = Matching::new(5);
        m.connect(&ranking, &caps, NodeId::new(0), NodeId::new(4))
            .unwrap();
        // Only peers 0 and 4 are mated; both have offset 4.
        assert_eq!(mean_max_offset(&ranking, &m), 4.0);
    }

    #[test]
    fn mmo_zero_capacity() {
        assert_eq!(mmo_constant_exact(0), 0.0);
        assert_eq!(mmo_constant_limit(0), 0.0);
    }

    #[test]
    fn by_peer_mean_emphasizes_giants() {
        // Two pairs and two singletons: sizes 2, 2, 1, 1 over n = 6.
        let ranking = GlobalRanking::identity(6);
        let caps = Capacities::constant(6, 1);
        let mut m = Matching::new(6);
        m.connect(&ranking, &caps, NodeId::new(0), NodeId::new(1))
            .unwrap();
        m.connect(&ranking, &caps, NodeId::new(2), NodeId::new(3))
            .unwrap();
        let stats = cluster_stats(&ranking, &m);
        assert_eq!(stats.component_count, 4);
        assert_eq!(stats.mean_cluster_size, 1.5);
        assert!((stats.mean_cluster_size_by_peer - (4.0 + 4.0 + 1.0 + 1.0) / 6.0).abs() < 1e-12);
    }
}
