//! Continuous churn (§3, Figure 3).
//!
//! Peers can be removed from or re-introduced into the system at any time,
//! according to a churn-rate parameter. The paper's Figure 3 labels runs
//! "Churn = 30/1000", "10/1000", … with `n = 1000` peers: we read this as
//! *churn events per initiative step*, i.e. rate `ρ = 30/1000` produces on
//! average 30 churn events per base unit (one base unit = `n` initiatives)
//! in a 1000-peer system.
//!
//! A churn event is a **replacement**: a uniformly random present peer
//! departs (dropping its collaborations) and a uniformly random absent peer
//! simultaneously re-joins with no mates. The very first event has no absent
//! peer to re-insert and is a pure departure, after which the population
//! stays pinned at `n − 1` — i.e. effectively stationary, as arrival and
//! departure flows balance in the paper's setting.

use rand::Rng;
use serde::{Deserialize, Serialize};
use strat_graph::NodeId;

use crate::{Dynamics, DynamicsDriver, InitiativeOutcome};

/// What a single churn event did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnEvent {
    /// A present peer left and no absent peer was available to replace it
    /// (only possible when everybody is present).
    Departure(NodeId),
    /// A present peer left and an absent peer simultaneously re-joined.
    Replacement {
        /// The departing peer (collaborations dropped).
        departed: NodeId,
        /// The arriving peer (joins with no mates).
        arrived: NodeId,
    },
}

/// Churn-driven simulation: wraps a dynamics backend and interleaves
/// random departures/arrivals with initiative steps.
///
/// The process is generic over [`DynamicsDriver`] — any instantiation of
/// the incremental engine (the ranked [`Dynamics`], which is the default
/// type parameter, or the generalized-preference drivers) churns the same
/// way, consuming identical randomness for identical presence decisions.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use strat_core::{Capacities, ChurnProcess, Dynamics, GlobalRanking, InitiativeStrategy,
///                  RankedAcceptance};
/// use strat_graph::generators;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let graph = generators::erdos_renyi_mean_degree(100, 10.0, &mut rng);
/// let acc = RankedAcceptance::new(graph, GlobalRanking::identity(100))?;
/// let caps = Capacities::constant(100, 1);
/// let dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate)?;
///
/// let mut churn = ChurnProcess::new(dynamics, 0.01); // 1 event / 100 steps
/// for _ in 0..20 {
///     churn.run_base_unit(&mut rng);
/// }
/// // Disorder stays under control (bounded well below 1).
/// assert!(churn.dynamics().disorder() < 0.5);
/// # Ok::<(), strat_core::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ChurnProcess<D: DynamicsDriver = Dynamics> {
    dynamics: D,
    rate: f64,
    events: u64,
}

impl<D: DynamicsDriver> ChurnProcess<D> {
    /// Wraps a dynamics driver with churn at `rate` events per initiative
    /// step.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not a finite value in `[0, 1]`.
    #[must_use]
    pub fn new(dynamics: D, rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..=1.0).contains(&rate),
            "churn rate must be in [0, 1], got {rate}"
        );
        Self {
            dynamics,
            rate,
            events: 0,
        }
    }

    /// The wrapped dynamics (current configuration, disorder, …).
    #[must_use]
    pub fn dynamics(&self) -> &D {
        &self.dynamics
    }

    /// Mutable access to the wrapped dynamics.
    #[must_use]
    pub fn dynamics_mut(&mut self) -> &mut D {
        &mut self.dynamics
    }

    /// Churn events triggered so far.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.events
    }

    /// Churn rate (events per initiative step).
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// One simulation step: maybe a churn event, then one initiative.
    ///
    /// Returns the churn event (if any) and the initiative outcome.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
    ) -> (Option<ChurnEvent>, InitiativeOutcome) {
        let event = if self.rate > 0.0 && rng.gen_bool(self.rate) {
            self.churn_event(rng)
        } else {
            None
        };
        let outcome = self.dynamics.step(rng);
        (event, outcome)
    }

    /// Runs `n` steps (one base unit). Returns the number of churn events.
    pub fn run_base_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        let n = self.dynamics.node_count();
        (0..n).filter(|_| self.step(rng).0.is_some()).count()
    }

    fn churn_event<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<ChurnEvent> {
        let n = self.dynamics.node_count();
        let present = self.dynamics.present_count();
        if n == 0 || present == 0 {
            return None;
        }
        self.events += 1;
        // Uniform present peer via rejection sampling (presence dominates).
        let departed = loop {
            let v = NodeId::new(rng.gen_range(0..n));
            if self.dynamics.is_present(v) {
                break v;
            }
        };
        self.dynamics.remove_peer(departed);
        if present == n {
            // Nobody was absent before this departure: pure departure.
            return Some(ChurnEvent::Departure(departed));
        }
        // Replacement: a uniformly random *previously* absent peer re-joins
        // (never the one that just departed).
        let arrived = loop {
            let v = NodeId::new(rng.gen_range(0..n));
            if v != departed && !self.dynamics.is_present(v) {
                break v;
            }
        };
        self.dynamics.insert_peer(arrived);
        Some(ChurnEvent::Replacement { departed, arrived })
    }
}

#[cfg(test)]
mod tests {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use strat_graph::generators;

    use crate::{Capacities, GlobalRanking, InitiativeStrategy, RankedAcceptance};

    use super::*;

    fn make(count: usize, rate: f64, seed: u64) -> (ChurnProcess, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let graph = generators::erdos_renyi_mean_degree(count, 10.0, &mut rng);
        let acc = RankedAcceptance::new(graph, GlobalRanking::identity(count)).unwrap();
        let caps = Capacities::constant(count, 1);
        let dynamics = Dynamics::new(acc, caps, InitiativeStrategy::BestMate).unwrap();
        (ChurnProcess::new(dynamics, rate), rng)
    }

    #[test]
    fn zero_rate_never_churns() {
        let (mut churn, mut rng) = make(50, 0.0, 1);
        for _ in 0..10 {
            churn.run_base_unit(&mut rng);
        }
        assert_eq!(churn.event_count(), 0);
        assert_eq!(churn.dynamics().present_count(), 50);
    }

    #[test]
    fn event_rate_is_respected() {
        let (mut churn, mut rng) = make(100, 0.05, 2);
        let steps = 20_000;
        for _ in 0..steps {
            churn.step(&mut rng);
        }
        let expected = 0.05 * steps as f64;
        let got = churn.event_count() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "{got} events vs {expected}"
        );
    }

    #[test]
    fn population_stays_stationary() {
        let (mut churn, mut rng) = make(60, 0.2, 3);
        for _ in 0..100 {
            churn.run_base_unit(&mut rng);
            let present = churn.dynamics().present_count();
            // Replacement churn pins the population at n or n - 1.
            assert!((59..=60).contains(&present), "present = {present}");
        }
        assert!(churn.event_count() > 100);
    }

    #[test]
    fn low_churn_keeps_disorder_small() {
        let (mut churn, mut rng) = make(100, 0.002, 5);
        for _ in 0..30 {
            churn.run_base_unit(&mut rng);
        }
        assert!(
            churn.dynamics().disorder() < 0.15,
            "disorder {}",
            churn.dynamics().disorder()
        );
    }

    #[test]
    fn higher_churn_means_more_disorder_on_average() {
        let avg = |rate: f64| {
            let (mut churn, mut rng) = make(120, rate, 11);
            let mut total = 0.0;
            // warm-up
            for _ in 0..10 {
                churn.run_base_unit(&mut rng);
            }
            for _ in 0..20 {
                churn.run_base_unit(&mut rng);
                total += churn.dynamics().disorder();
            }
            total / 20.0
        };
        let low = avg(0.001);
        let high = avg(0.1);
        assert!(
            high > low,
            "high-churn disorder {high} not above low-churn {low}"
        );
    }

    #[test]
    #[should_panic(expected = "churn rate must be in [0, 1]")]
    fn invalid_rate_panics() {
        let (churn, _) = make(10, 0.0, 1);
        let dynamics = churn.dynamics().clone();
        let _ = ChurnProcess::new(dynamics, 1.5);
    }
}
