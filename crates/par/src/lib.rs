//! Deterministic scoped-thread parallelism for the stratification workspace.
//!
//! The embarrassingly-parallel layers (Monte-Carlo realizations,
//! independent experiment runs, parameter sweeps) fan out through
//! [`par_map`], built on [`std::thread::scope`] — no external runtime.
//!
//! # Determinism contract
//!
//! Every function here is **order-preserving and schedule-independent**:
//! `par_map(items, t, f)` returns exactly
//! `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` for every
//! thread count `t`, byte for byte. Callers keep results bit-reproducible
//! by deriving any randomness from the *item index* (e.g. one ChaCha
//! stream per realization), never from the worker thread. This is the
//! workspace-wide rule; `strat_analytic::monte_carlo` documents the same
//! contract at its API boundary.

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Default worker count: `STRAT_THREADS` if set, else the machine's
/// available parallelism, else 1.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("STRAT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped threads, preserving
/// input order in the output.
///
/// `f(i, &items[i])` receives the item **index**, so callers can derive
/// per-item deterministic state (RNG streams, output slots) independent of
/// the scheduling. With `threads <= 1` the loop runs inline, producing the
/// identical result.
///
/// # Panics
///
/// Propagates panics from `f`.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let parts: Vec<Vec<U>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, slice)| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(k, item)| f(c * chunk_len + k, item))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for part in parts {
        out.extend(part);
    }
    out
}

/// Splits `0..total` into at most `parts` contiguous, non-empty ranges
/// covering the whole interval in order.
///
/// Used to hand each worker a contiguous block of realization indices while
/// keeping the index→realization mapping independent of the worker count.
#[must_use]
pub fn chunk_ranges(total: u64, parts: usize) -> Vec<Range<u64>> {
    if total == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut ranges = Vec::with_capacity(parts as usize);
    let mut start = 0u64;
    for part in 0..parts {
        let len = base + u64::from(part < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Splits `slice` into consecutive disjoint mutable chunks of the given
/// lengths (which must sum to at most `slice.len()`).
///
/// The companion of [`chunk_ranges`] for phase-structured parallel loops:
/// derive per-worker item ranges once, then hand each worker the matching
/// chunk of every output array (different arrays may use different
/// per-range lengths — e.g. one slot per item vs one slot per edge).
///
/// # Panics
///
/// Panics if the lengths overrun the slice.
pub fn split_lengths<'a, T>(mut slice: &'a mut [T], lens: &[usize]) -> Vec<&'a mut [T]> {
    let mut parts = Vec::with_capacity(lens.len());
    for &len in lens {
        let (head, rest) = slice.split_at_mut(len);
        parts.push(head);
        slice = rest;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_lengths_partitions_disjointly() {
        let mut data: Vec<u32> = (0..10).collect();
        let parts = split_lengths(&mut data, &[3, 0, 4, 3]);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], &[0, 1, 2]);
        assert!(parts[1].is_empty());
        assert_eq!(parts[2], &[3, 4, 5, 6]);
        assert_eq!(parts[3], &[7, 8, 9]);
    }

    #[test]
    fn par_map_matches_sequential_for_all_thread_counts() {
        let items: Vec<u64> = (0..103).collect();
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x * 3 + i as u64)
            .collect();
        for threads in [1, 2, 3, 7, 16, 200] {
            let got = par_map(&items, threads, |i, x| x * 3 + i as u64);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |_, x| *x).is_empty());
        assert_eq!(par_map(&[42u32], 8, |i, x| *x + i as u32), vec![42]);
    }

    #[test]
    fn chunk_ranges_partition_the_interval() {
        for total in [0u64, 1, 7, 100, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(total, parts);
                let mut expect = 0u64;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    assert!(r.end > r.start);
                    expect = r.end;
                }
                assert_eq!(expect, total);
            }
        }
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
