//! Differential tests: the data-oriented engine is bit-identical to the
//! retained reference implementation (`strat_bittorrent::reference`).
//!
//! * serial semantics — [`Swarm::round`] vs [`RefSwarm::round`], shared
//!   ChaCha stream, compared round by round;
//! * indexed semantics — [`Swarm::run_rounds_parallel`] (every thread
//!   count) vs the serial oracle [`RefSwarm::round_indexed`];
//! * free-rider regression — deviant-behavior accounting survives the
//!   engine rewrite unchanged.
//!
//! "Bit-identical" is literal: `f64` totals, piece sets, unchoke sets and
//! availability are compared with exact equality.

use strat_bittorrent::reference::RefSwarm;
use strat_bittorrent::{PeerBehavior, Swarm, SwarmConfig};

/// Everything externally observable about one peer.
#[derive(Debug, PartialEq, Clone)]
struct PeerState {
    total_up: f64,
    total_down: f64,
    tft_up: f64,
    tft_down: f64,
    completed_round: Option<u64>,
    piece_count: usize,
    pieces: Vec<usize>,
    tft_unchoked: Vec<usize>,
    optimistic: Option<usize>,
}

fn engine_state(swarm: &Swarm) -> (Vec<PeerState>, Vec<u32>) {
    let states = (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            PeerState {
                total_up: peer.total_uploaded(),
                total_down: peer.total_downloaded(),
                tft_up: peer.tft_uploaded(),
                tft_down: peer.tft_downloaded(),
                completed_round: peer.completed_round(),
                piece_count: peer.pieces().count(),
                pieces: (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect(),
                tft_unchoked: swarm.tft_unchoked(p),
                optimistic: swarm.optimistic_unchoked(p),
            }
        })
        .collect();
    (states, swarm.availability().to_vec())
}

fn reference_state(swarm: &RefSwarm) -> (Vec<PeerState>, Vec<u32>) {
    let states = (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            PeerState {
                total_up: peer.total_uploaded(),
                total_down: peer.total_downloaded(),
                tft_up: peer.tft_uploaded(),
                tft_down: peer.tft_downloaded(),
                completed_round: peer.completed_round(),
                piece_count: peer.pieces().count(),
                pieces: (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect(),
                tft_unchoked: swarm.tft_unchoked(p),
                optimistic: swarm.optimistic_unchoked(p),
            }
        })
        .collect();
    (states, swarm.availability().to_vec())
}

/// A matrix of structurally distinct configurations: fluid and piece
/// modes, degenerate slot counts, deviant behaviors, completion shutdown.
fn config_matrix() -> Vec<(SwarmConfig, Vec<f64>, Vec<PeerBehavior>, &'static str)> {
    let mut cases = Vec::new();

    let base = |leechers: usize, seeds: usize, seed: u64| {
        let mut b = SwarmConfig::builder();
        b.leechers(leechers)
            .seeds(seeds)
            .piece_count(48)
            .piece_size_kbit(250.0)
            .mean_neighbors(9.0)
            .seed(seed);
        b
    };
    let ramp = |n: usize| -> Vec<f64> { (0..n).map(|i| 120.0 + 35.0 * i as f64).collect() };
    let compliant = |n: usize| vec![PeerBehavior::Compliant; n];

    // Piece mode, defaults.
    cases.push((base(22, 2, 101).build(), ramp(24), compliant(24), "pieces"));
    // Fluid mode.
    cases.push((
        base(20, 2, 102).fluid_content(true).build(),
        ramp(22),
        compliant(22),
        "fluid",
    ));
    // High initial completion: completions happen mid-horizon.
    cases.push((
        base(16, 1, 103)
            .initial_completion(0.8)
            .piece_size_kbit(80.0)
            .build(),
        ramp(17),
        compliant(17),
        "fast-completion",
    ));
    // Completed leechers stop uploading (exercises the live mid-round
    // upload check).
    cases.push((
        base(14, 1, 104)
            .initial_completion(0.85)
            .piece_size_kbit(60.0)
            .seed_after_completion(false)
            .build(),
        ramp(15),
        compliant(15),
        "completion-shutdown",
    ));
    // Degenerate slot counts.
    cases.push((
        base(18, 1, 105).tft_slots(1).optimistic_slots(0).build(),
        ramp(19),
        compliant(19),
        "no-optimistic",
    ));
    cases.push((
        base(18, 1, 106).tft_slots(0).optimistic_slots(1).build(),
        ramp(19),
        compliant(19),
        "optimistic-only",
    ));
    // Deviant behaviors in both content modes.
    let mut deviant = compliant(21);
    deviant[0] = PeerBehavior::Altruistic;
    deviant[17] = PeerBehavior::FreeRider;
    deviant[18] = PeerBehavior::FreeRider;
    cases.push((
        base(19, 2, 107).build(),
        ramp(21),
        deviant.clone(),
        "deviant-pieces",
    ));
    cases.push((
        base(19, 2, 108).fluid_content(true).build(),
        ramp(21),
        deviant,
        "deviant-fluid",
    ));
    cases
}

#[test]
fn serial_round_bit_identical_to_reference() {
    for (config, uploads, behaviors, label) in config_matrix() {
        let mut engine = Swarm::with_behaviors(config.clone(), &uploads, &behaviors);
        let mut reference = RefSwarm::with_behaviors(config, &uploads, &behaviors);
        assert_eq!(
            engine_state(&engine),
            reference_state(&reference),
            "construction diverged: {label}"
        );
        for round in 0..40 {
            engine.round();
            reference.round();
            assert_eq!(
                engine_state(&engine),
                reference_state(&reference),
                "round {round} diverged: {label}"
            );
        }
    }
}

#[test]
fn parallel_rounds_bit_identical_to_indexed_reference() {
    for (config, uploads, behaviors, label) in config_matrix() {
        let mut reference = RefSwarm::with_behaviors(config.clone(), &uploads, &behaviors);
        for _ in 0..25 {
            reference.round_indexed();
        }
        let want = reference_state(&reference);
        for threads in [1usize, 2, 3, 8] {
            let mut engine = Swarm::with_behaviors(config.clone(), &uploads, &behaviors);
            engine.run_rounds_parallel(25, threads);
            assert_eq!(
                engine_state(&engine),
                want,
                "threads {threads} diverged: {label}"
            );
        }
    }
}

#[test]
fn mixing_serial_and_parallel_rounds_stays_in_lockstep() {
    // Interleaving the two semantics must match the reference doing the
    // same interleave: the engines share all persistent state.
    let (config, uploads, behaviors, _) = config_matrix().swap_remove(0);
    let mut engine = Swarm::with_behaviors(config.clone(), &uploads, &behaviors);
    let mut reference = RefSwarm::with_behaviors(config, &uploads, &behaviors);
    for _ in 0..6 {
        engine.round();
        reference.round();
    }
    engine.run_rounds_parallel(6, 3);
    for _ in 0..6 {
        reference.round_indexed();
    }
    engine.run_rounds(6);
    reference.run_rounds(6);
    assert_eq!(engine_state(&engine), reference_state(&reference));
}

/// Regression for the per-round completion/behavior flag cache: deviant
/// accounting is exactly what the reference engine produces, and the
/// deviant population counts stay stable over the horizon.
#[test]
fn free_rider_counts_stable_across_refactor() {
    let mut config = SwarmConfig::builder()
        .leechers(30)
        .seeds(2)
        .mean_neighbors(12.0)
        .seed(2024)
        .build();
    config.fluid_content = true;
    let uploads: Vec<f64> = (0..32).map(|i| 200.0 + 55.0 * i as f64).collect();
    let mut behaviors = vec![PeerBehavior::Compliant; 32];
    for behavior in behaviors.iter_mut().take(30).skip(25) {
        *behavior = PeerBehavior::FreeRider;
    }
    let mut engine = Swarm::with_behaviors(config.clone(), &uploads, &behaviors);
    let mut reference = RefSwarm::with_behaviors(config, &uploads, &behaviors);
    for _ in 0..50 {
        engine.round();
        reference.round();
        let engine_riders = (0..32)
            .filter(|&p| {
                engine.peer(p).total_uploaded() == 0.0 && engine.tft_unchoked(p).is_empty()
            })
            .filter(|&p| engine.peer(p).behavior() == PeerBehavior::FreeRider)
            .count();
        assert_eq!(engine_riders, 5, "free-rider population drifted");
    }
    assert_eq!(engine_state(&engine), reference_state(&reference));
    for p in 25..30 {
        assert_eq!(engine.peer(p).total_uploaded(), 0.0);
        assert!(engine.peer(p).total_downloaded() > 0.0);
    }
}

/// Piece-storage and pick-mask variants: the word-parallel kernels must
/// stay bit-identical to the reference across every storage regime —
/// inline words (≤256 pieces), heap words (257..=1024), and the
/// `batch_picks` mask fallback beyond 1024 — at every thread count, so
/// the sharded availability merge is exercised in each regime too.
#[test]
fn parallel_matches_indexed_across_piece_storage_variants() {
    for (pieces, rounds, label) in [
        (80usize, 20u64, "inline"),
        (300, 14, "heap"),
        (1100, 8, "mask-fallback"),
    ] {
        let n = 26;
        let config = SwarmConfig::builder()
            .leechers(n - 2)
            .seeds(2)
            .piece_count(pieces)
            .piece_size_kbit(40.0)
            .initial_completion(0.3)
            .mean_neighbors(10.0)
            .seed(0x9e37 + pieces as u64)
            .build();
        let uploads: Vec<f64> = (0..n).map(|i| 150.0 + 47.0 * i as f64).collect();
        let mut reference = RefSwarm::new(config.clone(), &uploads);
        for _ in 0..rounds {
            reference.round_indexed();
        }
        let want = reference_state(&reference);
        for threads in [1usize, 2, 3, 8] {
            let mut engine = Swarm::new(config.clone(), &uploads);
            engine.run_rounds_parallel(rounds, threads);
            assert_eq!(
                engine_state(&engine),
                want,
                "threads {threads} diverged: {label} ({pieces} pieces)"
            );
        }
    }
}
