//! Property tests for the continuous-time event core.
//!
//! * **Synchronous limit** — with homogeneous timing
//!   ([`EventTiming::synchronous_limit`]) the event engine must reproduce
//!   the indexed-stream round engine exactly: per-peer transfer totals
//!   and piece holdings bit-for-bit, and a completion record stream whose
//!   order and per-round counts match the round engine's
//!   `completed_round` stamps, for arbitrary swarm geometry.
//! * **Tie-heavy determinism** — when the rechoke interval, transfer
//!   quantum and announce interval are commensurate (so large batches of
//!   events share exact timestamps) the queue's total order
//!   `(time, kind, a, b, seq)` must still yield one reproducible
//!   history: two identically-seeded engines agree event for event.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, SessionConfig};
use strat_bittorrent::{EventEngine, EventTiming, Swarm, SwarmConfig};

fn build(leechers: usize, seeds: usize, pieces: usize, completion: f64, seed: u64) -> Swarm {
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(pieces)
        .piece_size_kbit(160.0)
        .initial_completion(completion)
        .mean_neighbors(8.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..leechers + seeds)
        .map(|i| 90.0 + 41.0 * i as f64)
        .collect();
    Swarm::new(config, &uploads)
}

/// One peer's exact observable state: transfer-total bit patterns,
/// completion stamp, and held piece indices.
type PeerBits = (u64, u64, u64, u64, Option<u64>, Vec<usize>);

/// Exact observable state of a (possibly churned) swarm plus engine
/// accounting, for bitwise run-to-run comparison.
fn engine_fingerprint(engine: &EventEngine) -> Vec<PeerBits> {
    let swarm = engine.swarm();
    (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            (
                peer.total_uploaded().to_bits(),
                peer.total_downloaded().to_bits(),
                peer.tft_uploaded().to_bits(),
                peer.tft_downloaded().to_bits(),
                peer.completed_round(),
                (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Homogeneous timing reproduces the indexed round engine exactly,
    /// and the completion record stream is consistent with it: ordered
    /// by round, one record per peer that completes during the run,
    /// stamped with the same round the oracle stamps.
    #[test]
    fn sync_limit_matches_round_indexed(
        leechers in 6usize..36,
        seeds in 1usize..3,
        pieces in 8usize..48,
        completion in 0.0f64..0.8,
        seed in any::<u64>(),
        rounds in 2u64..16,
    ) {
        let init_complete: Vec<bool> = {
            let fresh = build(leechers, seeds, pieces, completion, seed);
            (0..fresh.peer_count())
                .map(|p| fresh.peer(p).pieces().count() == pieces)
                .collect()
        };
        let mut oracle = build(leechers, seeds, pieces, completion, seed);
        let rs = oracle.config().round_seconds;
        let mut engine = EventEngine::new(
            build(leechers, seeds, pieces, completion, seed),
            EventTiming::synchronous_limit(rs),
            None,
        );
        oracle.run_rounds_parallel(rounds, 3);
        engine.run_sync_rounds(rounds);

        let ev = engine.swarm();
        for p in 0..oracle.peer_count() {
            let (a, b) = (oracle.peer(p), ev.peer(p));
            prop_assert_eq!(
                a.completed_round(), b.completed_round(),
                "completion stamp diverged at peer {}", p
            );
            prop_assert_eq!(
                a.total_downloaded().to_bits(), b.total_downloaded().to_bits(),
                "download total diverged at peer {}", p
            );
            prop_assert_eq!(
                a.total_uploaded().to_bits(), b.total_uploaded().to_bits(),
                "upload total diverged at peer {}", p
            );
            for i in 0..pieces {
                prop_assert_eq!(a.pieces().contains(i), b.pieces().contains(i));
            }
        }
        prop_assert_eq!(oracle.availability(), ev.availability());

        // Completion records: one per peer that completed during the
        // run, in non-decreasing round/time order, each stamped with
        // the oracle's round.
        let mut recorded: Vec<u32> = Vec::new();
        let mut prev = (0.0f64, 0u64);
        for rec in engine.completions() {
            prop_assert!(
                (rec.completion_time, rec.completion_round) >= prev,
                "records out of order: {:?} after {:?}",
                (rec.completion_time, rec.completion_round), prev
            );
            prev = (rec.completion_time, rec.completion_round);
            prop_assert_eq!(rec.arrival_time, 0.0, "closed swarm: everyone arrives at t=0");
            prop_assert_eq!(
                oracle.peer(rec.slot as usize).completed_round(),
                Some(rec.completion_round),
                "record round disagrees with oracle stamp for slot {}", rec.slot
            );
            recorded.push(rec.slot);
        }
        let mut expected: Vec<u32> = (0..oracle.peer_count())
            .filter(|&p| !init_complete[p] && oracle.peer(p).completed_round().is_some())
            .map(|p| p as u32)
            .collect();
        recorded.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(recorded, expected, "record slots != oracle completions");
    }

    /// Commensurate intervals put rechokes, transfer quanta, announces
    /// and churn on shared exact timestamps; the queue's deterministic
    /// tie-break must make the whole history reproducible anyway.
    #[test]
    fn tie_heavy_timestamps_are_deterministic(
        leechers in 8usize..28,
        seeds in 1usize..3,
        pieces in 12usize..40,
        completion in 0.1f64..0.6,
        seed in any::<u64>(),
        quantum_idx in 0usize..4,
        announce_mult in 1u32..4,
        mult_idx in 0usize..4,
        rate in 0.3f64..1.5,
        batched in any::<bool>(),
    ) {
        // Divisors of the rechoke interval whose quotients are exact in
        // binary, so quantum multiples land exactly on rechoke ticks.
        let quantum_div = [1u32, 2, 4, 5][quantum_idx];
        let multipliers: Vec<f64> = match mult_idx {
            0 => vec![1.0],
            1 => vec![1.0, 1.0],
            2 => vec![0.5, 1.0, 2.0],
            _ => vec![1.0, 2.0],
        };
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: Some(10.0 / f64::from(quantum_div)),
            announce_interval: Some(10.0 * f64::from(announce_mult)),
            speed_multipliers: multipliers,
        };
        let churn = SessionConfig {
            arrival: ArrivalProcess::Poisson { rate },
            departure: DepartureRules {
                leave_on_completion: 0.3,
                seed_leave_prob: 0.1,
                seed_exodus_round: None,
                abort_prob: 0.02,
            },
            arrival_upload_kbps: 256.0,
            arrival_completion: 0.25,
            target_degree: 7,
            session_seed: seed ^ 0xaa,
            batched_wiring: batched,
            peer_list_cap: None,
            compact_threshold: None,
        };
        let run = || {
            let mut engine = EventEngine::new(
                build(leechers, seeds, pieces, completion, seed),
                timing.clone(),
                Some(churn.clone()),
            );
            // Chunk boundaries on rechoke ticks: the horizon itself is
            // tie-heavy, exercising the boundary flush three times.
            for _ in 0..3 {
                engine.run_for(110.0);
            }
            engine.swarm().check_invariants();
            (
                *engine.stats(),
                engine.completions().to_vec(),
                engine.present_count(),
                engine.clock_seconds().to_bits(),
                engine_fingerprint(&engine),
            )
        };
        let (s1, c1, n1, t1, f1) = run();
        let (s2, c2, n2, t2, f2) = run();
        prop_assert_eq!(s1, s2, "event counters diverged");
        prop_assert_eq!(n1, n2, "present population diverged");
        prop_assert_eq!(t1, t2, "clock diverged");
        prop_assert_eq!(c1.len(), c2.len(), "completion counts diverged");
        for (a, b) in c1.iter().zip(&c2) {
            prop_assert_eq!(a, b, "completion records diverged");
        }
        prop_assert_eq!(f1, f2, "swarm state diverged");
        // Ties genuinely occur: with quantum = interval / k there are at
        // least as many transfer dispatches as rechokes.
        prop_assert!(s1.transfers + s1.rechokes > 0, "degenerate run");
    }
}
