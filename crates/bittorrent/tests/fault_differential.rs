//! Differential and property tests for the fault plane.
//!
//! * **Zero-fault bit-identity** — a [`Session`] carrying
//!   [`FaultPlan::none`] must be bit-identical to one built without a
//!   plan, under real churn, serially and at 1/2/8 threads (the PR 5
//!   golden-freeze guarantee: inert plans consume zero randomness).
//! * **Crash-vs-graceful** — at the arena level a crash performs exactly
//!   the depart surgery: join → crash round-trips restore overlay,
//!   availability and population exactly, and a mid-transfer crash
//!   leaves no dangling credit/rate slots (checked by the slack-slot
//!   invariants of [`Swarm::validate_consistency`]).
//! * **Loss determinism** — transfer-loss schedules derive from
//!   `(fault_seed, round, recipient edge slot)`, so faulted sessions are
//!   bit-identical at any thread count and conserve
//!   `uploaded = downloaded + lost`.
//! * **Outage/backoff and partition/heal** — deferred announces all
//!   admit after the outage; partitions cut the overlay into two
//!   components and repair re-bridges them after the heal.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use strat_bittorrent::overlay;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use strat_bittorrent::{FaultPlan, FaultWindow, PeerBehavior, PieceSet, Swarm, SwarmConfig};

/// Everything externally observable about one peer (exact equality).
type PeerState = (f64, f64, f64, f64, Option<u64>, Vec<usize>);

/// Everything externally observable about a swarm (exact equality).
fn full_state(swarm: &Swarm) -> (Vec<PeerState>, Vec<u32>) {
    let states = (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            (
                peer.total_uploaded(),
                peer.total_downloaded(),
                peer.tft_uploaded(),
                peer.tft_downloaded(),
                peer.completed_round(),
                (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    (states, swarm.availability().to_vec())
}

/// Canonical edge-set view of the overlay: sorted `(min, max)` pairs.
fn edge_set(swarm: &Swarm) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for p in 0..swarm.peer_count() {
        if !swarm.is_present(p) {
            continue;
        }
        for q in swarm.neighbors(p) {
            if p < q {
                edges.push((p, q));
            }
        }
    }
    edges.sort_unstable();
    edges
}

fn build_swarm(leechers: usize, seeds: usize, seed: u64) -> Swarm {
    let n = leechers + seeds;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(48)
        .piece_size_kbit(180.0)
        .initial_completion(0.35)
        .mean_neighbors(9.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..n).map(|i| 120.0 + 31.0 * i as f64).collect();
    Swarm::new(config, &uploads)
}

fn churn_config(seed: u64) -> SessionConfig {
    SessionConfig {
        arrival: ArrivalProcess::Poisson { rate: 1.5 },
        departure: DepartureRules {
            leave_on_completion: 0.4,
            seed_leave_prob: 0.25,
            abort_prob: 0.01,
            seed_exodus_round: None,
        },
        arrival_upload_kbps: 320.0,
        target_degree: 8,
        session_seed: seed ^ 0xc0de,
        ..SessionConfig::default()
    }
}

#[test]
fn zero_fault_plan_is_bit_identical_under_churn() {
    for seed in [3u64, 88] {
        let rounds = 16;
        let mut plain = Session::new(build_swarm(18, 2, seed), churn_config(seed));
        plain.run_rounds(rounds);
        let mut faulted = Session::with_faults(
            build_swarm(18, 2, seed),
            churn_config(seed),
            FaultPlan::none(),
        );
        faulted.run_rounds(rounds);
        assert_eq!(
            full_state(faulted.swarm()),
            full_state(plain.swarm()),
            "serial, seed {seed}"
        );
        assert_eq!(faulted.stats(), plain.stats(), "serial stats, seed {seed}");

        for threads in [1usize, 2, 8] {
            let mut plain = Session::new(build_swarm(18, 2, seed), churn_config(seed));
            plain.run_rounds_parallel(rounds, threads);
            let mut faulted = Session::with_faults(
                build_swarm(18, 2, seed),
                churn_config(seed),
                FaultPlan::none(),
            );
            faulted.run_rounds_parallel(rounds, threads);
            assert_eq!(
                full_state(faulted.swarm()),
                full_state(plain.swarm()),
                "threads {threads}, seed {seed}"
            );
        }
    }
}

#[test]
fn crash_and_graceful_depart_are_identical_arena_surgery() {
    let mut crashed = build_swarm(15, 2, 31);
    crashed.reserve_overlay_slack(4);
    crashed.run_rounds(6);
    let mut departed = crashed.clone();
    crashed.crash(4);
    departed.depart(4);
    assert_eq!(full_state(&crashed), full_state(&departed));
    assert_eq!(edge_set(&crashed), edge_set(&departed));
    crashed.validate_consistency();
}

#[test]
fn mid_transfer_crash_leaves_no_dangling_credit_or_rate() {
    // Large pieces: after a few rounds every live edge carries partial
    // credit and rate state — exactly what a crash must not leak.
    let config = SwarmConfig::builder()
        .leechers(14)
        .seeds(2)
        .piece_count(24)
        .piece_size_kbit(5000.0)
        .initial_completion(0.3)
        .mean_neighbors(6.0)
        .seed(77)
        .build();
    let mut swarm = Swarm::new(config, &[400.0; 16]);
    swarm.reserve_overlay_slack(4);
    swarm.run_rounds(5);
    for victim in [0usize, 3, 9] {
        swarm.crash(victim);
        // The slack-slot checks inside prove no stale credit/rate slot
        // survives anywhere in the arena.
        swarm.validate_consistency();
    }
    // The swarm stays simulable and consistent after more rounds.
    swarm.run_rounds(5);
    swarm.validate_consistency();
}

#[test]
fn faulted_sessions_are_thread_count_independent() {
    let plan = FaultPlan {
        crash_prob: 0.02,
        loss_prob: 0.15,
        outages: vec![FaultWindow {
            start: 2,
            rounds: 3,
        }],
        partitions: vec![FaultWindow {
            start: 6,
            rounds: 4,
        }],
        fault_seed: 99,
    };
    let run = |threads: usize| {
        let mut session =
            Session::with_faults(build_swarm(20, 2, 13), churn_config(13), plan.clone());
        session.run_rounds_parallel(18, threads);
        (
            full_state(session.swarm()),
            session.stats().clone(),
            session.swarm().lost_deliveries(),
            session.swarm().lost_kbit(),
        )
    };
    let baseline = run(1);
    assert!(baseline.2 > 0, "loss plan actually drops deliveries");
    assert!(baseline.1.crashes > 0, "crash plan actually crashes peers");
    for threads in [2usize, 8] {
        assert_eq!(run(threads), baseline, "threads {threads}");
    }
}

#[test]
fn transfer_loss_conserves_upload_as_download_plus_lost() {
    let plan = FaultPlan {
        loss_prob: 0.25,
        fault_seed: 5,
        ..FaultPlan::none()
    };
    // Closed population (inert churn) so cumulative totals survive:
    // reused slots would reset the per-peer counters.
    let mut session = Session::with_faults(build_swarm(18, 2, 55), SessionConfig::default(), plan);
    session.run_rounds(12);
    let swarm = session.swarm();
    let up: f64 = (0..swarm.peer_count())
        .map(|p| swarm.peer(p).total_uploaded())
        .sum();
    let down: f64 = (0..swarm.peer_count())
        .map(|p| swarm.peer(p).total_downloaded())
        .sum();
    let lost = swarm.lost_kbit();
    assert!(swarm.lost_deliveries() > 0);
    assert!(lost > 0.0);
    assert!(
        (up - down - lost).abs() < 1e-6 * up.max(1.0),
        "conservation: up {up} != down {down} + lost {lost}"
    );
}

#[test]
fn outage_defers_announces_and_backoff_admits_them_all() {
    let plan = FaultPlan {
        outages: vec![FaultWindow {
            start: 0,
            rounds: 4,
        }],
        fault_seed: 17,
        ..FaultPlan::none()
    };
    let config = SessionConfig {
        arrival: ArrivalProcess::Burst { round: 1, count: 6 },
        arrival_upload_kbps: 320.0,
        target_degree: 6,
        session_seed: 23,
        ..SessionConfig::default()
    };
    let mut session = Session::with_faults(build_swarm(12, 2, 23), config, plan);
    session.run_rounds(3);
    assert_eq!(
        session.stats().deferred_announces,
        6,
        "burst hit the outage"
    );
    assert_eq!(session.stats().arrivals, 0, "nobody admitted while down");
    assert!(session.pending_announces() > 0);
    session.run_rounds(60);
    assert_eq!(
        session.stats().arrivals,
        6,
        "every deferred announce admitted"
    );
    assert_eq!(session.pending_announces(), 0, "queue drained");
    assert!(
        session.stats().announce_retries >= 6,
        "admissions count as retries"
    );
    // Admitted peers got wired.
    let wired = (0..session.swarm().peer_count())
        .filter(|&p| session.swarm().is_present(p) && session.swarm().degree(p) > 0)
        .count();
    assert!(wired >= 14, "arrivals joined the overlay (wired = {wired})");
    session.swarm().check_invariants();
}

#[test]
fn partition_cuts_the_overlay_and_heals_to_full_connectivity() {
    let plan = FaultPlan {
        partitions: vec![FaultWindow {
            start: 3,
            rounds: 5,
        }],
        fault_seed: 41,
        ..FaultPlan::none()
    };
    let config = SessionConfig {
        target_degree: 8,
        session_seed: 7,
        ..SessionConfig::default()
    };
    // Inert churn, active faults: the partition machinery alone drives
    // membership-free overlay surgery.
    let mut session = Session::with_faults(build_swarm(20, 2, 19), config, plan);
    session.run_rounds(4); // rounds 0..=3 → the cut at round 3 happened
    let during = overlay::snapshot(session.swarm());
    assert!(during.components >= 2, "partition splits the overlay");
    // No cross-parity edge survives the cut (repair is half-restricted).
    for (p, q) in edge_set(session.swarm()) {
        assert!(
            !FaultPlan::cross_partition(p, q),
            "cross-partition edge {p}–{q} survived"
        );
    }
    session.swarm().check_invariants();

    // Window [3, 8) heals at round 8; give repair a few rounds.
    let mut recovery = None;
    for _ in 0..12 {
        session.run_rounds(1);
        if session.round_count() >= 8 && overlay::fully_connected(session.swarm()) {
            recovery = Some(session.round_count() - 8);
            break;
        }
    }
    let recovery = recovery.expect("overlay recovers after the heal");
    assert!(recovery <= 4, "recovery took {recovery} rounds");
    assert!(
        session.stats().repaired_edges > 0,
        "repair actually rewired"
    );
    session.swarm().check_invariants();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Join → crash round-trips restore overlay, availability and
    /// population exactly (the crash-vs-graceful contract at the arena
    /// level), with every invariant checked after each fault event.
    #[test]
    fn join_crash_roundtrip_restores_state(
        leechers in 6usize..20,
        seed in any::<u64>(),
        warmup in 0u64..5,
        joins in 1usize..6,
        density_seed in any::<u64>(),
    ) {
        let mut swarm = build_swarm(leechers, 2, seed);
        swarm.reserve_overlay_slack(6);
        swarm.run_rounds(warmup);
        let edges_before = edge_set(&swarm);
        let avail_before = swarm.availability().to_vec();
        let pop_before = swarm.population();

        let mut slots = Vec::new();
        for j in 0..joins {
            let mut pieces = PieceSet::new(swarm.config().piece_count);
            let density = (density_seed.rotate_left(j as u32 * 7) % 1000) as f64 / 1000.0;
            for i in 0..swarm.config().piece_count {
                if (i as f64 * 0.618).fract() < density {
                    pieces.insert(i);
                }
            }
            let slot = swarm.arrive(250.0 + j as f64, PeerBehavior::Compliant, pieces);
            for q in 0..swarm.peer_count().min(5 + j) {
                let _ = swarm.connect_peers(slot, q);
            }
            swarm.check_invariants();
            slots.push(slot);
        }
        for &slot in slots.iter().rev() {
            swarm.crash(slot);
            swarm.check_invariants();
        }
        swarm.validate_consistency();

        prop_assert_eq!(edge_set(&swarm), edges_before);
        prop_assert_eq!(swarm.availability(), &avail_before[..]);
        prop_assert_eq!(swarm.population(), pop_before);
    }

    /// Random fault plans over churned sessions keep every structural
    /// invariant intact, round after round, and the population ledger
    /// balances (crashes are departures too).
    #[test]
    fn faulted_churn_interleavings_preserve_invariants(
        leechers in 8usize..18,
        seed in any::<u64>(),
        rate in 0.5f64..3.0,
        crash in 0.0f64..0.12,
        loss in 0.0f64..0.4,
        outage_start in 0u64..6,
        outage_len in 1u64..5,
        partition_start in 0u64..8,
        partition_len in 1u64..5,
        rounds in 4u64..14,
        parallel in any::<bool>(),
    ) {
        let plan = FaultPlan {
            crash_prob: crash,
            loss_prob: loss,
            outages: vec![FaultWindow { start: outage_start, rounds: outage_len }],
            partitions: vec![FaultWindow { start: partition_start, rounds: partition_len }],
            fault_seed: seed ^ 0xfa17,
        };
        let mut session = Session::with_faults(
            build_swarm(leechers, 2, seed),
            SessionConfig {
                arrival: ArrivalProcess::Poisson { rate },
                departure: DepartureRules {
                    leave_on_completion: 0.5,
                    seed_leave_prob: 0.2,
                    abort_prob: 0.02,
                    seed_exodus_round: None,
                },
                arrival_upload_kbps: 320.0,
                target_degree: 7,
                session_seed: seed ^ 0xc0de,
                ..SessionConfig::default()
            },
            plan,
        );
        for _ in 0..rounds {
            if parallel {
                session.run_rounds_parallel(1, 3);
            } else {
                session.run_rounds(1);
            }
            // After every churn + fault event batch of the round.
            session.swarm().check_invariants();
        }
        session.swarm().validate_consistency();
        let stats = session.stats();
        prop_assert!(stats.crashes <= stats.departures);
        prop_assert_eq!(
            session.population().total() as i64,
            (leechers + 2) as i64 + stats.arrivals as i64 - stats.departures as i64
        );
        // Deferred announces either became retries still pending or
        // admissions; the queue never leaks.
        prop_assert!(session.pending_announces() as u64 <= stats.deferred_announces);
    }
}
