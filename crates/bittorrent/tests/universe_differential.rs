//! Differential and property tests for the multi-swarm universe layer.
//!
//! * **1-torrent bit-identity** — a [`Universe`] over a single session
//!   with no capacity classes must be bit-identical to the plain
//!   [`Session`] under full churn, in the serial semantics and in the
//!   indexed parallel semantics at 1, 2 and 8 threads. The universe's
//!   claim/sync/rebalance passes either consume only universe streams
//!   (unused at `T = 1`) or write back bitwise-identical capacities, so
//!   this pins that the sharing layer adds *nothing* to a lone swarm.
//! * **Capacity conservation** — at every rechoke boundary the sum of a
//!   member's per-torrent upload shares equals its capacity, for random
//!   torrent counts, membership widths and split policies (proptest).

use proptest::prelude::*;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use strat_bittorrent::universe::{
    derive_seed, CapacitySplit, MembershipModel, Universe, UniverseConfig,
};
use strat_bittorrent::{NullObserver, Swarm, SwarmConfig};

/// Everything externally observable about one peer (exact equality).
type PeerState = (bool, f64, f64, f64, f64, f64, Option<u64>, Vec<usize>);

/// Everything externally observable about a swarm (exact equality).
fn full_state(swarm: &Swarm) -> (Vec<PeerState>, Vec<u32>) {
    let states = (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            (
                swarm.is_present(p),
                peer.upload_kbps(),
                peer.total_uploaded(),
                peer.total_downloaded(),
                peer.tft_uploaded(),
                peer.tft_downloaded(),
                peer.completed_round(),
                (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    (states, swarm.availability().to_vec())
}

fn build_swarm(leechers: usize, seeds: usize, seed: u64) -> Swarm {
    let n = leechers + seeds;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(40)
        .piece_size_kbit(160.0)
        .initial_completion(0.3)
        .mean_neighbors(8.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..n).map(|i| 140.0 + 23.0 * i as f64).collect();
    Swarm::new(config, &uploads)
}

fn churn_config(seed: u64) -> SessionConfig {
    SessionConfig {
        arrival: ArrivalProcess::Poisson { rate: 2.0 },
        departure: DepartureRules {
            leave_on_completion: 0.45,
            seed_leave_prob: 0.15,
            abort_prob: 0.03,
            seed_exodus_round: None,
        },
        arrival_upload_kbps: 310.0,
        arrival_completion: 0.2,
        target_degree: 7,
        session_seed: seed ^ 0xd1ff,
        ..SessionConfig::default()
    }
}

/// A 1-torrent universe with no capacity classes: the claim pass adopts
/// arrivals without drawing, the sync pass only reads, and the rebalance
/// pass writes each member's session-given capacity back verbatim.
#[test]
fn one_torrent_universe_is_bit_identical_to_session_serial() {
    for seed in [4u64, 68, 913] {
        let rounds = 16;
        let mut session = Session::new(build_swarm(18, 2, seed), churn_config(seed));
        session.run_rounds(rounds);

        let mut universe = Universe::new(
            vec![Session::new(build_swarm(18, 2, seed), churn_config(seed))],
            UniverseConfig::default(),
        );
        universe.run_rounds(rounds, None);

        assert_eq!(
            full_state(universe.session(0).swarm()),
            full_state(session.swarm()),
            "seed {seed}"
        );
        assert_eq!(
            universe.session(0).stats().arrivals,
            session.stats().arrivals,
            "seed {seed}"
        );
        assert_eq!(
            universe.session(0).stats().departures,
            session.stats().departures,
            "seed {seed}"
        );
        assert_eq!(
            universe.session(0).stats().completions,
            session.stats().completions,
            "seed {seed}"
        );
        assert!(session.stats().arrivals > 0, "seed {seed}: inert run");
        assert!(session.stats().departures > 0, "seed {seed}: inert run");
        universe.session(0).swarm().validate_consistency();
    }
}

/// The same bit-identity through the indexed parallel engine at 1, 2 and
/// 8 workers. `Fixed {{ extra }}` is included: at `T = 1` the extra count
/// caps to zero, so the membership model must be inert too.
#[test]
fn one_torrent_universe_is_bit_identical_to_session_parallel() {
    for threads in [1usize, 2, 8] {
        let rounds = 13;
        let mut session = Session::new(build_swarm(20, 2, 55), churn_config(55));
        session.run_rounds_parallel(rounds, threads);

        let mut universe = Universe::new(
            vec![Session::new(build_swarm(20, 2, 55), churn_config(55))],
            UniverseConfig {
                membership: MembershipModel::Fixed { extra: 3 },
                split: CapacitySplit::DemandWeighted,
                ..UniverseConfig::default()
            },
        );
        universe.run_rounds(rounds, Some(threads));

        assert_eq!(
            full_state(universe.session(0).swarm()),
            full_state(session.swarm()),
            "threads {threads}"
        );
        assert_eq!(
            universe.session(0).stats().departures,
            session.stats().departures,
            "threads {threads}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At every rechoke boundary, the sum of a member's per-torrent
    /// upload shares equals its capacity (conservation), every share is
    /// positive, and the swarms stay structurally sound.
    #[test]
    fn capacity_is_conserved_at_every_rechoke(
        torrents in 2usize..5,
        extra in 1usize..4,
        leechers in 6usize..14,
        rate in 0.5f64..2.5,
        seed in any::<u64>(),
        demand_weighted in any::<bool>(),
        classes in any::<bool>(),
        rounds in 4u64..12,
    ) {
        let sessions: Vec<Session> = (0..torrents as u64)
            .map(|t| {
                Session::new(
                    build_swarm(leechers, 2, derive_seed(seed, t)),
                    SessionConfig {
                        arrival: ArrivalProcess::Poisson { rate },
                        session_seed: derive_seed(seed ^ 0x5e55, t),
                        ..churn_config(seed)
                    },
                )
            })
            .collect();
        let mut universe = Universe::new(
            sessions,
            UniverseConfig {
                membership: MembershipModel::Fixed { extra },
                split: if demand_weighted {
                    CapacitySplit::DemandWeighted
                } else {
                    CapacitySplit::EqualShare
                },
                class_upload_kbps: if classes {
                    vec![150.0, 400.0, 950.0]
                } else {
                    Vec::new()
                },
                universe_seed: seed ^ 0x0a11,
                popularity: Vec::new(),
            },
        );
        let obs = vec![NullObserver; torrents];
        for round in 0..rounds {
            universe.step(None, &obs);
            for m in 0..universe.member_count() {
                if !universe.member_is_active(m) {
                    continue;
                }
                let capacity = universe.member_capacity(m);
                let mut total = 0.0;
                for (t, id) in universe.member_replicas(m) {
                    let slot = universe.session(t).resolve(id).expect(
                        "active replicas resolve between universe rounds",
                    );
                    let kbps = universe.session(t).swarm().peer(slot).upload_kbps();
                    prop_assert!(kbps > 0.0, "round {round} member {m}: share {kbps}");
                    total += kbps;
                }
                prop_assert!(
                    (total - capacity).abs() <= 1e-9 * capacity,
                    "round {round} member {m}: shares sum to {total}, capacity {capacity}"
                );
            }
        }
        prop_assert!(universe.stats().cross_joins > 0);
        for t in 0..torrents {
            universe.session(t).swarm().validate_consistency();
        }
    }
}
