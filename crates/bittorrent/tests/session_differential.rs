//! Differential and property tests for the open-membership session layer.
//!
//! * **Zero-churn bit-identity** — a [`Session`] whose arrival and
//!   departure processes are inert must be bit-identical to the closed
//!   engine: [`Swarm::run_rounds`] for the serial semantics and
//!   [`Swarm::run_rounds_parallel`] at 1, 2, 3 and 8 threads for the
//!   indexed semantics. The session consumes only its own
//!   `(seed, round, event)` streams, so this pins that the membership
//!   layer adds *nothing* to the closed rounds.
//! * **Join → immediate leave round-trips** — admitting peers, wiring
//!   them, and departing them again restores the overlay edge sets and
//!   piece availability exactly, with every structural invariant intact
//!   (proptests over random swarms and churn interleavings).

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use strat_bittorrent::{PeerBehavior, PieceSet, Swarm, SwarmConfig};

/// Everything externally observable about one peer (exact equality).
type PeerState = (f64, f64, f64, f64, Option<u64>, Vec<usize>);

/// Everything externally observable about a swarm (exact equality).
fn full_state(swarm: &Swarm) -> (Vec<PeerState>, Vec<u32>) {
    let states = (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            (
                peer.total_uploaded(),
                peer.total_downloaded(),
                peer.tft_uploaded(),
                peer.tft_downloaded(),
                peer.completed_round(),
                (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    (states, swarm.availability().to_vec())
}

fn build_swarm(leechers: usize, seeds: usize, seed: u64) -> Swarm {
    let n = leechers + seeds;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(48)
        .piece_size_kbit(180.0)
        .initial_completion(0.35)
        .mean_neighbors(9.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..n).map(|i| 120.0 + 31.0 * i as f64).collect();
    Swarm::new(config, &uploads)
}

#[test]
fn zero_churn_session_matches_serial_engine() {
    for seed in [5u64, 77, 901] {
        let rounds = 18;
        let mut closed = build_swarm(21, 2, seed);
        closed.run_rounds(rounds);

        let mut session = Session::new(build_swarm(21, 2, seed), SessionConfig::default());
        session.run_rounds(rounds);

        assert_eq!(
            full_state(session.swarm()),
            full_state(&closed),
            "seed {seed}"
        );
        assert_eq!(session.stats().arrivals, 0);
        assert_eq!(session.stats().departures, 0);
        // Completion recording is observational only.
        assert_eq!(
            session.stats().completions as usize,
            closed.completed(),
            "seed {seed}"
        );
    }
}

#[test]
fn zero_churn_session_matches_parallel_engine_at_every_thread_count() {
    let rounds = 15;
    for threads in [1usize, 2, 3, 8] {
        let mut closed = build_swarm(23, 2, 42);
        closed.run_rounds_parallel(rounds, threads);

        let mut session = Session::new(build_swarm(23, 2, 42), SessionConfig::default());
        session.run_rounds_parallel(rounds, threads);

        assert_eq!(
            full_state(session.swarm()),
            full_state(&closed),
            "threads {threads}"
        );
    }
}

#[test]
fn zero_churn_parallel_session_matches_serial_indexed_oracle() {
    // The session's parallel path steps one round per call; the closed
    // engine batches. Both must agree with each other and across thread
    // counts (the strat-par contract, through the session layer).
    let baseline = {
        let mut session = Session::new(build_swarm(19, 2, 7), SessionConfig::default());
        session.run_rounds_parallel(12, 1);
        full_state(session.swarm())
    };
    for threads in [2usize, 3, 8] {
        let mut session = Session::new(build_swarm(19, 2, 7), SessionConfig::default());
        session.run_rounds_parallel(12, threads);
        assert_eq!(full_state(session.swarm()), baseline, "threads {threads}");
    }
}

/// Builds a swarm whose pieces can never convert inside the test horizon
/// (absurd piece size): transfer credit accrues but piece sets stay
/// frozen at their admission draws, isolating the membership layer's
/// randomness from the transfer dynamics.
fn build_frozen_swarm(leechers: usize, seeds: usize, seed: u64) -> Swarm {
    let n = leechers + seeds;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(48)
        .piece_size_kbit(1.0e9)
        .initial_completion(0.35)
        .mean_neighbors(9.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..n).map(|i| 120.0 + 31.0 * i as f64).collect();
    Swarm::new(config, &uploads)
}

/// Batched wiring only re-routes the tracker's edge draws (through the
/// dedicated `wire_rng` domain separator): with piece conversion frozen,
/// a batched session and the reference session admit bit-identical
/// cohorts — same slots, same piece draws, same availability, same
/// arrival/departure history — for any interleaving of churn.
#[test]
fn batched_wiring_admits_bit_identical_cohorts() {
    for seed in [3u64, 58, 1044] {
        let config = SessionConfig {
            arrival: ArrivalProcess::Poisson { rate: 2.5 },
            departure: DepartureRules {
                leave_on_completion: 0.0,
                seed_leave_prob: 0.12,
                seed_exodus_round: None,
                abort_prob: 0.04,
            },
            arrival_upload_kbps: 300.0,
            arrival_completion: 0.3,
            target_degree: 7,
            session_seed: seed ^ 0xbeef,
            batched_wiring: false,
            peer_list_cap: None,
            compact_threshold: None,
        };
        let mut reference = Session::new(build_frozen_swarm(18, 2, seed), config.clone());
        let mut batched = Session::new(
            build_frozen_swarm(18, 2, seed),
            SessionConfig {
                batched_wiring: true,
                ..config
            },
        );
        for round in 0..14u64 {
            reference.run_rounds(1);
            batched.run_rounds(1);
            let (a, b) = (reference.swarm(), batched.swarm());
            assert_eq!(a.peer_count(), b.peer_count(), "seed {seed} round {round}");
            for p in 0..a.peer_count() {
                assert_eq!(
                    a.is_present(p),
                    b.is_present(p),
                    "seed {seed} round {round} slot {p}"
                );
                if a.is_present(p) {
                    assert_eq!(
                        a.peer(p).pieces(),
                        b.peer(p).pieces(),
                        "seed {seed} round {round} slot {p}"
                    );
                }
            }
            assert_eq!(
                a.availability(),
                b.availability(),
                "seed {seed} round {round}"
            );
            assert_eq!(a.population(), b.population(), "seed {seed} round {round}");
            assert_eq!(
                reference.stats().arrivals,
                batched.stats().arrivals,
                "seed {seed} round {round}"
            );
            assert_eq!(
                reference.stats().departures,
                batched.stats().departures,
                "seed {seed} round {round}"
            );
        }
        assert!(reference.stats().arrivals > 0, "seed {seed}: inert run");
        assert!(reference.stats().departures > 0, "seed {seed}: inert run");
    }
}

/// The batched pass is deterministic and thread-count independent: the
/// per-round `wire_rng(seed, round, 0)` stream depends on nothing the
/// worker layout can reorder.
#[test]
fn batched_wiring_is_deterministic_across_thread_counts() {
    let config = SessionConfig {
        arrival: ArrivalProcess::Poisson { rate: 3.0 },
        departure: DepartureRules {
            leave_on_completion: 0.4,
            seed_leave_prob: 0.2,
            seed_exodus_round: None,
            abort_prob: 0.02,
        },
        arrival_upload_kbps: 300.0,
        arrival_completion: 0.1,
        target_degree: 8,
        session_seed: 0x5eed,
        batched_wiring: true,
        peer_list_cap: None,
        compact_threshold: None,
    };
    // Baseline is the indexed-stream (parallel) semantics at one worker;
    // the legacy sequential `run_rounds` draws a different (also valid)
    // trajectory and is covered by the cohort test above.
    let baseline = {
        let mut session = Session::new(build_swarm(20, 2, 9), config.clone());
        session.run_rounds_parallel(12, 1);
        full_state(session.swarm())
    };
    for threads in [2usize, 3, 8] {
        let mut session = Session::new(build_swarm(20, 2, 9), config.clone());
        session.run_rounds_parallel(12, threads);
        assert_eq!(full_state(session.swarm()), baseline, "threads {threads}");
        session.swarm().validate_consistency();
    }
}

/// One shuffled lap over the candidate list must fill every burst
/// arrival to the full target degree (the reference path only guarantees
/// this in expectation, through its attempt budget).
#[test]
fn batched_wiring_reaches_target_degree() {
    let initial = 32usize;
    let burst = 8u32;
    let target = 6usize;
    let mut session = Session::new(
        build_swarm(initial - 2, 2, 77),
        SessionConfig {
            arrival: ArrivalProcess::Burst {
                round: 0,
                count: burst,
            },
            departure: DepartureRules::none(),
            arrival_upload_kbps: 300.0,
            arrival_completion: 0.0,
            target_degree: target,
            session_seed: 1,
            batched_wiring: true,
            peer_list_cap: None,
            compact_threshold: None,
        },
    );
    session.run_rounds(1);
    assert_eq!(session.stats().arrivals, u64::from(burst));
    for slot in initial..initial + burst as usize {
        assert!(
            session.swarm().degree(slot) >= target,
            "arrival {slot} wired to {} < {target} neighbors",
            session.swarm().degree(slot)
        );
    }
    session.swarm().validate_consistency();
}

/// Canonical edge-set view of the overlay: sorted `(min, max)` pairs.
fn edge_set(swarm: &Swarm) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for p in 0..swarm.peer_count() {
        if !swarm.is_present(p) {
            continue;
        }
        for q in swarm.neighbors(p) {
            if p < q {
                edges.push((p, q));
            }
        }
    }
    edges.sort_unstable();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Join → immediate leave restores overlay and availability exactly.
    #[test]
    fn join_leave_roundtrip_restores_invariants(
        leechers in 6usize..24,
        seeds in 1usize..3,
        seed in any::<u64>(),
        warmup in 0u64..6,
        joins in 1usize..8,
        density_seed in any::<u64>(),
    ) {
        let mut swarm = build_swarm(leechers, seeds, seed);
        swarm.reserve_overlay_slack(6);
        swarm.run_rounds(warmup);
        let edges_before = edge_set(&swarm);
        let avail_before = swarm.availability().to_vec();
        let pop_before = swarm.population();

        // Admit `joins` peers (some with pieces), wire them, then depart
        // them all again.
        let mut slots = Vec::new();
        for j in 0..joins {
            let mut pieces = PieceSet::new(swarm.config().piece_count);
            let density =
                (density_seed.rotate_left(j as u32 * 7) % 1000) as f64 / 1000.0;
            for i in 0..swarm.config().piece_count {
                if (i as f64 * 0.618).fract() < density {
                    pieces.insert(i);
                }
            }
            let slot = swarm.arrive(250.0 + j as f64, PeerBehavior::Compliant, pieces);
            for q in 0..swarm.peer_count().min(5 + j) {
                let _ = swarm.connect_peers(slot, q);
            }
            swarm.check_invariants();
            slots.push(slot);
        }
        swarm.validate_consistency();
        for &slot in slots.iter().rev() {
            swarm.depart(slot);
            swarm.check_invariants();
        }
        swarm.validate_consistency();

        prop_assert_eq!(edge_set(&swarm), edges_before);
        prop_assert_eq!(swarm.availability(), &avail_before[..]);
        prop_assert_eq!(swarm.population(), pop_before);
    }

    /// Random churn interleavings keep every structural invariant intact
    /// and the engine simulable.
    #[test]
    fn churn_interleavings_preserve_invariants(
        leechers in 8usize..20,
        seed in any::<u64>(),
        rate in 0.5f64..4.0,
        seed_leave in 0.05f64..0.6,
        abort in 0.0f64..0.1,
        rounds in 3u64..14,
        parallel in any::<bool>(),
        batched in any::<bool>(),
    ) {
        let swarm = build_swarm(leechers, 2, seed);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Poisson { rate },
                departure: DepartureRules {
                    leave_on_completion: 0.5,
                    seed_leave_prob: seed_leave,
                    abort_prob: abort,
                    seed_exodus_round: Some(rounds / 2),
                },
                arrival_upload_kbps: 320.0,
                target_degree: 7,
                session_seed: seed ^ 0xc0de,
                batched_wiring: batched,
                ..SessionConfig::default()
            },
        );
        for _ in 0..rounds {
            if parallel {
                session.run_rounds_parallel(1, 3);
            } else {
                session.run_rounds(1);
            }
            // After every round's churn-event batch (debug builds only).
            session.swarm().check_invariants();
        }
        session.swarm().validate_consistency();
        // Conservation still holds over the present+departed bookkeeping:
        // every recorded completion has a consistent timeline.
        for &(arrived, completed) in &session.stats().completion_records {
            prop_assert!(completed >= arrived);
            prop_assert!(completed <= session.round_count());
        }
        prop_assert_eq!(
            session.population().total() as i64,
            (leechers + 2) as i64 + session.stats().arrivals as i64
                - session.stats().departures as i64
        );
    }
}
