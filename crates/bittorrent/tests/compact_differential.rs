//! Differential tests for arena compaction
//! ([`Swarm::compact`] / [`SessionConfig::compact_threshold`]).
//!
//! Compaction renames arena slots but preserves every peer's
//! **indexed-stream identity** (`Swarm::stream_of`), so under the
//! indexed round semantics a compacting session must stay bit-identical
//! to its never-compacting twin: same peers (keyed by stream), same
//! transfer totals, same pieces, same overlay (mapped through streams),
//! same stats — at any thread count. These suites pin that equivalence
//! over deterministic churn plans, crash-fault plans, and random
//! interleavings, plus the handle-invalidation contract.
//!
//! Scope of the equivalence (documented on `compact_threshold`): no
//! slot-parity partitions and no transfer loss (both draw randomness
//! keyed by slot/edge position, which compaction renames), and the
//! indexed semantics only (the serial engine draws from one shared
//! stream in slot order).

use proptest::prelude::*;
use strat_bittorrent::faults::FaultPlan;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use strat_bittorrent::{Swarm, SwarmConfig};

fn build_swarm(leechers: usize, seeds: usize, seed: u64) -> Swarm {
    let n = leechers + seeds;
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(48)
        .piece_size_kbit(180.0)
        .initial_completion(0.35)
        .mean_neighbors(9.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..n).map(|i| 120.0 + 31.0 * i as f64).collect();
    Swarm::new(config, &uploads)
}

fn churny_config(session_seed: u64, compact_threshold: Option<f64>) -> SessionConfig {
    SessionConfig {
        arrival: ArrivalProcess::Poisson { rate: 2.0 },
        departure: DepartureRules {
            leave_on_completion: 0.6,
            seed_leave_prob: 0.3,
            seed_exodus_round: None,
            abort_prob: 0.08,
        },
        arrival_upload_kbps: 320.0,
        arrival_completion: 0.1,
        target_degree: 7,
        session_seed,
        batched_wiring: false,
        peer_list_cap: None,
        compact_threshold,
    }
}

/// Everything observable about one present peer, keyed by its stream
/// identity — transfer totals, completion, pieces, and the overlay row
/// mapped through stream ids (compaction preserves edge order).
type StreamState = (u64, f64, f64, f64, f64, Option<u64>, Vec<usize>, Vec<u64>);

/// The swarm's observable state as a stream-keyed sorted list, the view
/// both twins must agree on exactly.
fn stream_state(swarm: &Swarm) -> Vec<StreamState> {
    let mut rows: Vec<StreamState> = (0..swarm.peer_count())
        .filter(|&p| swarm.is_present(p))
        .map(|p| {
            let peer = swarm.peer(p);
            (
                swarm.stream_of(p) as u64,
                peer.total_uploaded(),
                peer.total_downloaded(),
                peer.tft_uploaded(),
                peer.tft_downloaded(),
                peer.completed_round(),
                (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect::<Vec<_>>(),
                swarm
                    .neighbors(p)
                    .map(|q| swarm.stream_of(q) as u64)
                    .collect::<Vec<u64>>(),
            )
        })
        .collect();
    rows.sort_unstable_by_key(|r| r.0);
    rows
}

fn assert_twins_match(compacting: &Session, reference: &Session, ctx: &str) {
    assert_eq!(
        stream_state(compacting.swarm()),
        stream_state(reference.swarm()),
        "{ctx}: stream-keyed state"
    );
    assert_eq!(
        compacting.swarm().availability(),
        reference.swarm().availability(),
        "{ctx}: availability"
    );
    assert_eq!(
        compacting.swarm().population(),
        reference.swarm().population(),
        "{ctx}: population"
    );
    assert_eq!(compacting.stats(), reference.stats(), "{ctx}: stats");
    assert!(
        (compacting.swarm().lost_kbit() - reference.swarm().lost_kbit()).abs() == 0.0,
        "{ctx}: lost kbit"
    );
}

/// The tentpole equivalence: a compacting session's indexed rounds are
/// bit-identical to the never-compacting twin's, round by round, at
/// every thread count — while compactions actually fire.
#[test]
fn compacting_session_matches_uncompacted_twin() {
    for threads in [1usize, 2, 3, 8] {
        for seed in [11u64, 406, 9001] {
            let mut compacting = Session::new(
                build_swarm(22, 2, seed),
                churny_config(seed ^ 0xacc0, Some(0.2)),
            );
            let mut reference =
                Session::new(build_swarm(22, 2, seed), churny_config(seed ^ 0xacc0, None));
            for round in 0..30u64 {
                compacting.run_rounds_parallel(1, threads);
                reference.run_rounds_parallel(1, threads);
                compacting.swarm().check_invariants();
                assert_twins_match(
                    &compacting,
                    &reference,
                    &format!("threads {threads} seed {seed} round {round}"),
                );
            }
            compacting.swarm().validate_consistency();
            assert!(
                compacting.compactions() > 0,
                "threads {threads} seed {seed}: compaction never fired (vacuous twin test)"
            );
            assert_eq!(reference.compactions(), 0);
            assert!(
                compacting.swarm().peer_count() < reference.swarm().peer_count(),
                "threads {threads} seed {seed}: compaction did not shrink the arena"
            );
        }
    }
}

/// Crash faults with overlay repair stay twin-equal too: the crash pass
/// iterates in stream order and the repair pass draws positions into the
/// dense present list, both of which compaction preserves.
#[test]
fn compacting_session_matches_twin_under_crash_faults() {
    let plan = FaultPlan {
        crash_prob: 0.02,
        ..FaultPlan::none()
    };
    for seed in [7u64, 5150] {
        let mut compacting = Session::with_faults(
            build_swarm(24, 2, seed),
            churny_config(seed ^ 0xfa11, Some(0.25)),
            plan.clone(),
        );
        let mut reference = Session::with_faults(
            build_swarm(24, 2, seed),
            churny_config(seed ^ 0xfa11, None),
            plan.clone(),
        );
        for round in 0..26u64 {
            compacting.run_rounds_parallel(1, 3);
            reference.run_rounds_parallel(1, 3);
            compacting.swarm().check_invariants();
            assert_twins_match(
                &compacting,
                &reference,
                &format!("seed {seed} round {round}"),
            );
        }
        assert!(
            compacting.compactions() > 0,
            "seed {seed}: compaction never fired under the crash plan"
        );
        assert!(
            compacting.stats().crashes > 0,
            "seed {seed}: crash plan never crashed anyone"
        );
        compacting.swarm().validate_consistency();
    }
}

/// Compaction invalidates every outstanding handle: a pre-compaction
/// `SessionPeerId` must never resolve afterwards, even when its slot
/// number is occupied again.
#[test]
fn compaction_invalidates_outstanding_handles() {
    let mut session = Session::new(build_swarm(20, 2, 77), churny_config(0x1d5, Some(0.2)));
    session.run_rounds_parallel(2, 2);
    let handles: Vec<_> = (0..session.swarm().peer_count())
        .filter(|&p| session.swarm().is_present(p))
        .map(|p| session.id_of(p))
        .collect();
    let before = session.compactions();
    session.run_rounds_parallel(28, 2);
    assert!(
        session.compactions() > before,
        "compaction never fired; the invalidation check is vacuous"
    );
    for handle in handles {
        assert_eq!(
            session.resolve(handle),
            None,
            "stale pre-compaction handle resolved: {handle:?}"
        );
    }
    // Fresh handles issued after the compaction still work.
    let p = (0..session.swarm().peer_count())
        .find(|&p| session.swarm().is_present(p))
        .expect("somebody is present");
    assert_eq!(session.resolve(session.id_of(p)), Some(p));
}

/// A standalone `Swarm::compact` is the identity on a fully live arena
/// and drops exactly the dead slots otherwise, preserving invariants and
/// the loss total.
#[test]
fn standalone_compact_drops_dead_slots_and_preserves_invariants() {
    let mut swarm = build_swarm(18, 2, 31);
    swarm.reserve_overlay_slack(4);
    swarm.run_rounds_parallel(3, 2);
    // Identity case first.
    let map = swarm.compact();
    assert_eq!(map, (0..20u32).collect::<Vec<u32>>());
    assert_eq!(swarm.peer_count(), 20);
    for p in [2usize, 5, 11, 12, 19] {
        swarm.depart(p);
    }
    let lost_before = swarm.lost_kbit();
    let pop_before = swarm.population();
    let avail_before = swarm.availability().to_vec();
    let map = swarm.compact();
    assert_eq!(swarm.peer_count(), 15);
    assert_eq!(swarm.dead_slots(), 0);
    for (old, &new) in map.iter().enumerate() {
        if [2usize, 5, 11, 12, 19].contains(&old) {
            assert_eq!(new, u32::MAX, "dead slot {old} survived");
        } else {
            assert_eq!(
                swarm.stream_of(new as usize),
                old,
                "stream of old slot {old}"
            );
        }
    }
    assert_eq!(swarm.population(), pop_before);
    assert_eq!(swarm.availability(), &avail_before[..]);
    assert!((swarm.lost_kbit() - lost_before).abs() == 0.0);
    swarm.validate_consistency();
    // The compacted swarm still simulates.
    swarm.run_rounds_parallel(2, 3);
    swarm.validate_consistency();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random churn interleavings: compact-mid-churn is observationally
    /// the no-compact run, at every thread count, with invariants intact
    /// after every round.
    #[test]
    fn compact_mid_churn_matches_no_compact(
        leechers in 10usize..24,
        seed in any::<u64>(),
        rate in 0.5f64..3.5,
        leave in 0.2f64..0.9,
        abort in 0.0f64..0.12,
        threshold in 0.05f64..0.5,
        rounds in 6u64..22,
        threads in 1usize..9,
    ) {
        let mk = |threshold: Option<f64>| {
            Session::new(
                build_swarm(leechers, 2, seed),
                SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate },
                    departure: DepartureRules {
                        leave_on_completion: leave,
                        seed_leave_prob: 0.25,
                        seed_exodus_round: None,
                        abort_prob: abort,
                    },
                    arrival_upload_kbps: 300.0,
                    arrival_completion: 0.15,
                    target_degree: 7,
                    session_seed: seed ^ 0xd1ff,
                    batched_wiring: false,
                    peer_list_cap: None,
                    compact_threshold: threshold,
                },
            )
        };
        let mut compacting = mk(Some(threshold));
        let mut reference = mk(None);
        for _ in 0..rounds {
            compacting.run_rounds_parallel(1, threads);
            reference.run_rounds_parallel(1, threads);
            compacting.swarm().check_invariants();
            prop_assert_eq!(
                stream_state(compacting.swarm()),
                stream_state(reference.swarm())
            );
            prop_assert_eq!(compacting.stats(), reference.stats());
        }
        compacting.swarm().validate_consistency();
        prop_assert_eq!(
            compacting.swarm().availability(),
            reference.swarm().availability()
        );
    }
}
