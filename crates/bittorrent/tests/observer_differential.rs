//! Differential and conservation property tests for the [`RunObserver`]
//! trace layer.
//!
//! * **Bit-identity** — attaching a [`TraceObserver`] must not perturb
//!   any engine: observers are pure taps that consume no randomness and
//!   touch no simulation state. Observed and unobserved runs of the
//!   serial round engine, the parallel round engine (1/2/8 workers), the
//!   churned + faulted session, and the continuous-time event engine
//!   must produce bit-for-bit identical swarms, stats and completion
//!   records.
//! * **Trace conservation** — the event streams a [`TraceObserver`]
//!   records must replay the engines' own bookkeeping exactly: per-peer
//!   transfer/loss sums reproduce the upload/download/lost counters
//!   (bitwise, including under parallel rounds — within one round every
//!   share a sender issues is equal, so per-peer accumulation order
//!   cannot matter), arrival/departure streams reproduce the session's
//!   population delta, and the event engine's completion hooks replay
//!   its [`CompletionRecord`] stream.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
use strat_bittorrent::{
    EventEngine, EventTiming, FaultPlan, FaultWindow, Swarm, SwarmConfig, TraceObserver,
};

fn build(leechers: usize, seeds: usize, pieces: usize, completion: f64, seed: u64) -> Swarm {
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(pieces)
        .piece_size_kbit(170.0)
        .initial_completion(completion)
        .mean_neighbors(8.0)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..leechers + seeds)
        .map(|i| 100.0 + 37.0 * i as f64)
        .collect();
    Swarm::new(config, &uploads)
}

/// One peer's exact observable state, as bit patterns.
type PeerBits = (u64, u64, u64, u64, Option<u64>, Vec<usize>);

/// Exact observable state of a swarm for bitwise comparison.
fn swarm_bits(swarm: &Swarm) -> (Vec<PeerBits>, Vec<u32>, Vec<bool>) {
    let states = (0..swarm.peer_count())
        .map(|p| {
            let peer = swarm.peer(p);
            (
                peer.total_uploaded().to_bits(),
                peer.total_downloaded().to_bits(),
                peer.tft_uploaded().to_bits(),
                peer.tft_downloaded().to_bits(),
                peer.completed_round(),
                (0..swarm.config().piece_count)
                    .filter(|&i| peer.pieces().contains(i))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let present = (0..swarm.peer_count())
        .map(|p| swarm.is_present(p))
        .collect();
    (states, swarm.availability().to_vec(), present)
}

/// A crash/loss/outage/partition plan that actually fires inside a
/// short horizon.
fn active_faults(seed: u64) -> FaultPlan {
    FaultPlan {
        crash_prob: 0.03,
        loss_prob: 0.08,
        outages: vec![FaultWindow {
            start: 2,
            rounds: 3,
        }],
        partitions: vec![FaultWindow {
            start: 4,
            rounds: 3,
        }],
        fault_seed: seed ^ 0xfa17,
    }
}

fn churn_config(seed: u64) -> SessionConfig {
    SessionConfig {
        arrival: ArrivalProcess::Poisson { rate: 2.0 },
        departure: DepartureRules {
            leave_on_completion: 0.4,
            seed_leave_prob: 0.2,
            seed_exodus_round: Some(6),
            abort_prob: 0.05,
        },
        arrival_upload_kbps: 280.0,
        arrival_completion: 0.2,
        target_degree: 7,
        session_seed: seed ^ 0x0b5,
        batched_wiring: false,
        peer_list_cap: None,
        compact_threshold: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serial round engine: observed ≡ unobserved, bit for bit, with
    /// transfer loss armed so the loss path is covered too.
    #[test]
    fn observed_serial_rounds_are_bit_identical(
        leechers in 6usize..30,
        seeds in 1usize..3,
        pieces in 8usize..40,
        completion in 0.0f64..0.8,
        seed in any::<u64>(),
        rounds in 1u64..14,
        loss in any::<bool>(),
    ) {
        let mut plain = build(leechers, seeds, pieces, completion, seed);
        let mut observed = build(leechers, seeds, pieces, completion, seed);
        if loss {
            plain.set_transfer_loss(0.1, seed ^ 0x10);
            observed.set_transfer_loss(0.1, seed ^ 0x10);
        }
        plain.run_rounds(rounds);
        let obs = TraceObserver::new();
        observed.run_rounds_with(rounds, &obs);
        prop_assert_eq!(swarm_bits(&observed), swarm_bits(&plain));
        prop_assert_eq!(observed.lost_deliveries(), plain.lost_deliveries());
        prop_assert_eq!(obs.into_log().rounds, rounds);
    }

    /// Parallel round engine at 1, 2 and 8 workers: observed ≡
    /// unobserved, and both ≡ the serial observed run's thread-invariant
    /// state.
    #[test]
    fn observed_parallel_rounds_are_bit_identical(
        leechers in 8usize..28,
        seeds in 1usize..3,
        pieces in 8usize..32,
        completion in 0.1f64..0.7,
        seed in any::<u64>(),
        rounds in 1u64..10,
    ) {
        let baseline = {
            let mut swarm = build(leechers, seeds, pieces, completion, seed);
            swarm.run_rounds_parallel(rounds, 1);
            swarm_bits(&swarm)
        };
        for threads in [1usize, 2, 8] {
            let mut observed = build(leechers, seeds, pieces, completion, seed);
            let obs = TraceObserver::new();
            observed.run_rounds_parallel_with(rounds, threads, &obs);
            prop_assert_eq!(
                swarm_bits(&observed), baseline.clone(),
                "threads {}", threads
            );
            prop_assert_eq!(obs.into_log().rounds, rounds, "threads {}", threads);
        }
    }

    /// Churned + faulted session: observed ≡ unobserved on state and
    /// stats, serial and parallel.
    #[test]
    fn observed_session_is_bit_identical(
        leechers in 8usize..22,
        pieces in 8usize..28,
        completion in 0.1f64..0.6,
        seed in any::<u64>(),
        rounds in 2u64..12,
        parallel in any::<bool>(),
        faulted in any::<bool>(),
    ) {
        let make = || {
            let swarm = build(leechers, 2, pieces, completion, seed);
            let faults = if faulted { active_faults(seed) } else { FaultPlan::none() };
            Session::with_faults(swarm, churn_config(seed), faults)
        };
        let mut plain = make();
        let mut observed = make();
        let obs = TraceObserver::new();
        if parallel {
            plain.run_rounds_parallel(rounds, 3);
            observed.run_rounds_parallel_with(rounds, 3, &obs);
        } else {
            plain.run_rounds(rounds);
            observed.run_rounds_with(rounds, &obs);
        }
        prop_assert_eq!(swarm_bits(observed.swarm()), swarm_bits(plain.swarm()));
        prop_assert_eq!(observed.stats(), plain.stats());
    }

    /// Continuous-time event engine with churn: observed ≡ unobserved on
    /// state, counters, completion records and the clock.
    #[test]
    fn observed_event_engine_is_bit_identical(
        leechers in 8usize..24,
        pieces in 10usize..32,
        completion in 0.1f64..0.6,
        seed in any::<u64>(),
        rate in 0.3f64..1.5,
        chunks in 1usize..4,
    ) {
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: Some(2.5),
            announce_interval: Some(20.0),
            speed_multipliers: vec![0.5, 1.0, 2.0],
        };
        let churn = SessionConfig {
            arrival: ArrivalProcess::Poisson { rate },
            ..churn_config(seed)
        };
        let run = |obs: Option<&TraceObserver>| {
            let mut engine = EventEngine::new(
                build(leechers, 2, pieces, completion, seed),
                timing.clone(),
                Some(churn.clone()),
            );
            for _ in 0..chunks {
                match obs {
                    Some(o) => engine.run_for_with(75.0, o),
                    None => engine.run_for(75.0),
                }
            }
            (
                swarm_bits(engine.swarm()),
                *engine.stats(),
                engine.completions().to_vec(),
                engine.clock_seconds().to_bits(),
            )
        };
        let obs = TraceObserver::new();
        let plain = run(None);
        let observed = run(Some(&obs));
        prop_assert_eq!(observed.0, plain.0, "swarm state diverged");
        prop_assert_eq!(observed.1, plain.1, "event counters diverged");
        prop_assert_eq!(observed.2.len(), plain.2.len(), "completion counts diverged");
        for (a, b) in observed.2.iter().zip(&plain.2) {
            prop_assert_eq!(a, b, "completion records diverged");
        }
        prop_assert_eq!(observed.3, plain.3, "clock diverged");
    }

    /// Serial rounds: the trace's per-peer transfer/loss sums reproduce
    /// the engine's upload/download/lost counters bitwise.
    #[test]
    fn serial_trace_sums_replay_transfer_counters(
        leechers in 6usize..26,
        seeds in 1usize..3,
        pieces in 8usize..32,
        completion in 0.0f64..0.8,
        seed in any::<u64>(),
        rounds in 1u64..12,
        loss_prob in 0.0f64..0.3,
    ) {
        let mut swarm = build(leechers, seeds, pieces, completion, seed);
        swarm.set_transfer_loss(loss_prob, seed ^ 0x7055);
        let obs = TraceObserver::new();
        swarm.run_rounds_with(rounds, &obs);
        let log = obs.into_log();
        let n = swarm.peer_count();
        let (up, down, lost) = (log.uploaded_kbit(n), log.downloaded_kbit(n), log.lost_kbit(n));
        for p in 0..n {
            prop_assert_eq!(
                up[p].to_bits(), swarm.peer(p).total_uploaded().to_bits(),
                "upload sum diverged at peer {}", p
            );
            prop_assert_eq!(
                down[p].to_bits(), swarm.peer(p).total_downloaded().to_bits(),
                "download sum diverged at peer {}", p
            );
        }
        let lost_total: f64 = lost.iter().sum();
        prop_assert_eq!(lost_total.to_bits(), swarm.lost_kbit().to_bits());
        prop_assert_eq!(log.losses.len() as u64, swarm.lost_deliveries());
        // Every piece conversion the trace saw is held by its recipient.
        for &(_, q, piece) in &log.pieces {
            prop_assert!(swarm.peer(q).pieces().contains(piece));
        }
    }

    /// Parallel rounds: per-peer trace sums still replay the counters
    /// bitwise at every thread count — within one round every share a
    /// sender issues is equal, and each recipient's row is settled by
    /// exactly one worker, so accumulation order cannot matter.
    #[test]
    fn parallel_trace_sums_replay_transfer_counters(
        leechers in 8usize..24,
        pieces in 8usize..28,
        completion in 0.1f64..0.7,
        seed in any::<u64>(),
        rounds in 1u64..8,
        threads in 1usize..8,
        loss_prob in 0.0f64..0.25,
    ) {
        let mut swarm = build(leechers, 2, pieces, completion, seed);
        swarm.set_transfer_loss(loss_prob, seed ^ 0x7055);
        let obs = TraceObserver::new();
        swarm.run_rounds_parallel_with(rounds, threads, &obs);
        let log = obs.into_log();
        let n = swarm.peer_count();
        let (up, down, lost) = (log.uploaded_kbit(n), log.downloaded_kbit(n), log.lost_kbit(n));
        for p in 0..n {
            prop_assert_eq!(
                up[p].to_bits(), swarm.peer(p).total_uploaded().to_bits(),
                "upload sum diverged at peer {} ({} threads)", p, threads
            );
            prop_assert_eq!(
                down[p].to_bits(), swarm.peer(p).total_downloaded().to_bits(),
                "download sum diverged at peer {} ({} threads)", p, threads
            );
        }
        let lost_total: f64 = lost.iter().sum();
        prop_assert_eq!(lost_total.to_bits(), swarm.lost_kbit().to_bits());
        prop_assert_eq!(log.losses.len() as u64, swarm.lost_deliveries());
    }

    /// Session membership events: the arrival/departure/crash streams
    /// reproduce the session's counters and the population delta.
    #[test]
    fn session_trace_conserves_population(
        leechers in 8usize..22,
        pieces in 8usize..24,
        completion in 0.1f64..0.6,
        seed in any::<u64>(),
        rounds in 2u64..14,
        faulted in any::<bool>(),
    ) {
        let swarm = build(leechers, 2, pieces, completion, seed);
        let before = swarm.population().total() as i64;
        let faults = if faulted { active_faults(seed) } else { FaultPlan::none() };
        let mut session = Session::with_faults(swarm, churn_config(seed), faults);
        let obs = TraceObserver::new();
        session.run_rounds_with(rounds, &obs);
        let log = obs.into_log();
        let stats = session.stats();
        prop_assert_eq!(log.arrivals.len() as u64, stats.arrivals);
        prop_assert_eq!(
            (log.departures.len() + log.crashes.len()) as u64,
            stats.departures
        );
        prop_assert_eq!(log.crashes.len() as u64, stats.crashes);
        prop_assert_eq!(
            log.net_population_delta(),
            session.population().total() as i64 - before
        );
        // Event times are monotone non-decreasing round stamps.
        for stream in [&log.arrivals, &log.departures, &log.crashes] {
            for w in stream.windows(2) {
                prop_assert!(w[1].0 >= w[0].0);
            }
        }
    }

    /// Event engine: the completion hook stream replays the engine's
    /// [`CompletionRecord`]s — same slots, same order, same timestamps
    /// (hook times are in rechoke-interval units).
    #[test]
    fn event_trace_replays_completion_records(
        leechers in 8usize..26,
        pieces in 10usize..30,
        completion in 0.2f64..0.7,
        seed in any::<u64>(),
        rate in 0.3f64..1.5,
    ) {
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: Some(2.5),
            announce_interval: Some(20.0),
            speed_multipliers: vec![1.0, 2.0],
        };
        let churn = SessionConfig {
            arrival: ArrivalProcess::Poisson { rate },
            ..churn_config(seed)
        };
        let mut engine = EventEngine::new(
            build(leechers, 2, pieces, completion, seed),
            timing.clone(),
            Some(churn.clone()),
        );
        let obs = TraceObserver::new();
        engine.run_for_with(250.0, &obs);
        let log = obs.into_log();
        let records = engine.completions();
        prop_assert_eq!(log.completions.len(), records.len());
        for (&(tau, slot), rec) in log.completions.iter().zip(records) {
            prop_assert_eq!(slot as u32, rec.slot);
            prop_assert_eq!(
                (tau * timing.rechoke_interval).to_bits(),
                rec.completion_time.to_bits(),
                "completion time diverged at slot {}", slot
            );
        }
    }

    /// Event engine on a closed swarm (no slot reuse): per-peer trace
    /// sums replay the transfer counters — sender-side deposits are
    /// immediate per settlement, so upload sums match bitwise;
    /// recipient-side deposits are batched into pend rows, so download
    /// sums agree to accumulation-order rounding.
    #[test]
    fn event_trace_sums_replay_transfer_counters(
        leechers in 8usize..24,
        pieces in 10usize..30,
        completion in 0.1f64..0.6,
        seed in any::<u64>(),
        quantized in any::<bool>(),
    ) {
        let timing = EventTiming {
            rechoke_interval: 10.0,
            transfer_quantum: quantized.then_some(2.5),
            announce_interval: None,
            speed_multipliers: vec![0.5, 1.0, 2.0],
        };
        let mut engine = EventEngine::new(
            build(leechers, 2, pieces, completion, seed),
            timing,
            None,
        );
        let obs = TraceObserver::new();
        engine.run_for_with(180.0, &obs);
        let log = obs.into_log();
        let n = engine.swarm().peer_count();
        let up = log.uploaded_kbit(n);
        for p in 0..n {
            prop_assert_eq!(
                up[p].to_bits(),
                engine.swarm().peer(p).total_uploaded().to_bits(),
                "upload sum diverged at peer {}", p
            );
        }
        let down = log.downloaded_kbit(n);
        for p in 0..n {
            let engine_down = engine.swarm().peer(p).total_downloaded();
            prop_assert!(
                (down[p] - engine_down).abs() <= 1e-6 * engine_down.abs().max(1.0),
                "download sum diverged at peer {}: trace {} vs engine {}",
                p, down[p], engine_down
            );
        }
    }
}
