//! Property-based tests for the swarm simulator: conservation laws and
//! protocol invariants under arbitrary configurations.

#![allow(clippy::needless_range_loop)]

use proptest::prelude::*;
use strat_bittorrent::{metrics, Swarm, SwarmConfig};

fn swarm_params() -> impl Strategy<Value = (usize, usize, usize, f64, bool, u64)> {
    (
        4usize..40,    // leechers
        1usize..3,     // seeds
        8usize..64,    // pieces
        0.0f64..0.9,   // initial completion
        any::<bool>(), // fluid content
        any::<u64>(),  // seed
    )
}

fn build(
    leechers: usize,
    seeds: usize,
    pieces: usize,
    completion: f64,
    fluid: bool,
    seed: u64,
) -> Swarm {
    let config = SwarmConfig::builder()
        .leechers(leechers)
        .seeds(seeds)
        .piece_count(pieces)
        .piece_size_kbit(150.0)
        .initial_completion(completion)
        .mean_neighbors(8.0)
        .fluid_content(fluid)
        .seed(seed)
        .build();
    let uploads: Vec<f64> = (0..leechers + seeds)
        .map(|i| 50.0 + 37.0 * (i as f64 + 1.0))
        .collect();
    Swarm::new(config, &uploads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Traffic is conserved and capacities respected for any configuration.
    #[test]
    fn conservation_and_capacity(
        (leechers, seeds, pieces, completion, fluid, seed) in swarm_params(),
        rounds in 1u64..20,
    ) {
        let mut swarm = build(leechers, seeds, pieces, completion, fluid, seed);
        let n = swarm.peer_count();
        swarm.run_rounds(rounds);
        let up: f64 = (0..n).map(|p| swarm.peer(p).total_uploaded()).sum();
        let down: f64 = (0..n).map(|p| swarm.peer(p).total_downloaded()).sum();
        prop_assert!((up - down).abs() < 1e-6 * up.max(1.0), "up {} vs down {}", up, down);
        // TFT sub-accounting is itself conserved and bounded by totals.
        let tft_up: f64 = (0..n).map(|p| swarm.peer(p).tft_uploaded()).sum();
        let tft_down: f64 = (0..n).map(|p| swarm.peer(p).tft_downloaded()).sum();
        prop_assert!((tft_up - tft_down).abs() < 1e-6 * up.max(1.0));
        prop_assert!(tft_up <= up + 1e-9);
        // Per-round capacity: total upload <= capacity * time.
        for p in 0..n {
            let cap = swarm.peer(p).upload_kbps()
                * swarm.config().round_seconds
                * rounds as f64;
            prop_assert!(swarm.peer(p).total_uploaded() <= cap + 1e-6);
        }
    }

    /// Piece holdings only grow, availability stays consistent, and seeds
    /// never download (piece mode).
    #[test]
    fn piece_invariants(
        (leechers, seeds, pieces, completion, _fluid, seed) in swarm_params(),
    ) {
        let mut swarm = build(leechers, seeds, pieces, completion, false, seed);
        let n = swarm.peer_count();
        let mut prev: Vec<usize> = (0..n).map(|p| swarm.peer(p).pieces().count()).collect();
        for _ in 0..10 {
            swarm.round();
            for p in 0..n {
                let now = swarm.peer(p).pieces().count();
                prop_assert!(now >= prev[p], "peer {} lost pieces", p);
                prev[p] = now;
            }
        }
        for i in 0..pieces {
            let holders =
                (0..n).filter(|&p| swarm.peer(p).pieces().contains(i)).count() as u32;
            prop_assert_eq!(holders, swarm.availability()[i], "piece {}", i);
        }
        for p in leechers..n {
            prop_assert_eq!(swarm.peer(p).total_downloaded(), 0.0);
        }
    }

    /// Unchoke structure: slot bounds hold and reciprocal pairs are
    /// mutual, every round, in both content modes.
    #[test]
    fn unchoke_structure(
        (leechers, seeds, pieces, completion, fluid, seed) in swarm_params(),
    ) {
        let mut swarm = build(leechers, seeds, pieces, completion, fluid, seed);
        let n = swarm.peer_count();
        for _ in 0..8 {
            swarm.round();
            for p in 0..n {
                let tft = swarm.tft_unchoked(p);
                prop_assert!(tft.len() <= swarm.config().tft_slots);
                if let Some(o) = swarm.optimistic_unchoked(p) {
                    prop_assert!(!tft.contains(&o));
                    prop_assert!(o != p);
                }
                for &q in &tft {
                    prop_assert!(q != p);
                    prop_assert!(swarm.neighbors(p).any(|v| v == q));
                }
            }
            for (a, b) in metrics::reciprocal_tft_pairs(&swarm) {
                prop_assert!(a < b);
                prop_assert!(swarm.tft_unchoked(a).contains(&b));
                prop_assert!(swarm.tft_unchoked(b).contains(&a));
            }
        }
    }

    /// Determinism: identical configurations yield identical trajectories.
    #[test]
    fn determinism(
        (leechers, seeds, pieces, completion, fluid, seed) in swarm_params(),
    ) {
        let run = |rounds: u64| {
            let mut swarm = build(leechers, seeds, pieces, completion, fluid, seed);
            swarm.run_rounds(rounds);
            (0..swarm.peer_count())
                .map(|p| (swarm.peer(p).total_downloaded(), swarm.peer(p).pieces().count()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(6), run(6));
    }
}
