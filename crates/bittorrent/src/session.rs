//! Open-membership session layer: population turnover over the swarm
//! engine.
//!
//! The closed [`Swarm`] simulates a fixed population; live
//! BitTorrent swarms are **open** — leechers arrive (Poisson trickle,
//! flash-crowd burst, or a recorded trace), complete, linger as seeds and
//! leave. Xu's fluid model (arXiv 1311.1195) gives closed-form
//! leecher/seed trajectories for exactly this regime, and the `btchurn`
//! experiment validates this layer against it.
//!
//! A [`Session`] drives the swarm's membership primitives between rounds:
//!
//! * **arrivals** ([`ArrivalProcess`]) admit empty leechers through
//!   [`Swarm::arrive`](crate::Swarm::arrive) and wire each to
//!   `target_degree` random present peers (tracker-style rewiring that
//!   patches the overlay incrementally);
//! * **departures** ([`DepartureRules`]) remove peers through
//!   [`Swarm::depart`](crate::Swarm::depart): leave-on-completion,
//!   lingering promoted seeds leaving at a per-round probability,
//!   mid-download aborts, and a *seed exodus* that withdraws the original
//!   seeds at a fixed round;
//! * arena slots are reused through the swarm's free list;
//!   [`SessionPeerId`] tags each slot with a **generation** so stale
//!   handles never alias a reincarnated slot.
//!
//! # Determinism contract
//!
//! All session randomness comes from per-event ChaCha streams keyed
//! `(session_seed, round, event)` — event 0 is the round's departure
//! pass, event 1 the arrival count, event `2 + i` the wiring of the
//! `i`-th arrival. No event ever touches the swarm's own streams (the
//! shared serial stream or the `(seed, round, peer)` streams of the
//! parallel rounds), so:
//!
//! * a session whose processes are all inert is **bit-identical** to the
//!   closed engine, serial and parallel, at any thread count;
//! * session runs are bit-reproducible for any thread count, because
//!   events execute serially between rounds and the rounds themselves
//!   honour the `strat-par` contract.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::faults::{fault_rng, FaultPlan, CRASH_EVENT, REPAIR_EVENT};
use crate::observer::{NullObserver, RunObserver};
use crate::{PeerBehavior, PeerId, PieceSet, Population, Swarm};

/// One independent ChaCha stream per `(round, event)` pair — the session
/// analogue of the engine's `(seed, round, peer)` streams, under its own
/// domain separator so the two families never collide. The stream id
/// packs the round in the high 32 bits and the event index in the low 32.
fn event_rng(seed: u64, round: u64, event: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7365_7373_696f_6e5f); // "session_"
    rng.set_stream((round << 32) | event);
    rng
}

/// Tracker-wiring streams for the batched candidate pass, under their
/// own domain separator so batched wiring draws can never collide with
/// the arrival event streams — which is what keeps the per-arrival
/// piece draws bit-identical whether wiring is batched or not.
fn wire_rng(seed: u64, round: u64, event: u64) -> ChaCha8Rng {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7472_6163_6b65_725f); // "tracker_"
    rng.set_stream((round << 32) | event);
    rng
}

/// Samples a Poisson count with mean `lambda` by Knuth's product method,
/// chunked (Poisson additivity) so the per-chunk exponential never
/// underflows and the draw count stays `O(lambda)`.
fn poisson(rng: &mut ChaCha8Rng, lambda: f64) -> u64 {
    debug_assert!(lambda.is_finite() && lambda >= 0.0);
    let mut remaining = lambda;
    let mut total = 0u64;
    while remaining > 0.0 {
        let chunk = remaining.min(16.0);
        remaining -= chunk;
        let limit = (-chunk).exp();
        let mut product = 1.0f64;
        loop {
            product *= rng.gen_range(0.0..1.0);
            if product <= limit {
                break;
            }
            total += 1;
        }
    }
    total
}

/// How new leechers enter the swarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ArrivalProcess {
    /// No arrivals (closed population).
    None,
    /// Poisson arrivals with mean `rate` peers per round.
    Poisson {
        /// Expected arrivals per round.
        rate: f64,
    },
    /// A flash crowd: `count` peers arrive together at `round`.
    Burst {
        /// Round of the burst.
        round: u64,
        /// Peers in the burst.
        count: u32,
    },
    /// An explicit arrival trace: `(round, count)` entries, summed per
    /// round.
    Trace {
        /// Arrival schedule.
        arrivals: Vec<(u64, u32)>,
    },
}

impl ArrivalProcess {
    /// Number of arrivals at `round`; Poisson draws come from `rng`.
    fn count_at(&self, round: u64, rng: &mut ChaCha8Rng) -> u64 {
        match self {
            ArrivalProcess::None => 0,
            ArrivalProcess::Poisson { rate } => poisson(rng, *rate),
            ArrivalProcess::Burst { round: at, count } => {
                if *at == round {
                    u64::from(*count)
                } else {
                    0
                }
            }
            ArrivalProcess::Trace { arrivals } => arrivals
                .iter()
                .filter(|(r, _)| *r == round)
                .map(|(_, c)| u64::from(*c))
                .sum(),
        }
    }

    /// Whether this process can **never** produce an arrival.
    fn is_inert(&self) -> bool {
        match self {
            ArrivalProcess::None => true,
            ArrivalProcess::Poisson { rate } => *rate == 0.0,
            ArrivalProcess::Burst { count, .. } => *count == 0,
            ArrivalProcess::Trace { arrivals } => arrivals.iter().all(|(_, c)| *c == 0),
        }
    }
}

/// When peers leave the swarm.
///
/// The *lingering seed* rule (`seed_leave_prob`) applies to **promoted**
/// seeds — leechers that completed and stayed, and session arrivals that
/// entered already complete; only the initial population's original
/// seeds (the *publisher squad* a tracker operator keeps alive, the
/// fluid-model comparison's constant seed-capacity term) are exempt,
/// staying until the `seed_exodus_round`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepartureRules {
    /// Probability that a leecher departs the round after completing.
    pub leave_on_completion: f64,
    /// Per-round departure probability of promoted (lingering) seeds.
    pub seed_leave_prob: f64,
    /// Round at which every original seed departs, if any.
    pub seed_exodus_round: Option<u64>,
    /// Per-round probability that an incomplete leecher aborts.
    pub abort_prob: f64,
}

impl DepartureRules {
    /// Rules under which nobody ever leaves.
    #[must_use]
    pub fn none() -> Self {
        Self {
            leave_on_completion: 0.0,
            seed_leave_prob: 0.0,
            seed_exodus_round: None,
            abort_prob: 0.0,
        }
    }

    /// Whether these rules can **never** remove a peer.
    fn is_inert(&self) -> bool {
        self.leave_on_completion == 0.0
            && self.seed_leave_prob == 0.0
            && self.seed_exodus_round.is_none()
            && self.abort_prob == 0.0
    }
}

/// Parameters of an open-membership session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Arrival process of new leechers.
    pub arrival: ArrivalProcess,
    /// Departure rules.
    pub departure: DepartureRules,
    /// Upload capacity handed to every arrival (kbps).
    pub arrival_upload_kbps: f64,
    /// Fraction of the file an arrival already holds (drawn i.i.d. per
    /// piece from its wiring stream; `0.0` = empty, the flash-crowd
    /// realism default).
    pub arrival_completion: f64,
    /// Overlay neighbours the tracker hands each arrival.
    pub target_degree: usize,
    /// Seed of the session's `(seed, round, event)` streams.
    pub session_seed: u64,
    /// Wire all of a round's arrivals in **one shuffled candidate pass**
    /// (one `wire_rng` stream per round) instead of per-arrival
    /// rejection sampling. Arrival piece draws are bit-identical on both
    /// paths — wiring randomness lives under its own domain separator —
    /// so flipping this flag changes only the overlay edges. Off by
    /// default; the rejection-sampling path is the retained reference.
    #[serde(default)]
    pub batched_wiring: bool,
    /// Tracker peer-list cap: the maximum number of *candidate* peers
    /// the tracker hands out per wiring request (Al-Hamra et al.,
    /// *Understanding the Properties of the BitTorrent Overlay*). `None`
    /// (the default, and the legacy behaviour) lets wiring consider the
    /// whole present population; `Some(c)` draws at most `c` uniform
    /// candidates per request, so a peer can connect to at most
    /// `min(c, target_degree)` neighbours per announce and the overlay
    /// gets sparser and wider as `c` shrinks. `None` is bit-identical to
    /// pre-cap builds on every wiring path.
    #[serde(default)]
    pub peer_list_cap: Option<usize>,
    /// Arena-compaction trigger: when the dead-slot fraction
    /// `swarm.dead_slots() / swarm.peer_count()` reaches this threshold
    /// at the end of a round, the session compacts the arena
    /// ([`Swarm::compact`](crate::Swarm::compact)) and remaps its own
    /// slot-keyed state. `None` (the default) never compacts and is
    /// bit-identical to pre-compaction builds on every path.
    ///
    /// Compaction renames arena slots, so it invalidates every
    /// outstanding [`SessionPeerId`] (resolution fails cleanly — the
    /// surviving slots take fresh generations) and renames the slots an
    /// observer sees. Under the **indexed** round semantics
    /// ([`Session::run_rounds_parallel`]) a compacting session stays
    /// bit-identical to its non-compacting twin — peers keep their
    /// stream identities and the session passes iterate in stream order
    /// — except under slot-parity partitions or transfer loss, whose
    /// draws are keyed by slot/edge position. Serial-round sessions
    /// diverge once churn resumes (the serial engine draws from one
    /// shared stream in slot order).
    #[serde(default)]
    pub compact_threshold: Option<f64>,
}

impl Default for SessionConfig {
    /// A closed session: no arrivals, no departures, empty arrivals at
    /// 1000 kbps wired to 20 neighbours, seed `0x5e55`.
    fn default() -> Self {
        Self {
            arrival: ArrivalProcess::None,
            departure: DepartureRules::none(),
            arrival_upload_kbps: 1000.0,
            arrival_completion: 0.0,
            target_degree: 20,
            session_seed: 0x5e55,
            batched_wiring: false,
            peer_list_cap: None,
            compact_threshold: None,
        }
    }
}

impl SessionConfig {
    /// Checks every configuration constraint [`Session::new`] enforces —
    /// the **single source of truth** both the panicking constructor and
    /// the scenario layer's error path (`Scenario::build_session`) share,
    /// so the two can never drift.
    ///
    /// # Errors
    ///
    /// Returns a human-readable constraint violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("leave_on_completion", self.departure.leave_on_completion),
            ("seed_leave_prob", self.departure.seed_leave_prob),
            ("abort_prob", self.departure.abort_prob),
            ("arrival_completion", self.arrival_completion),
        ] {
            if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        if let ArrivalProcess::Poisson { rate } = self.arrival {
            if !(rate.is_finite() && rate >= 0.0) {
                return Err(format!(
                    "arrival rate must be non-negative and finite, got {rate}"
                ));
            }
        }
        if !(self.arrival_upload_kbps.is_finite() && self.arrival_upload_kbps > 0.0) {
            return Err(format!(
                "arrival upload capacity must be positive kbps, got {}",
                self.arrival_upload_kbps
            ));
        }
        if self.target_degree == 0 {
            return Err("target degree must be positive".to_string());
        }
        if self.peer_list_cap == Some(0) {
            return Err("peer_list_cap must be positive when set (None = uncapped)".to_string());
        }
        if let Some(t) = self.compact_threshold {
            if !(t.is_finite() && 0.0 < t && t <= 1.0) {
                return Err(format!(
                    "compact_threshold must be in (0, 1] when set (None = never), got {t}"
                ));
            }
        }
        Ok(())
    }
}

/// Generation-tagged peer handle: the arena `slot` plus the `generation`
/// the slot had when the handle was issued. A handle goes stale the
/// moment its slot is recycled by a later arrival, so sessions can keep
/// references across churn without aliasing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionPeerId {
    /// Arena slot.
    pub slot: u32,
    /// Generation of the slot at issue time.
    pub generation: u32,
}

/// Why a peer left the swarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepartReason {
    /// Left right after completing (`leave_on_completion`).
    Completed,
    /// A promoted seed's lingering period ended (`seed_leave_prob`).
    SeedLeft,
    /// The original-seed squad withdrew (`seed_exodus_round`).
    SeedExodus,
    /// An incomplete leecher aborted (`abort_prob`).
    Aborted,
    /// The fault plane crashed the peer (`FaultPlan::crash_prob`) — an
    /// abrupt departure with no graceful-lifecycle draws.
    Crashed,
    /// An external driver withdrew the peer ([`Session::leave`]) — the
    /// universe layer removing a member's replica when its home-torrent
    /// occupant departs.
    Left,
}

/// Cumulative session statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Peers admitted by the arrival process.
    pub arrivals: u64,
    /// Peers removed, by any rule.
    pub departures: u64,
    /// Download completions observed (including initial-population peers).
    pub completions: u64,
    /// Mid-download aborts.
    pub aborted: u64,
    /// Original seeds withdrawn by the exodus.
    pub seed_exodus: u64,
    /// Fault-plane crashes (abrupt departures).
    pub crashes: u64,
    /// Arrivals whose announce hit a tracker outage and was queued.
    pub deferred_announces: u64,
    /// Announce retry attempts performed by queued arrivals (successful
    /// admissions included).
    pub announce_retries: u64,
    /// Overlay edges added by the reconnect-to-target-degree repair pass.
    pub repaired_edges: u64,
    /// `(arrival_round, completed_round)` per completion, in completion
    /// order — the raw material of the per-cohort metrics.
    pub completion_records: Vec<(u64, u64)>,
}

impl SessionStats {
    /// Mean download time (rounds from arrival to completion) over every
    /// recorded completion; `None` before the first one.
    #[must_use]
    pub fn mean_download_rounds(&self) -> Option<f64> {
        if self.completion_records.is_empty() {
            return None;
        }
        let sum: f64 = self
            .completion_records
            .iter()
            .map(|&(a, c)| (c - a) as f64)
            .sum();
        Some(sum / self.completion_records.len() as f64)
    }
}

/// Completion summary of one arrival wave (see
/// [`Session::cohort_completions`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortCompletion {
    /// First round of the cohort's arrival window.
    pub window_start: u64,
    /// Completions recorded for peers that arrived in the window.
    pub completed: usize,
    /// Mean download time (rounds) of those completions.
    pub mean_download_rounds: f64,
}

/// An open-membership swarm: the engine plus the arrival/departure
/// processes driving its membership (see the [module docs](self)).
///
/// # Examples
///
/// ```
/// use strat_bittorrent::session::{ArrivalProcess, DepartureRules, Session, SessionConfig};
/// use strat_bittorrent::{Swarm, SwarmConfig};
///
/// let config = SwarmConfig::builder()
///     .leechers(30)
///     .seeds(2)
///     .piece_count(64)
///     .piece_size_kbit(200.0)
///     .seed(9)
///     .build();
/// let swarm = Swarm::new(config, &vec![400.0; 32]);
/// let mut session = Session::new(
///     swarm,
///     SessionConfig {
///         arrival: ArrivalProcess::Poisson { rate: 2.0 },
///         departure: DepartureRules {
///             seed_leave_prob: 0.3,
///             ..DepartureRules::none()
///         },
///         arrival_upload_kbps: 400.0,
///         ..SessionConfig::default()
///     },
/// );
/// session.run_rounds(40);
/// let pop = session.population();
/// assert!(pop.total() > 0);
/// assert!(session.stats().arrivals > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    swarm: Swarm,
    config: SessionConfig,
    /// Per-slot reincarnation counter (bumped by every slot reuse).
    generation: Vec<u32>,
    /// Round at which the slot's current occupant arrived.
    arrival_round: Vec<u64>,
    /// Whether the occupant's completion has been recorded in the stats.
    completion_recorded: Vec<bool>,
    /// Whether the occupant already faced its leave-on-completion draw.
    leave_decided: Vec<bool>,
    /// Whether the slot's current occupant belongs to the **publisher
    /// squad** — the initial population's original seeds, exempt from
    /// every departure rule except the exodus. Session arrivals are never
    /// publishers, even when they arrive holding the complete file (such
    /// peers behave like freshly promoted seeds and stay mortal).
    publisher: Vec<bool>,
    /// Dense list of the present arena slots (swap-removed on departure),
    /// so tracker wiring samples uniformly over **present** peers instead
    /// of rejection-sampling an arena that may be mostly free-listed.
    present_slots: Vec<u32>,
    /// `slot_pos[slot]` locates the slot inside `present_slots`
    /// ([`ABSENT`] when departed).
    slot_pos: Vec<u32>,
    stats: SessionStats,
    /// True when both processes are inert — the zero-churn fast path that
    /// keeps the session bit-identical to the closed engine.
    inert: bool,
    /// The fault schedule (see [`crate::faults`]).
    faults: FaultPlan,
    /// True when the plan injects anything; every fault hook is gated on
    /// this, so inert plans leave the session bit-identical to one built
    /// without a plan.
    faults_active: bool,
    /// Arrivals whose announce hit a tracker outage, waiting to retry.
    pending: Vec<PendingAnnounce>,
    /// Slots admitted this round and awaiting the batched wiring pass
    /// (only used when `config.batched_wiring` is set).
    wire_batch: Vec<u32>,
    /// Generation handed to slots the arena grows fresh. Bumped past
    /// every generation ever issued when a compaction renames slots, so
    /// no pre-compaction handle can alias a post-compaction occupant.
    gen_floor: u32,
    /// Whether any present peer's stream id differs from its slot. False
    /// until a post-compaction arrival lands (survivors keep slot order
    /// = stream order); while false the per-slot session passes iterate
    /// slots ascending with zero overhead, exactly the legacy order.
    stream_order_diverged: bool,
    /// Reusable buffer for the per-slot passes' iteration order.
    pass_buf: Vec<u32>,
    /// Arena compactions performed so far.
    compactions: u64,
    /// When set, [`Session::admit_arrival`] records each admission's
    /// handle for [`Session::drain_recent_arrivals`] (the universe
    /// layer's claim pass). Off by default: the unobserved session keeps
    /// zero bookkeeping.
    track_arrivals: bool,
    /// Handles admitted since the last drain (only filled while
    /// `track_arrivals` is set).
    recent_arrivals: Vec<SessionPeerId>,
}

/// An arrival queued behind a tracker outage: it keeps its own arrival
/// event stream (jitter draws now, piece/wiring draws at admission) and
/// retries with exponential backoff until the tracker answers.
#[derive(Debug, Clone)]
struct PendingAnnounce {
    /// The arrival's `(seed, round, 2 + i)` event stream, carried across
    /// retries.
    rng: ChaCha8Rng,
    /// Failed announce attempts so far (caps the backoff exponent).
    attempt: u32,
    /// First round the next retry may fire.
    next_retry: u64,
}

/// Exponential backoff with deterministic jitter: `2^min(attempt, 6)`
/// rounds plus a uniform draw of the same magnitude from the arrival's
/// own event stream.
fn backoff_delay(attempt: u32, rng: &mut ChaCha8Rng) -> u64 {
    let base = 1u64 << attempt.min(6);
    base + rng.gen_range(0..base)
}

/// `slot_pos` sentinel for departed slots.
const ABSENT: u32 = u32::MAX;

impl Session {
    /// Wraps a (piece-mode) swarm in an open-membership session. Reserves
    /// overlay slack so tracker rewiring has room to splice edges.
    ///
    /// # Panics
    ///
    /// Panics on a fluid-content swarm (open membership needs completions,
    /// which fluid mode models away), a non-positive arrival capacity, an
    /// out-of-range probability, or a zero target degree.
    #[must_use]
    pub fn new(swarm: Swarm, config: SessionConfig) -> Self {
        Self::with_faults(swarm, config, FaultPlan::none())
    }

    /// Wraps a swarm in a session carrying a fault schedule (see
    /// [`crate::faults`]). An inert plan ([`FaultPlan::is_inert`])
    /// produces a session bit-identical to [`Session::new`]'s.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Session::new`], or on an
    /// invalid plan ([`FaultPlan::validate`]).
    #[must_use]
    pub fn with_faults(mut swarm: Swarm, config: SessionConfig, faults: FaultPlan) -> Self {
        assert!(
            !swarm.config().fluid_content,
            "open membership requires piece mode (fluid content never completes)"
        );
        if let Err(reason) = config.validate() {
            panic!("invalid session configuration: {reason}");
        }
        if let Err(reason) = faults.validate() {
            panic!("invalid fault plan: {reason}");
        }
        let inert = config.arrival.is_inert() && config.departure.is_inert();
        let faults_active = !faults.is_inert();
        if !inert || faults_active {
            swarm.reserve_overlay_slack(config.target_degree.max(4));
        }
        if faults.loss_prob > 0.0 {
            swarm.set_transfer_loss(faults.loss_prob, faults.fault_seed);
        }
        let n = swarm.peer_count();
        let publisher: Vec<bool> = (0..n).map(|p| swarm.peer(p).is_original_seed()).collect();
        Self {
            swarm,
            config,
            generation: vec![0; n],
            arrival_round: vec![0; n],
            completion_recorded: vec![false; n],
            leave_decided: vec![false; n],
            publisher,
            present_slots: (0..n as u32).collect(),
            slot_pos: (0..n as u32).collect(),
            stats: SessionStats::default(),
            inert,
            faults,
            faults_active,
            pending: Vec::new(),
            wire_batch: Vec::new(),
            gen_floor: 0,
            stream_order_diverged: false,
            pass_buf: Vec::new(),
            compactions: 0,
            track_arrivals: false,
            recent_arrivals: Vec::new(),
        }
    }

    /// Arena compactions performed so far (see
    /// [`SessionConfig::compact_threshold`]).
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Reserves overlay slack for externally driven joins
    /// ([`Session::join_with`]) the way the constructor does for churned
    /// sessions. The universe layer calls this on every session of a
    /// multi-torrent universe; a single-torrent universe never does, so
    /// it stays bit-identical to the plain session.
    pub fn reserve_join_slack(&mut self) {
        self.swarm
            .reserve_overlay_slack(self.config.target_degree.max(4));
    }

    /// The fault schedule in force (the inert plan when none was given).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Arrivals currently queued behind a tracker outage.
    #[must_use]
    pub fn pending_announces(&self) -> usize {
        self.pending.len()
    }

    /// The underlying swarm (read access).
    #[must_use]
    pub fn swarm(&self) -> &Swarm {
        &self.swarm
    }

    /// The session configuration.
    #[must_use]
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Rounds simulated so far.
    #[must_use]
    pub fn round_count(&self) -> u64 {
        self.swarm.round_count()
    }

    /// The present-population split (forwarded from the swarm's
    /// incremental counters).
    #[must_use]
    pub fn population(&self) -> Population {
        self.swarm.population()
    }

    /// The generation-tagged handle of arena slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn id_of(&self, slot: PeerId) -> SessionPeerId {
        SessionPeerId {
            slot: slot as u32,
            generation: self.generation[slot],
        }
    }

    /// Resolves a handle back to its arena slot, or `None` if the slot has
    /// been recycled since (or its occupant departed).
    #[must_use]
    pub fn resolve(&self, id: SessionPeerId) -> Option<PeerId> {
        let slot = id.slot as usize;
        (slot < self.swarm.peer_count()
            && self.generation[slot] == id.generation
            && self.swarm.is_present(slot))
        .then_some(slot)
    }

    /// Round the occupant of `slot` arrived (0 for the initial
    /// population).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn arrival_round_of(&self, slot: PeerId) -> u64 {
        self.arrival_round[slot]
    }

    /// Completion summaries bucketed by arrival wave: completions whose
    /// peer arrived in `[k·window, (k+1)·window)` aggregate into cohort
    /// `k`. Empty cohorts are omitted.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn cohort_completions(&self, window: u64) -> Vec<CohortCompletion> {
        assert!(window > 0, "cohort window must be positive");
        let mut cohorts: Vec<(u64, usize, f64)> = Vec::new();
        for &(arrived, completed) in &self.stats.completion_records {
            let start = (arrived / window) * window;
            let dt = (completed - arrived) as f64;
            match cohorts.iter_mut().find(|(s, _, _)| *s == start) {
                Some((_, count, sum)) => {
                    *count += 1;
                    *sum += dt;
                }
                None => cohorts.push((start, 1, dt)),
            }
        }
        cohorts.sort_unstable_by_key(|&(s, _, _)| s);
        cohorts
            .into_iter()
            .map(|(window_start, completed, sum)| CohortCompletion {
                window_start,
                completed,
                mean_download_rounds: sum / completed as f64,
            })
            .collect()
    }

    /// Runs `rounds` rounds under the serial round semantics
    /// ([`Swarm::round`]), with the session's membership events before
    /// each round.
    pub fn run_rounds(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step_round(None, &NullObserver);
        }
    }

    /// [`run_rounds`](Self::run_rounds) with a [`RunObserver`] tap on
    /// membership events (arrivals, departures, crashes) and the swarm
    /// round. Observers are pure taps: attaching one changes no session
    /// state and consumes no randomness. A disabled observer dispatches
    /// to the crate's own non-generic path, so out-of-crate callers pay
    /// no re-instantiation penalty.
    pub fn run_rounds_with<O: RunObserver>(&mut self, rounds: u64, obs: &O) {
        if !O::ENABLED {
            return self.run_rounds(rounds);
        }
        for _ in 0..rounds {
            self.step_round(None, obs);
        }
    }

    /// Runs `rounds` rounds under the indexed-stream semantics
    /// ([`Swarm::run_rounds_parallel`]) across up to `threads` workers.
    /// Bit-identical for any thread count.
    pub fn run_rounds_parallel(&mut self, rounds: u64, threads: usize) {
        for _ in 0..rounds {
            self.step_round(Some(threads), &NullObserver);
        }
    }

    /// [`run_rounds_parallel`](Self::run_rounds_parallel) with a
    /// [`RunObserver`] tap. A disabled observer dispatches to the
    /// crate's own non-generic path.
    pub fn run_rounds_parallel_with<O: RunObserver>(
        &mut self,
        rounds: u64,
        threads: usize,
        obs: &O,
    ) {
        if !O::ENABLED {
            return self.run_rounds_parallel(rounds, threads);
        }
        for _ in 0..rounds {
            self.step_round(Some(threads), obs);
        }
    }

    /// One session step: graceful departures, then fault events (crash
    /// pass, partition cuts), then arrivals (queued during outages),
    /// announce retries, the overlay-repair pass, one swarm round
    /// (serial when `threads` is `None`), and completion recording.
    /// Every fault hook is gated on the plan being non-inert, so the
    /// zero-fault step is exactly the PR 5 session step.
    fn step_round<O: RunObserver>(&mut self, threads: Option<usize>, obs: &O) {
        self.membership_pass_with(obs);
        self.round_pass_with(threads, obs);
    }

    /// The membership half of one session step: graceful departures,
    /// fault events (crash pass, partition cuts), arrivals (queued
    /// during outages), announce retries, batched tracker wiring, and
    /// the overlay-repair pass — everything that runs *before* the swarm
    /// round. [`round_pass_with`](Self::round_pass_with) is the other
    /// half; running the two back to back is exactly one
    /// [`run_rounds`](Self::run_rounds) step, so a driver that
    /// interleaves its own work between the halves (the universe layer's
    /// claim/rebalance passes) stays bit-identical to a plain session
    /// whenever that work touches no session state.
    pub fn membership_pass_with<O: RunObserver>(&mut self, obs: &O) {
        let round = self.swarm.round_count();
        if !self.inert {
            self.departure_pass(round, obs);
        }
        if self.faults_active {
            self.fault_pass(round, obs);
        }
        if !self.inert {
            self.arrival_pass(round, obs);
        }
        if self.faults_active {
            self.retry_pass(round, obs);
        }
        if self.config.batched_wiring {
            self.wire_pass_batched(round);
        }
        if self.faults_active {
            self.repair_pass(round);
        }
    }

    /// The round half of one session step: one swarm round (serial when
    /// `threads` is `None`, indexed-stream parallel otherwise),
    /// completion recording, and the end-of-round compaction check. See
    /// [`membership_pass_with`](Self::membership_pass_with).
    pub fn round_pass_with<O: RunObserver>(&mut self, threads: Option<usize>, obs: &O) {
        match threads {
            None => self.swarm.round_with(obs),
            Some(t) => self.swarm.run_rounds_parallel_with(1, t, obs),
        }
        self.record_completions();
        self.maybe_compact();
    }

    /// Turns arrival tracking on or off (off by default). While on,
    /// every admission records its generation-tagged handle for
    /// [`drain_recent_arrivals`](Self::drain_recent_arrivals); the
    /// universe layer's claim pass runs on this. Tracking is pure
    /// bookkeeping — it changes no session state and consumes no
    /// randomness.
    pub fn track_arrivals(&mut self, on: bool) {
        self.track_arrivals = on;
        if !on {
            self.recent_arrivals.clear();
        }
    }

    /// Takes the handles admitted since the last drain, in admission
    /// order. Empty unless [`track_arrivals`](Self::track_arrivals) is
    /// on.
    pub fn drain_recent_arrivals(&mut self) -> Vec<SessionPeerId> {
        std::mem::take(&mut self.recent_arrivals)
    }

    /// Admits one externally driven peer — the cross-swarm tracker's
    /// join — with the given upload capacity, drawing its initial pieces
    /// (i.i.d. per piece at `completion`) and tracker wiring from the
    /// **caller's** stream. The join honours `target_degree` and
    /// `peer_list_cap` exactly like a session arrival, counts in
    /// `stats.arrivals`, and returns the generation-tagged handle. It is
    /// *not* recorded for [`drain_recent_arrivals`]: the universe layer
    /// claims session arrivals, not its own joins.
    ///
    /// [`drain_recent_arrivals`]: Self::drain_recent_arrivals
    ///
    /// # Panics
    ///
    /// Panics if `upload_kbps` is non-positive or `completion` is not a
    /// probability.
    pub fn join_with<O: RunObserver>(
        &mut self,
        upload_kbps: f64,
        completion: f64,
        rng: &mut ChaCha8Rng,
        obs: &O,
    ) -> SessionPeerId {
        assert!(
            completion.is_finite() && (0.0..=1.0).contains(&completion),
            "join completion must be a probability in [0, 1], got {completion}"
        );
        let round = self.swarm.round_count();
        let mut pieces = PieceSet::new(self.swarm.config().piece_count);
        if completion > 0.0 {
            for piece in 0..self.swarm.config().piece_count {
                if rng.gen_bool(completion) {
                    pieces.insert(piece);
                }
            }
        }
        let slot = self
            .swarm
            .arrive(upload_kbps, PeerBehavior::Compliant, pieces);
        if self.swarm.stream_of(slot) != slot {
            self.stream_order_diverged = true;
        }
        self.on_slot_filled(slot, round);
        self.stats.arrivals += 1;
        if O::ENABLED {
            obs.arrival(round as f64, slot);
        }
        self.wire(slot, rng, round);
        self.id_of(slot)
    }

    /// Withdraws the peer behind `id` — the cross-swarm tracker's leave,
    /// recorded as [`DepartReason::Left`]. Returns `false` without
    /// changes when the handle is stale (slot recycled or occupant
    /// already gone).
    pub fn leave<O: RunObserver>(&mut self, id: SessionPeerId, obs: &O) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        self.depart(slot, DepartReason::Left, obs);
        true
    }

    /// Sets the upload capacity of the peer behind `id` — the universe
    /// layer's per-rechoke capacity-split write. Returns `false` without
    /// changes when the handle is stale.
    ///
    /// # Panics
    ///
    /// Panics if `kbps` is non-positive.
    pub fn set_upload_kbps(&mut self, id: SessionPeerId, kbps: f64) -> bool {
        let Some(slot) = self.resolve(id) else {
            return false;
        };
        self.swarm.set_upload_kbps(slot, kbps);
        true
    }

    /// Present slots in **indexed-stream order** — the iteration order of
    /// every per-slot session pass. Until a post-compaction arrival lands
    /// slot order and stream order coincide (compaction preserves
    /// survivors' relative order, and streams recycle in free-list
    /// lockstep before that), so the common case collects the live
    /// prefix with no sort. The caller returns the buffer through
    /// `self.pass_buf` when done.
    ///
    /// Stream order is what keeps a compacting session's sequential
    /// event streams (departure/crash draws, completion-record order)
    /// assigned to the same peers as its non-compacting twin's
    /// slot-ascending passes.
    fn take_pass_order(&mut self) -> Vec<u32> {
        let mut order = std::mem::take(&mut self.pass_buf);
        order.clear();
        let lb = self.swarm.live_slot_bound();
        order.extend((0..lb as u32).filter(|&p| self.swarm.is_present(p as usize)));
        if self.stream_order_diverged {
            let swarm = &self.swarm;
            order.sort_unstable_by_key(|&p| swarm.stream_of(p as usize));
        }
        order
    }

    /// End-of-round compaction check: once the dead-slot fraction
    /// reaches `config.compact_threshold`, compact the swarm arena and
    /// remap the session's slot-keyed state along the old→new slot map.
    /// Outstanding [`SessionPeerId`]s are invalidated wholesale: every
    /// surviving slot takes a generation above anything issued before.
    fn maybe_compact(&mut self) {
        let Some(threshold) = self.config.compact_threshold else {
            return;
        };
        let n = self.swarm.peer_count();
        let dead = self.swarm.dead_slots();
        if dead == 0 || (dead as f64) < threshold * n as f64 {
            return;
        }
        let remap = self.swarm.compact();
        let floor = self
            .generation
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .wrapping_add(1);
        self.gen_floor = floor;
        fn retain_live<T>(remap: &[u32], v: &mut Vec<T>) {
            let mut i = 0;
            v.retain(|_| {
                let keep = remap[i] != u32::MAX;
                i += 1;
                keep
            });
        }
        retain_live(&remap, &mut self.generation);
        retain_live(&remap, &mut self.arrival_round);
        retain_live(&remap, &mut self.completion_recorded);
        retain_live(&remap, &mut self.leave_decided);
        retain_live(&remap, &mut self.publisher);
        self.generation.fill(floor);
        // The dense present list keeps its positional order (tracker
        // wiring draws positions into it); only the slot values move.
        for slot in &mut self.present_slots {
            *slot = remap[*slot as usize];
            debug_assert_ne!(*slot, u32::MAX);
        }
        self.slot_pos = vec![ABSENT; self.swarm.peer_count()];
        for (pos, &slot) in self.present_slots.iter().enumerate() {
            self.slot_pos[slot as usize] = pos as u32;
        }
        self.compactions += 1;
    }

    /// Fault event [`CRASH_EVENT`] of the round, plus partition cuts.
    /// Crashes hit every present non-publisher peer independently (the
    /// publisher squad pins the fluid oracle's `s0`, and crashing it
    /// would conflate content death with overlay degradation); a crash
    /// severs the peer's overlay row abruptly — no completion record, no
    /// graceful-leave draws. A partition window starting this round cuts
    /// every edge between the even and odd arena halves.
    fn fault_pass<O: RunObserver>(&mut self, round: u64, obs: &O) {
        if self.faults.crash_prob > 0.0 {
            let mut rng = fault_rng(self.faults.fault_seed, round, CRASH_EVENT);
            let order = self.take_pass_order();
            for &p in &order {
                let p = p as usize;
                if !self.publisher[p] && rng.gen_bool(self.faults.crash_prob) {
                    self.depart(p, DepartReason::Crashed, obs);
                }
            }
            self.pass_buf = order;
        }
        if self.faults.partition_starts_at(round) {
            self.sever_partition();
        }
    }

    /// Cuts every overlay edge between the even and odd arena halves —
    /// pure graph surgery, no randomness.
    fn sever_partition(&mut self) {
        for p in 0..self.swarm.live_slot_bound() {
            if !self.swarm.is_present(p) {
                continue;
            }
            let cross: Vec<PeerId> = self
                .swarm
                .neighbors(p)
                .filter(|&q| FaultPlan::cross_partition(p, q))
                .collect();
            for q in cross {
                self.swarm.disconnect_peers(p, q);
            }
        }
    }

    /// Processes the pending-announce queue in insertion order: entries
    /// whose backoff expired retry now — admission if the tracker is up,
    /// another backoff draw (from the entry's own stream) if not.
    fn retry_pass<O: RunObserver>(&mut self, round: u64, obs: &O) {
        if self.pending.is_empty() {
            return;
        }
        let tracker_up = !self.faults.outage_active(round);
        let mut still = Vec::new();
        for mut entry in std::mem::take(&mut self.pending) {
            if entry.next_retry > round {
                still.push(entry);
                continue;
            }
            self.stats.announce_retries += 1;
            if tracker_up {
                self.admit_arrival(entry.rng, round, obs);
            } else {
                entry.attempt += 1;
                entry.next_retry = round + backoff_delay(entry.attempt, &mut entry.rng);
                still.push(entry);
            }
        }
        self.pending = still;
    }

    /// Fault event [`REPAIR_EVENT`] of the round: reconnect-to-target-
    /// degree repair. Peers left under the tracker wiring degree by
    /// crashes or partition cuts ask the tracker for fresh contacts —
    /// so the pass only runs for plans that damage the overlay
    /// ([`FaultPlan::repair_enabled`]), and only while the tracker is
    /// up. While a partition is active, cross-half candidates are
    /// refused and the degree ceiling halves (the tracker's candidate
    /// list is only half usable) — which is what makes the heal
    /// observable: the under-degree survivors re-announce on the first
    /// healed round, and their unrestricted candidate draws bridge the
    /// halves back into one component.
    fn repair_pass(&mut self, round: u64) {
        if !self.faults.repair_enabled() || self.faults.outage_active(round) {
            return;
        }
        let present = self.present_slots.len();
        if present <= 1 {
            return;
        }
        let partitioned = self.faults.partition_active(round);
        let target = self.effective_target(partitioned);
        let mut rng = fault_rng(self.faults.fault_seed, round, REPAIR_EVENT);
        let max_attempts = 12 * target + 24;
        let order = self.take_pass_order();
        for &p in &order {
            let p = p as usize;
            if self.swarm.degree(p) >= target {
                continue;
            }
            let before = self.swarm.degree(p);
            let mut attempts = 0usize;
            while self.swarm.degree(p) < target && attempts < max_attempts {
                attempts += 1;
                let q = self.present_slots[rng.gen_range(0..present)] as usize;
                if q == p || (partitioned && FaultPlan::cross_partition(p, q)) {
                    continue;
                }
                self.swarm.connect_peers(p, q);
            }
            self.stats.repaired_edges += (self.swarm.degree(p) - before) as u64;
        }
        self.pass_buf = order;
    }

    /// Event 0 of the round: the departure pass, slots in ascending order.
    fn departure_pass<O: RunObserver>(&mut self, round: u64, obs: &O) {
        let rules = self.config.departure;
        if rules.is_inert() {
            return;
        }
        let mut rng = event_rng(self.config.session_seed, round, 0);
        let exodus_now = rules.seed_exodus_round == Some(round);
        let order = self.take_pass_order();
        for &p in &order {
            let p = p as usize;
            if self.publisher[p] {
                if exodus_now {
                    self.depart(p, DepartReason::SeedExodus, obs);
                }
                continue;
            }
            if self.swarm.peer(p).pieces().is_complete() {
                if !self.leave_decided[p] {
                    self.leave_decided[p] = true;
                    if rules.leave_on_completion > 0.0 && rng.gen_bool(rules.leave_on_completion) {
                        self.depart(p, DepartReason::Completed, obs);
                    }
                } else if rules.seed_leave_prob > 0.0 && rng.gen_bool(rules.seed_leave_prob) {
                    self.depart(p, DepartReason::SeedLeft, obs);
                }
            } else if rules.abort_prob > 0.0 && rng.gen_bool(rules.abort_prob) {
                self.depart(p, DepartReason::Aborted, obs);
            }
        }
        self.pass_buf = order;
    }

    /// Events 1 and `2 + i` of the round: the arrival count, then one
    /// wiring stream per admitted peer. When a tracker outage is active,
    /// each would-be arrival queues a [`PendingAnnounce`] instead —
    /// carrying its own event stream, so its eventual admission draws
    /// the exact pieces/wiring randomness its stream would have
    /// produced (shifted by the backoff draws).
    fn arrival_pass<O: RunObserver>(&mut self, round: u64, obs: &O) {
        let count = {
            let mut rng = event_rng(self.config.session_seed, round, 1);
            self.config.arrival.count_at(round, &mut rng)
        };
        let outage = self.faults_active && self.faults.outage_active(round);
        for i in 0..count {
            let mut rng = event_rng(self.config.session_seed, round, 2 + i);
            if outage {
                let next_retry = round + backoff_delay(0, &mut rng);
                self.pending.push(PendingAnnounce {
                    rng,
                    attempt: 0,
                    next_retry,
                });
                self.stats.deferred_announces += 1;
                continue;
            }
            self.admit_arrival(rng, round, obs);
        }
    }

    /// Admits one arrival, drawing its initial pieces and tracker wiring
    /// from `rng` (the arrival's own event stream, whether fresh or
    /// carried through an outage queue).
    fn admit_arrival<O: RunObserver>(&mut self, mut rng: ChaCha8Rng, round: u64, obs: &O) {
        let mut pieces = PieceSet::new(self.swarm.config().piece_count);
        if self.config.arrival_completion > 0.0 {
            for piece in 0..self.swarm.config().piece_count {
                if rng.gen_bool(self.config.arrival_completion) {
                    pieces.insert(piece);
                }
            }
        }
        let slot = self.swarm.arrive(
            self.config.arrival_upload_kbps,
            PeerBehavior::Compliant,
            pieces,
        );
        if self.swarm.stream_of(slot) != slot {
            // A post-compaction arrival: its stream identity (a recycled
            // dead slot's) no longer matches its arena slot, so the
            // per-slot passes must start sorting by stream.
            self.stream_order_diverged = true;
        }
        self.on_slot_filled(slot, round);
        self.stats.arrivals += 1;
        if self.track_arrivals {
            self.recent_arrivals.push(self.id_of(slot));
        }
        if O::ENABLED {
            obs.arrival(round as f64, slot);
        }
        if self.config.batched_wiring {
            self.wire_batch.push(slot as u32);
        } else {
            self.wire(slot, &mut rng, round);
        }
    }

    /// Tracker wiring: connects `slot` to up to `target_degree` distinct
    /// random **present** peers, drawn uniformly from the dense
    /// present-slot list (so a mostly free-listed arena cannot starve an
    /// arrival of edges; the bounded attempt budget only absorbs
    /// duplicate/full-row collisions). While a partition is active the
    /// tracker refuses cross-half candidates.
    fn wire(&mut self, slot: PeerId, rng: &mut ChaCha8Rng, round: u64) {
        let present = self.present_slots.len();
        if present <= 1 {
            return;
        }
        let partitioned = self.faults_active && self.faults.partition_active(round);
        let target = self.effective_target(partitioned);
        if let Some(cap) = self.config.peer_list_cap {
            // Capped tracker: hand out at most `cap` *distinct* uniform
            // candidates (partial Fisher–Yates over a present-list copy),
            // then let the arrival connect to as many as fit. The `None`
            // branch below is the untouched legacy path, bit-identical
            // to pre-cap builds.
            let mut cands = self.present_slots.clone();
            let handed = cap.min(cands.len());
            for i in 0..handed {
                if self.swarm.degree(slot) >= target {
                    break;
                }
                let j = rng.gen_range(i..cands.len());
                cands.swap(i, j);
                let q = cands[i] as usize;
                if q == slot || (partitioned && FaultPlan::cross_partition(slot, q)) {
                    continue;
                }
                // `connect_peers` rejects duplicates and full rows on its
                // own.
                self.swarm.connect_peers(slot, q);
            }
            return;
        }
        let mut attempts = 0usize;
        let max_attempts = 12 * target + 24;
        while self.swarm.degree(slot) < target && attempts < max_attempts {
            attempts += 1;
            let q = self.present_slots[rng.gen_range(0..present)] as usize;
            if q == slot || (partitioned && FaultPlan::cross_partition(slot, q)) {
                continue;
            }
            // `connect_peers` rejects duplicates and full rows on its own.
            self.swarm.connect_peers(slot, q);
        }
    }

    /// Batched tracker wiring (the `batched_wiring` path): all of the
    /// round's admissions share **one** shuffled pass over the present
    /// candidate list instead of one rejection-sampling loop each.
    /// A rotating cursor walks the shuffled list; every arrival scans at
    /// most one lap, so a round with `a` arrivals costs
    /// `O(present + a · target)` instead of `a` independent
    /// `O(target · collisions)` loops — the flash-crowd scaling item.
    /// Draws come from the round's [`wire_rng`] stream, so the arrivals'
    /// own event streams see exactly the draws the reference path's
    /// piece sampling sees.
    fn wire_pass_batched(&mut self, round: u64) {
        if self.wire_batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.wire_batch);
        let present = self.present_slots.len();
        if present <= 1 {
            return;
        }
        let partitioned = self.faults_active && self.faults.partition_active(round);
        let target = self.effective_target(partitioned);
        let mut rng = wire_rng(self.config.session_seed, round, 0);
        let mut cands = self.present_slots.clone();
        cands.shuffle(&mut rng);
        let mut cursor = 0usize;
        // A peer-list cap limits each arrival's lap over the shuffled
        // candidate list — the tracker "hands out" only the next `cap`
        // entries. Uncapped laps scan the whole list (legacy behaviour).
        let lap = self
            .config
            .peer_list_cap
            .map_or(cands.len(), |cap| cap.min(cands.len()));
        for &slot in &batch {
            let slot = slot as usize;
            let mut scanned = 0usize;
            while self.swarm.degree(slot) < target && scanned < lap {
                let q = cands[cursor] as usize;
                cursor = (cursor + 1) % cands.len();
                scanned += 1;
                if q == slot || (partitioned && FaultPlan::cross_partition(slot, q)) {
                    continue;
                }
                // `connect_peers` rejects duplicates and full rows on its
                // own.
                self.swarm.connect_peers(slot, q);
            }
        }
    }

    /// The tracker wiring degree in force: the configured target, halved
    /// (rounded up) while a partition makes half the candidate list
    /// unreachable.
    fn effective_target(&self, partitioned: bool) -> usize {
        if partitioned {
            self.config.target_degree.div_ceil(2)
        } else {
            self.config.target_degree
        }
    }

    /// Book-keeping for a freshly (re)occupied arena slot.
    fn on_slot_filled(&mut self, slot: PeerId, round: u64) {
        if slot == self.generation.len() {
            self.generation.push(self.gen_floor);
            self.arrival_round.push(0);
            self.completion_recorded.push(false);
            self.leave_decided.push(false);
            self.publisher.push(false);
            self.slot_pos.push(ABSENT);
        }
        self.generation[slot] = self.generation[slot].wrapping_add(1);
        self.arrival_round[slot] = round;
        self.completion_recorded[slot] = false;
        self.leave_decided[slot] = false;
        // Session arrivals are never publishers, complete or not.
        self.publisher[slot] = false;
        debug_assert_eq!(self.slot_pos[slot], ABSENT);
        self.slot_pos[slot] = self.present_slots.len() as u32;
        self.present_slots.push(slot as u32);
    }

    /// Removes `p` and records the departure.
    fn depart<O: RunObserver>(&mut self, p: PeerId, reason: DepartReason, obs: &O) {
        match reason {
            DepartReason::Crashed => self.swarm.crash(p),
            _ => self.swarm.depart(p),
        }
        if O::ENABLED {
            let t = self.swarm.round_count() as f64;
            match reason {
                DepartReason::Crashed => obs.crash(t, p),
                _ => obs.departure(t, p),
            }
        }
        // Swap-remove from the dense present list.
        let pos = self.slot_pos[p] as usize;
        debug_assert_eq!(self.present_slots[pos] as usize, p);
        let last = *self.present_slots.last().expect("p was present");
        self.present_slots[pos] = last;
        self.slot_pos[last as usize] = pos as u32;
        self.present_slots.pop();
        self.slot_pos[p] = ABSENT;
        self.stats.departures += 1;
        match reason {
            DepartReason::Aborted => self.stats.aborted += 1,
            DepartReason::SeedExodus => self.stats.seed_exodus += 1,
            DepartReason::Crashed => self.stats.crashes += 1,
            DepartReason::Completed | DepartReason::SeedLeft | DepartReason::Left => {}
        }
    }

    /// Records download completions that happened during the last round
    /// (non-original peers only — arriving seeds never "complete").
    fn record_completions(&mut self) {
        let order = self.take_pass_order();
        for &p in &order {
            let p = p as usize;
            if self.completion_recorded[p] {
                continue;
            }
            let peer = self.swarm.peer(p);
            if peer.is_original_seed() {
                continue;
            }
            if let Some(completed) = peer.completed_round() {
                self.completion_recorded[p] = true;
                self.stats.completions += 1;
                self.stats
                    .completion_records
                    .push((self.arrival_round[p], completed));
            }
        }
        self.pass_buf = order;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SwarmConfig;

    fn base_swarm(leechers: usize, seeds: usize, seed: u64) -> Swarm {
        let n = leechers + seeds;
        let cfg = SwarmConfig::builder()
            .leechers(leechers)
            .seeds(seeds)
            .piece_count(48)
            .piece_size_kbit(200.0)
            .mean_neighbors(10.0)
            .initial_completion(0.3)
            .seed(seed)
            .build();
        Swarm::new(cfg, &vec![400.0; n])
    }

    #[test]
    fn poisson_mean_is_about_lambda() {
        let mut rng = event_rng(1, 0, 0);
        for lambda in [0.5, 3.0, 25.0] {
            let draws = 4000;
            let total: u64 = (0..draws).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / draws as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda + 0.05,
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn arrivals_grow_population_and_are_wired() {
        let swarm = base_swarm(20, 2, 3);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Poisson { rate: 3.0 },
                arrival_upload_kbps: 300.0,
                target_degree: 6,
                ..SessionConfig::default()
            },
        );
        session.run_rounds(10);
        assert!(session.stats().arrivals > 10);
        assert!(session.population().total() > 22);
        session.swarm().validate_consistency();
        // Arrivals got overlay edges.
        let mut wired = 0;
        for p in 22..session.swarm().peer_count() {
            if session.swarm().is_present(p) {
                assert!(session.swarm().degree(p) > 0, "arrival {p} left unwired");
                wired += 1;
            }
        }
        assert!(wired > 0);
    }

    #[test]
    fn burst_process_fires_once() {
        let swarm = base_swarm(10, 1, 4);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Burst {
                    round: 3,
                    count: 25,
                },
                ..SessionConfig::default()
            },
        );
        session.run_rounds(3);
        assert_eq!(session.stats().arrivals, 0);
        session.run_rounds(1);
        assert_eq!(session.stats().arrivals, 25);
        session.run_rounds(5);
        assert_eq!(session.stats().arrivals, 25);
        session.swarm().validate_consistency();
    }

    #[test]
    fn trace_process_follows_schedule() {
        let swarm = base_swarm(10, 1, 5);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Trace {
                    arrivals: vec![(1, 2), (4, 3), (4, 1)],
                },
                ..SessionConfig::default()
            },
        );
        session.run_rounds(6);
        assert_eq!(session.stats().arrivals, 6);
    }

    #[test]
    fn seed_exodus_withdraws_original_seeds() {
        let swarm = base_swarm(12, 3, 6);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                departure: DepartureRules {
                    seed_exodus_round: Some(4),
                    ..DepartureRules::none()
                },
                ..SessionConfig::default()
            },
        );
        session.run_rounds(4);
        assert_eq!(session.stats().seed_exodus, 0);
        session.run_rounds(1);
        assert_eq!(session.stats().seed_exodus, 3);
        for p in 12..15 {
            assert!(!session.swarm().is_present(p));
        }
        session.swarm().validate_consistency();
    }

    #[test]
    fn completions_are_recorded_and_promoted_seeds_leave() {
        let n = 16;
        let cfg = SwarmConfig::builder()
            .leechers(n - 1)
            .seeds(1)
            .piece_count(16)
            .piece_size_kbit(50.0)
            .mean_neighbors(8.0)
            .initial_completion(0.7)
            .seed(8)
            .build();
        let swarm = Swarm::new(cfg, &vec![2000.0; n]);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                departure: DepartureRules {
                    seed_leave_prob: 0.5,
                    ..DepartureRules::none()
                },
                ..SessionConfig::default()
            },
        );
        session.run_rounds(40);
        assert!(session.stats().completions > 0);
        assert!(session.stats().departures > 0);
        assert!(session.stats().mean_download_rounds().is_some());
        let cohorts = session.cohort_completions(10);
        assert!(!cohorts.is_empty());
        assert_eq!(cohorts[0].window_start, 0);
        session.swarm().validate_consistency();
    }

    #[test]
    fn complete_arrivals_are_mortal_promoted_seeds() {
        // An arrival that enters holding the whole file must not join the
        // immortal publisher squad: the lingering-seed rule applies.
        let swarm = base_swarm(10, 1, 14);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Burst { round: 1, count: 4 },
                arrival_completion: 1.0, // arrivals draw every piece
                departure: DepartureRules {
                    seed_leave_prob: 1.0,
                    ..DepartureRules::none()
                },
                ..SessionConfig::default()
            },
        );
        session.run_rounds(1);
        assert_eq!(session.stats().arrivals, 0);
        session.run_rounds(1); // burst lands at round 1
        assert_eq!(session.stats().arrivals, 4);
        // Next passes: decision round, then the certain seed-leave draw.
        session.run_rounds(3);
        assert!(
            session.stats().departures >= 4,
            "complete arrivals never departed: {:?}",
            session.stats()
        );
        // The true publisher (the initial seed) is still there.
        assert!(session.swarm().is_present(10));
        session.swarm().validate_consistency();
    }

    #[test]
    fn wiring_samples_present_peers_even_in_a_sparse_arena() {
        // Shrink the present population far below the arena size, then
        // admit a peer: it must still come out fully wired.
        let swarm = base_swarm(60, 2, 15);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Burst { round: 3, count: 2 },
                departure: DepartureRules {
                    abort_prob: 0.9, // empties most of the arena fast
                    ..DepartureRules::none()
                },
                target_degree: 6,
                ..SessionConfig::default()
            },
        );
        session.run_rounds(4);
        assert!(
            session.population().total() < 30,
            "population did not shrink: {:?}",
            session.population()
        );
        assert_eq!(session.stats().arrivals, 2);
        let arrivals: Vec<usize> = (62..session.swarm().peer_count())
            .chain(0..62)
            .filter(|&p| session.swarm().is_present(p) && session.arrival_round_of(p) == 3)
            .collect();
        for p in arrivals {
            if session.swarm().is_present(p) {
                assert!(
                    session.swarm().degree(p) >= 3,
                    "arrival {p} under-wired: degree {}",
                    session.swarm().degree(p)
                );
            }
        }
        session.swarm().validate_consistency();
    }

    #[test]
    fn generation_tags_invalidate_recycled_slots() {
        let swarm = base_swarm(10, 1, 9);
        let mut session = Session::new(
            swarm,
            SessionConfig {
                arrival: ArrivalProcess::Burst { round: 1, count: 1 },
                departure: DepartureRules {
                    abort_prob: 1.0,
                    ..DepartureRules::none()
                },
                ..SessionConfig::default()
            },
        );
        // Round 0: nothing. Round 1: every incomplete leecher aborts, then
        // one arrival lands in a recycled slot.
        let stale = session.id_of(0);
        assert_eq!(session.resolve(stale), Some(0));
        session.run_rounds(2);
        assert!(session.stats().departures > 0);
        assert_eq!(
            session.resolve(stale),
            None,
            "stale handle must not resolve"
        );
        session.swarm().validate_consistency();
    }

    #[test]
    fn parallel_session_is_thread_count_independent() {
        let run = |threads: usize| {
            let swarm = base_swarm(18, 2, 11);
            let mut session = Session::new(
                swarm,
                SessionConfig {
                    arrival: ArrivalProcess::Poisson { rate: 2.0 },
                    departure: DepartureRules {
                        seed_leave_prob: 0.3,
                        abort_prob: 0.02,
                        ..DepartureRules::none()
                    },
                    arrival_upload_kbps: 350.0,
                    target_degree: 8,
                    ..SessionConfig::default()
                },
            );
            session.run_rounds_parallel(15, threads);
            let swarm = session.swarm();
            let state: Vec<(bool, f64, usize)> = (0..swarm.peer_count())
                .map(|p| {
                    (
                        swarm.is_present(p),
                        swarm.peer(p).total_downloaded(),
                        swarm.peer(p).pieces().count(),
                    )
                })
                .collect();
            (
                state,
                swarm.availability().to_vec(),
                session.stats().clone(),
            )
        };
        let baseline = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), baseline, "threads = {threads}");
        }
    }

    #[test]
    #[should_panic(expected = "piece mode")]
    fn fluid_swarms_are_rejected() {
        let cfg = SwarmConfig::builder()
            .leechers(5)
            .seeds(1)
            .fluid_content(true)
            .build();
        let swarm = Swarm::new(cfg, &[100.0; 6]);
        let _ = Session::new(swarm, SessionConfig::default());
    }
}
