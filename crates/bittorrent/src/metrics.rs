//! Stratification and performance metrics over a running swarm (§6).
//!
//! The paper's claim is that BitTorrent's Tit-for-Tat exchanges behave like
//! random-initiative global-ranking b-matching on upload bandwidth, hence
//! **stratify**: reciprocated TFT partners end up close in upload-bandwidth
//! rank. These metrics observe exactly that, plus the share-ratio /
//! efficiency quantities of Figure 11.

use serde::{Deserialize, Serialize};

use crate::{PeerId, Swarm};

/// A reciprocated TFT pair: both endpoints TFT-unchoke each other. These
/// are the model's *collaborations* — the matching the theory reasons
/// about.
#[must_use]
pub fn reciprocal_tft_pairs(swarm: &Swarm) -> Vec<(PeerId, PeerId)> {
    let n = swarm.peer_count();
    let unchoked: Vec<Vec<PeerId>> = (0..n).map(|p| swarm.tft_unchoked(p)).collect();
    let mut pairs = Vec::new();
    for (p, targets) in unchoked.iter().enumerate() {
        for &q in targets {
            if p < q && unchoked[q].contains(&p) {
                pairs.push((p, q));
            }
        }
    }
    pairs
}

/// Ranks peers by upload capacity, best (fastest) first; `rank[p]` is the
/// dense rank of peer `p`. Ties keep index order (stable).
#[must_use]
pub fn upload_ranks(swarm: &Swarm) -> Vec<usize> {
    let n = swarm.peer_count();
    let mut order: Vec<PeerId> = (0..n).collect();
    order.sort_by(|&a, &b| {
        swarm
            .peer(b)
            .upload_kbps()
            .total_cmp(&swarm.peer(a).upload_kbps())
            .then(a.cmp(&b))
    });
    let mut rank = vec![0usize; n];
    for (r, &p) in order.iter().enumerate() {
        rank[p] = r;
    }
    rank
}

/// Snapshot of the stratification state of a swarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratificationSnapshot {
    /// Simulation round at which the snapshot was taken.
    pub round: u64,
    /// Number of reciprocated TFT pairs.
    pub reciprocal_pairs: usize,
    /// Mean upload-rank offset `|rank(p) − rank(q)|` over reciprocated
    /// pairs (the swarm analogue of the paper's MMO); `None` without pairs.
    pub mean_rank_offset: Option<f64>,
    /// Mean rank offset normalized by the peer count (scale-free).
    pub normalized_offset: Option<f64>,
}

/// Takes a [`StratificationSnapshot`] of the current rechoke state.
#[must_use]
pub fn stratification_snapshot(swarm: &Swarm) -> StratificationSnapshot {
    let pairs = reciprocal_tft_pairs(swarm);
    let ranks = upload_ranks(swarm);
    let mean = if pairs.is_empty() {
        None
    } else {
        Some(
            pairs
                .iter()
                .map(|&(p, q)| ranks[p].abs_diff(ranks[q]) as f64)
                .sum::<f64>()
                / pairs.len() as f64,
        )
    };
    StratificationSnapshot {
        round: swarm.round_count(),
        reciprocal_pairs: pairs.len(),
        mean_rank_offset: mean,
        normalized_offset: mean.map(|m| m / swarm.peer_count() as f64),
    }
}

/// Per-peer performance summary for the leecher population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerPerformance {
    /// Peer index.
    pub peer: PeerId,
    /// Upload capacity (kbps).
    pub upload_kbps: f64,
    /// Cumulative download (kbit).
    pub downloaded_kbit: f64,
    /// Cumulative upload (kbit).
    pub uploaded_kbit: f64,
    /// Share ratio `downloaded / uploaded`, the paper's D/U (Figure 11);
    /// `None` if nothing was uploaded.
    pub share_ratio: Option<f64>,
    /// Share ratio restricted to the TFT economy (optimistic windfalls
    /// excluded) — the quantity the paper's matching model describes.
    pub tft_share_ratio: Option<f64>,
    /// Round at which the peer completed the file, if it did.
    pub completed_round: Option<u64>,
}

/// Collects [`PeerPerformance`] for every original leecher.
#[must_use]
pub fn leecher_performance(swarm: &Swarm) -> Vec<PeerPerformance> {
    (0..swarm.peer_count())
        .filter(|&p| !swarm.peer(p).is_original_seed())
        .map(|p| {
            let peer = swarm.peer(p);
            PeerPerformance {
                peer: p,
                upload_kbps: peer.upload_kbps(),
                downloaded_kbit: peer.total_downloaded(),
                uploaded_kbit: peer.total_uploaded(),
                share_ratio: peer.share_ratio(),
                tft_share_ratio: peer.tft_share_ratio(),
                completed_round: peer.completed_round(),
            }
        })
        .collect()
}

/// Mean share ratio of the leechers whose upload capacity falls within
/// `[lo, hi)` kbps; `None` if the band is empty or nobody uploaded.
#[must_use]
pub fn mean_share_ratio_in_band(swarm: &Swarm, lo: f64, hi: f64) -> Option<f64> {
    let ratios: Vec<f64> = leecher_performance(swarm)
        .into_iter()
        .filter(|perf| perf.upload_kbps >= lo && perf.upload_kbps < hi)
        .filter_map(|perf| perf.share_ratio)
        .collect();
    if ratios.is_empty() {
        return None;
    }
    Some(ratios.iter().sum::<f64>() / ratios.len() as f64)
}

/// **Aggregate** TFT share ratio of a bandwidth class: total TFT download
/// over total TFT upload of the leechers in `[lo, hi)` kbps. Traffic
/// weighting makes this the class-level subsidy measure (who pays, who
/// rides) the paper's Figure 11 reasons about; `None` if the band is empty
/// or carried no TFT upload.
#[must_use]
pub fn aggregate_tft_ratio_in_band(swarm: &Swarm, lo: f64, hi: f64) -> Option<f64> {
    let mut down = 0.0;
    let mut up = 0.0;
    for p in 0..swarm.peer_count() {
        let peer = swarm.peer(p);
        if peer.is_original_seed() {
            continue;
        }
        if peer.upload_kbps() >= lo && peer.upload_kbps() < hi {
            down += peer.tft_downloaded();
            up += peer.tft_uploaded();
        }
    }
    (up > 0.0).then(|| down / up)
}

#[cfg(test)]
mod tests {
    use crate::SwarmConfig;

    use super::*;

    fn two_class_swarm(seed: u64) -> Swarm {
        // 30 slow (100 kbps) + 30 fast (2000 kbps) leechers + 2 seeds, in
        // the paper's steady-state (fluid-content) setting.
        let cfg = SwarmConfig::builder()
            .leechers(60)
            .seeds(2)
            .piece_count(128)
            .piece_size_kbit(500.0)
            .initial_completion(0.3)
            .mean_neighbors(20.0)
            .fluid_content(true)
            .seed(seed)
            .build();
        let mut uploads = vec![100.0; 30];
        uploads.extend(vec![2000.0; 30]);
        uploads.extend(vec![1000.0; 2]);
        Swarm::new(cfg, &uploads)
    }

    #[test]
    fn ranks_follow_upload_capacity() {
        let swarm = two_class_swarm(1);
        let ranks = upload_ranks(&swarm);
        // Fast leechers (30..60) outrank slow ones (0..30).
        for fast in 30..60 {
            for slow in 0..30 {
                assert!(ranks[fast] < ranks[slow]);
            }
        }
    }

    #[test]
    fn reciprocal_pairs_are_symmetric_and_canonical() {
        let mut swarm = two_class_swarm(2);
        swarm.run_rounds(10);
        for (p, q) in reciprocal_tft_pairs(&swarm) {
            assert!(p < q);
            assert!(swarm.tft_unchoked(p).contains(&q));
            assert!(swarm.tft_unchoked(q).contains(&p));
        }
    }

    #[test]
    fn tft_clusters_by_bandwidth_class() {
        // The paper's §6 claim in miniature: after TFT settles, fast peers
        // reciprocate mostly with fast peers.
        let mut swarm = two_class_swarm(3);
        swarm.run_rounds(60);
        let pairs = reciprocal_tft_pairs(&swarm);
        assert!(!pairs.is_empty(), "no reciprocated pairs formed");
        let same_class = pairs.iter().filter(|&&(p, q)| (p < 30) == (q < 30)).count() as f64;
        let frac = same_class / pairs.len() as f64;
        assert!(frac > 0.7, "only {frac:.2} of pairs are same-class");
    }

    #[test]
    fn stratification_tightens_over_time() {
        // A continuum of distinct bandwidths, assigned in shuffled order so
        // peer index carries no rank information. Early TFT pairs are
        // arbitrary (rate-blind); after convergence, reciprocated partners
        // sit close in bandwidth rank — the §6 stratification claim.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = 80usize;
        let cfg = SwarmConfig::builder()
            .leechers(n)
            .seeds(1)
            .mean_neighbors(24.0)
            .fluid_content(true)
            .seed(11)
            .build();
        let mut uploads: Vec<f64> = (0..n).map(|i| 100.0 * 1.05f64.powi(i as i32)).collect();
        let mut shuffle_rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        uploads.shuffle(&mut shuffle_rng);
        uploads.push(1000.0); // the seed
        let mut swarm = Swarm::new(cfg, &uploads);
        swarm.run_rounds(2);
        let early = stratification_snapshot(&swarm);
        swarm.run_rounds(80);
        let late = stratification_snapshot(&swarm);
        let (Some(e), Some(l)) = (early.mean_rank_offset, late.mean_rank_offset) else {
            panic!("missing offsets: {early:?} {late:?}");
        };
        assert!(
            l < 0.6 * e,
            "offset did not shrink enough: early {e}, late {l}"
        );
    }

    #[test]
    fn fast_peers_download_faster() {
        let mut swarm = two_class_swarm(5);
        swarm.run_rounds(40);
        let perf = leecher_performance(&swarm);
        let mean = |lo: f64, hi: f64| {
            let xs: Vec<f64> = perf
                .iter()
                .filter(|p| p.upload_kbps >= lo && p.upload_kbps < hi)
                .map(|p| p.downloaded_kbit)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let slow = mean(0.0, 500.0);
        let fast = mean(500.0, 1e9);
        assert!(
            fast > 1.5 * slow,
            "fast-class download {fast} not well above slow-class {slow}"
        );
    }

    #[test]
    fn share_ratio_band_probe() {
        let mut swarm = two_class_swarm(6);
        swarm.run_rounds(40);
        assert!(mean_share_ratio_in_band(&swarm, 0.0, 1e9).is_some());
        assert!(mean_share_ratio_in_band(&swarm, 1e9, 2e9).is_none());
    }

    #[test]
    fn empty_snapshot_before_any_round() {
        let swarm = two_class_swarm(7);
        let snap = stratification_snapshot(&swarm);
        assert_eq!(snap.reciprocal_pairs, 0);
        assert!(snap.mean_rank_offset.is_none());
    }
}
