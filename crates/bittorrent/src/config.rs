//! Swarm configuration.

use serde::{Deserialize, Serialize};

/// Parameters of a BitTorrent swarm simulation.
///
/// Time is discretized into **rounds**: one round models one rechoke period
/// (10 s in the reference client — "it uploads to the contacts it has most
/// downloaded from in the last 10 seconds", §1). Bandwidths are in kbps and
/// piece sizes in kilobits, so a peer with `u` kbps uploads `10·u` kilobits
/// per round.
///
/// Build with [`SwarmConfig::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwarmConfig {
    /// Number of leechers.
    pub leechers: usize,
    /// Number of seeds (hold all pieces, never download).
    pub seeds: usize,
    /// Pieces in the shared file.
    pub piece_count: usize,
    /// Size of one piece in kilobits.
    pub piece_size_kbit: f64,
    /// Seconds per round (rechoke period).
    pub round_seconds: f64,
    /// Tit-for-Tat unchoke slots per peer (paper default: 3).
    pub tft_slots: usize,
    /// Optimistic unchoke slots (paper default: 1, the "generous" slot).
    pub optimistic_slots: usize,
    /// Rounds between optimistic-unchoke rotations (30 s / 10 s = 3).
    pub optimistic_period: u32,
    /// Expected number of overlay neighbours per peer (the tracker hands out
    /// random subsets — the paper's `d`).
    pub mean_neighbors: f64,
    /// Fraction of pieces each leecher starts with (post-flash-crowd
    /// initialization, §6: all blocks have roughly the same repartition).
    pub initial_completion: f64,
    /// Whether leechers keep seeding after completing the file.
    pub seed_after_completion: bool,
    /// **Fluid-content mode**: models the paper's §6 steady-state
    /// assumption that content availability is never the bottleneck. Every
    /// peer stays interested in every other forever; transfers accumulate
    /// rates without piece bookkeeping and nobody completes. This is the
    /// setting in which stratification and share ratios are measured.
    pub fluid_content: bool,
    /// RNG seed.
    pub seed: u64,
}

impl SwarmConfig {
    /// Starts a builder pre-loaded with the paper-aligned defaults:
    /// 3 TFT + 1 optimistic slot, 10 s rounds, 30 s optimistic rotation,
    /// `d = 20` neighbours, 40 % initial completion.
    #[must_use]
    pub fn builder() -> SwarmConfigBuilder {
        SwarmConfigBuilder::default()
    }
}

/// Builder for [`SwarmConfig`].
#[derive(Debug, Clone)]
pub struct SwarmConfigBuilder {
    config: SwarmConfig,
}

impl Default for SwarmConfigBuilder {
    fn default() -> Self {
        Self {
            config: SwarmConfig {
                leechers: 100,
                seeds: 1,
                piece_count: 256,
                piece_size_kbit: 2048.0, // 256 kB pieces
                round_seconds: 10.0,
                tft_slots: 3,
                optimistic_slots: 1,
                optimistic_period: 3,
                mean_neighbors: 20.0,
                initial_completion: 0.4,
                seed_after_completion: true,
                fluid_content: false,
                seed: 0xb17,
            },
        }
    }
}

impl SwarmConfigBuilder {
    /// Sets the number of leechers.
    pub fn leechers(&mut self, n: usize) -> &mut Self {
        self.config.leechers = n;
        self
    }

    /// Sets the number of seeds.
    pub fn seeds(&mut self, n: usize) -> &mut Self {
        self.config.seeds = n;
        self
    }

    /// Sets the number of pieces.
    pub fn piece_count(&mut self, n: usize) -> &mut Self {
        self.config.piece_count = n;
        self
    }

    /// Sets the piece size in kilobits.
    pub fn piece_size_kbit(&mut self, kbit: f64) -> &mut Self {
        self.config.piece_size_kbit = kbit;
        self
    }

    /// Sets the TFT slot count (the paper's `b₀`).
    pub fn tft_slots(&mut self, slots: usize) -> &mut Self {
        self.config.tft_slots = slots;
        self
    }

    /// Sets the optimistic slot count.
    pub fn optimistic_slots(&mut self, slots: usize) -> &mut Self {
        self.config.optimistic_slots = slots;
        self
    }

    /// Sets the optimistic rotation period in rounds.
    pub fn optimistic_period(&mut self, rounds: u32) -> &mut Self {
        self.config.optimistic_period = rounds.max(1);
        self
    }

    /// Sets the expected overlay degree (the paper's `d`).
    pub fn mean_neighbors(&mut self, d: f64) -> &mut Self {
        self.config.mean_neighbors = d;
        self
    }

    /// Sets the post-flash-crowd initial completion fraction.
    pub fn initial_completion(&mut self, fraction: f64) -> &mut Self {
        self.config.initial_completion = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets whether completed leechers keep seeding.
    pub fn seed_after_completion(&mut self, keep: bool) -> &mut Self {
        self.config.seed_after_completion = keep;
        self
    }

    /// Enables fluid-content mode (steady-state exchange, no completion —
    /// the paper's §6 "content availability is not a bottleneck" setting).
    pub fn fluid_content(&mut self, fluid: bool) -> &mut Self {
        self.config.fluid_content = fluid;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no peers, no pieces, or
    /// zero slots).
    #[must_use]
    pub fn build(&self) -> SwarmConfig {
        let c = &self.config;
        assert!(c.leechers + c.seeds >= 2, "need at least two peers");
        assert!(c.piece_count >= 1, "need at least one piece");
        assert!(
            c.tft_slots + c.optimistic_slots >= 1,
            "need at least one unchoke slot"
        );
        assert!(
            c.piece_size_kbit > 0.0 && c.round_seconds > 0.0,
            "positive sizes required"
        );
        c.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SwarmConfig::builder().build();
        assert_eq!(c.tft_slots, 3);
        assert_eq!(c.optimistic_slots, 1);
        assert_eq!(c.optimistic_period, 3);
        assert_eq!(c.mean_neighbors, 20.0);
    }

    #[test]
    fn builder_chains() {
        let c = SwarmConfig::builder()
            .leechers(50)
            .seeds(2)
            .piece_count(64)
            .tft_slots(4)
            .seed(7)
            .build();
        assert_eq!(c.leechers, 50);
        assert_eq!(c.seeds, 2);
        assert_eq!(c.piece_count, 64);
        assert_eq!(c.tft_slots, 4);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn completion_clamped() {
        let c = SwarmConfig::builder().initial_completion(1.7).build();
        assert_eq!(c.initial_completion, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two peers")]
    fn degenerate_rejected() {
        let _ = SwarmConfig::builder().leechers(1).seeds(0).build();
    }
}
